"""Setup shim.

The project is fully described by ``pyproject.toml``; this file exists so
that ``pip install -e . --no-build-isolation`` works on environments without
the ``wheel`` package (legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
