"""R6 — fork/thread safety of worker entry points.

The scan scheduler fans work out to pool processes and helper threads.
A worker function that mutates module-level state is a correctness trap
twice over: under ``fork`` the mutation silently diverges from the
parent (and from every sibling), and under threads it races.  The rule:

1. finds worker entry points — functions passed as ``initializer=`` /
   ``target=`` keywords or as the callable argument of
   ``map``/``imap``/``imap_unordered``/``starmap``/``apply``/
   ``apply_async``/``submit``;
2. takes the call-graph closure of those entry points;
3. inside the closure, flags ``global NAME`` rebinding of a module-level
   name, and in-place mutation (mutator method calls, subscript stores)
   of module-level mutable containers.

The sanctioned per-process-singleton pattern (a pool *initializer*
installing ``_WORKER_ENGINE`` once per worker process) still matches
rule mechanics — it is module state mutated from a worker — and is
expected to carry a waiver explaining why it is safe, keeping the
pattern's justification in version control.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..core import (
    CallGraph,
    LintConfig,
    Module,
    MUTATOR_METHOD_NAMES,
    Project,
    iter_own_nodes,
)
from ..registry import Finding, Rule, register

_DISPATCH_METHODS = {
    "map",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
    "map_async",
    "apply",
    "apply_async",
    "submit",
}
_CALLABLE_KEYWORDS = {"initializer", "target", "func"}
_MUTABLE_FACTORIES = {"dict", "list", "set", "deque", "defaultdict", "Counter", "OrderedDict"}


@register
class ForkSafetyRule(Rule):
    """Flag module-level state mutated from pool/thread worker functions."""

    rule_id = "R6"
    name = "fork-safety"
    description = (
        "functions dispatched to pool workers or threads must not mutate "
        "module-level state"
    )

    def check(
        self, project: Project, graph: CallGraph, config: LintConfig
    ) -> Iterator[Finding]:
        """Find worker entries per module, then police their closure."""
        entries: Set[Tuple[str, str]] = set()
        for info in project.functions.values():
            for node in iter_own_nodes(info.node):
                if isinstance(node, ast.Call):
                    entries.update(self._entry_targets(graph, info, node))
        if not entries:
            return
        closure = graph.reachable(sorted(entries))
        for key in sorted(closure):
            info = project.functions[key]
            yield from self._check_worker(info)

    @staticmethod
    def _entry_targets(
        graph: CallGraph, info, call: ast.Call
    ) -> Iterator[Tuple[str, str]]:
        """Yield function keys dispatched as workers by *call*."""
        candidates: List[ast.AST] = []
        for keyword in call.keywords:
            if keyword.arg in _CALLABLE_KEYWORDS:
                candidates.append(keyword.value)
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _DISPATCH_METHODS
            and call.args
        ):
            candidates.append(call.args[0])
        for candidate in candidates:
            if isinstance(candidate, ast.Name):
                resolved = graph.resolve_name(info.module, candidate.id)
                if resolved is not None:
                    yield resolved

    def _check_worker(self, info) -> Iterator[Finding]:
        """Flag module-state mutation inside one worker-reachable function."""
        module = info.module
        module_names = self._module_level_names(module)
        mutable_names = self._module_level_mutables(module)
        global_names: Set[str] = set()
        for node in iter_own_nodes(info.node):
            if isinstance(node, ast.Global):
                global_names.update(node.names)
        for node in iter_own_nodes(info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    list(node.targets)
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    name = self._store_name(target)
                    if name is not None:
                        if name in global_names and name in module_names:
                            yield self.finding(
                                module.rel,
                                node,
                                f"worker-reachable code rebinds module global "
                                f"'{name}'; under fork this diverges per "
                                "process and under threads it races",
                                symbol=info.qualname,
                            )
                        continue
                    base = self._subscript_base(target)
                    if base is not None and base in mutable_names:
                        yield self.finding(
                            module.rel,
                            node,
                            f"worker-reachable code mutates module-level "
                            f"container '{base}'",
                            symbol=info.qualname,
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                owner = node.func.value
                if (
                    isinstance(owner, ast.Name)
                    and node.func.attr in MUTATOR_METHOD_NAMES
                    and owner.id in mutable_names
                    and owner.id not in self._local_shadow(info.node, owner.id)
                ):
                    yield self.finding(
                        module.rel,
                        node,
                        f"worker-reachable code mutates module-level "
                        f"container '{owner.id}' via .{node.func.attr}()",
                        symbol=info.qualname,
                    )

    @staticmethod
    def _store_name(target: ast.AST) -> Optional[str]:
        """The bare name stored to, if *target* is ``Name`` (not subscript)."""
        return target.id if isinstance(target, ast.Name) else None

    @staticmethod
    def _subscript_base(target: ast.AST) -> Optional[str]:
        """The bare name under a subscript store (``NAME[k] = v``)."""
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            return target.value.id
        return None

    @staticmethod
    def _module_level_names(module: Module) -> Set[str]:
        """Every name assigned at module top level."""
        names: Set[str] = set()
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
        return names

    @staticmethod
    def _module_level_mutables(module: Module) -> Set[str]:
        """Module-level names bound to mutable containers."""
        names: Set[str] = set()
        for node in module.tree.body:
            value = None
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            if value is None:
                continue
            is_mutable = isinstance(
                value, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
            ) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _MUTABLE_FACTORIES
            )
            if not is_mutable:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    @staticmethod
    def _local_shadow(func: ast.AST, name: str) -> Set[str]:
        """Names rebound locally in *func* (shadowing the module global)."""
        shadowed: Set[str] = set()
        globals_declared: Set[str] = set()
        for node in iter_own_nodes(func):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
        for node in iter_own_nodes(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id not in globals_declared:
                        shadowed.add(target.id)
        params = getattr(func, "args", None)
        if params is not None:
            for arg in (
                list(params.args)
                + list(params.posonlyargs)
                + list(params.kwonlyargs)
            ):
                shadowed.add(arg.arg)
        return shadowed
