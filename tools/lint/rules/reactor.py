"""R1 — reactor purity: no blocking call reachable from the event loop.

The ``selectors`` front-end multiplexes every connection on one thread;
a single blocking call on that thread stalls all of them.  The rule
roots the call graph at each configured reactor entry point
(``EventLoopFrontend.run`` by default — everything the loop thread
executes is reachable from it), computes the worklist closure, and flags
blocking operations anywhere in that closure:

* ``time.sleep``
* any ``subprocess`` call
* the ``open`` builtin and ``Path`` read/write convenience methods
  (blocking file I/O)
* lock waits: ``something.acquire()``, ``something.wait()``,
  ``something.join()`` (constant receivers like ``", ".join`` are
  exempt), and ``with self.<lock>:`` where ``<lock>`` is a
  ``threading`` primitive in the class model

``selector.select`` is deliberately not a finding — it is the reactor's
one sanctioned blocking point.  Calls the graph cannot resolve (e.g.
``self._service.dispatch``) are not followed: the service boundary is
where the batcher's ``submit_nowait`` contract takes over.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..core import CallGraph, LintConfig, Project, iter_own_nodes
from ..registry import Finding, Rule, register

#: Method names treated as blocking waits / blocking file I/O wherever
#: they appear on the reactor thread.
_BLOCKING_METHODS = {
    "acquire": "lock wait",
    "wait": "blocking wait",
    "join": "blocking join",
    "read_text": "blocking file read",
    "read_bytes": "blocking file read",
    "write_text": "blocking file write",
    "write_bytes": "blocking file write",
}


@register
class ReactorPurityRule(Rule):
    """Flag blocking calls transitively reachable from reactor entry points."""

    rule_id = "R1"
    name = "reactor-purity"
    description = (
        "no blocking call (sleep, file I/O, subprocess, lock waits) may be "
        "reachable from an event-loop reactor entry point"
    )

    def check(
        self, project: Project, graph: CallGraph, config: LintConfig
    ) -> Iterator[Finding]:
        """Walk each configured reactor closure for blocking operations."""
        for suffix, class_name, root_method in config.reactor_roots:
            for module in project.modules_matching([suffix]):
                model = project.class_model(module, class_name)
                if model is None or root_method not in model.methods:
                    continue
                root = (module.rel, f"{class_name}.{root_method}")
                root_label = f"{class_name}.{root_method}"
                for key in sorted(graph.reachable([root])):
                    info = project.functions[key]
                    yield from self._scan_function(project, info, root_label)

    def _scan_function(self, project, info, root_label: str) -> Iterator[Finding]:
        """Yield a finding for every blocking operation in one function."""
        module = info.module
        for node in iter_own_nodes(info.node):
            described: Optional[Tuple[ast.AST, str]] = None
            if isinstance(node, ast.Call):
                described = self._describe_blocking_call(module, node)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                described = self._describe_lock_with(project, info, node)
            if described is None:
                continue
            anchor, what = described
            yield self.finding(
                module.rel,
                anchor,
                f"{what} on the reactor thread (reachable from {root_label})",
                symbol=info.qualname,
            )

    def _describe_blocking_call(
        self, module, call: ast.Call
    ) -> Optional[Tuple[ast.AST, str]]:
        """Classify one call as blocking, or return ``None``."""
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return call, "blocking file open()"
            imported = module.name_imports.get(func.id)
            if imported is not None:
                base, original = imported
                if base == "time" and original == "sleep":
                    return call, "time.sleep()"
                if base == "subprocess":
                    return call, f"subprocess.{original}()"
            return None
        if isinstance(func, ast.Attribute):
            owner = func.value
            if isinstance(owner, ast.Name):
                dotted = module.module_aliases.get(owner.id)
                if dotted == "time" and func.attr == "sleep":
                    return call, "time.sleep()"
                if dotted == "subprocess":
                    return call, f"subprocess.{func.attr}()"
            if func.attr in _BLOCKING_METHODS:
                if func.attr == "join" and isinstance(owner, ast.Constant):
                    return None  # "sep".join(...) is string plumbing
                return call, f"{_BLOCKING_METHODS[func.attr]} via .{func.attr}()"
        return None

    def _describe_lock_with(
        self, project, info, node
    ) -> Optional[Tuple[ast.AST, str]]:
        """Flag ``with self.<lock>:`` where ``<lock>`` is a threading primitive."""
        if info.class_name is None:
            return None
        model = project.class_model(info.module, info.class_name)
        if model is None:
            return None
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in model.lock_attrs
            ):
                return node, f"lock wait on 'self.{expr.attr}'"
        return None
