"""R2 — lock discipline: guarded attributes must stay guarded.

For every class whose model shows a ``threading`` primitive attribute
(``self._lock``, ``self._mem_lock``, ``self._cond``, ...), the rule
learns which ``self.X`` attributes the class itself treats as
lock-guarded — any attribute written at least once inside a
``with self.<lock>:`` body — and then flags writes to those attributes
that happen with no lock held.  "Write" covers plain and augmented
assignment, subscript stores (``self.d[k] = v``) and in-place mutator
calls (``self.q.append(...)``).

Two deliberate refinements keep the rule useful on real code:

* ``__init__``/``__post_init__`` are exempt — construction happens
  before the object is shared.
* A private helper method that is *only ever called* from inside lock
  bodies inherits those locks (computed to a fixpoint), so the common
  "``get()`` takes the lock, ``_ensure_loaded()`` does the work"
  split does not false-positive.

Classes using the file-based ``_NamespaceLock`` (a kernel flock, not a
``threading`` primitive) are intentionally out of scope: their
single-writer discipline is a process-level protocol this thread-local
model cannot judge.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core import (
    CallGraph,
    ClassModel,
    LintConfig,
    MUTATOR_METHOD_NAMES,
    Project,
)
from ..registry import Finding, Rule, register

#: Methods whose writes are construction, not shared-state mutation.
_CONSTRUCTOR_METHODS = {"__init__", "__post_init__", "__new__"}


@register
class LockDisciplineRule(Rule):
    """Flag unguarded writes to attributes the class guards elsewhere."""

    rule_id = "R2"
    name = "lock-discipline"
    description = (
        "in classes holding a threading lock, attributes written under "
        "'with self._lock:' must never be written without it"
    )

    def check(
        self, project: Project, graph: CallGraph, config: LintConfig
    ) -> Iterator[Finding]:
        """Analyze every class that models at least one threading lock."""
        for (rel, _), model in sorted(project.classes.items()):
            if not model.lock_attrs:
                continue
            yield from self._check_class(model)

    # -- per-class analysis --------------------------------------------------
    def _check_class(self, model: ClassModel) -> Iterator[Finding]:
        """Collect writes with held-lock context, then flag the unguarded ones."""
        writes: List[Tuple[str, str, ast.AST, Set[str]]] = []
        call_sites: Dict[str, List[Tuple[str, Set[str]]]] = {}
        for method_name, method in model.methods.items():
            self._visit(
                model, method_name, method, frozenset(), writes, call_sites
            )
        guaranteed = self._lock_held_methods(model, call_sites)

        guarded_by: Dict[str, Set[str]] = {}
        for method_name, attr, node, held in writes:
            effective = held | guaranteed.get(method_name, set())
            if effective:
                guarded_by.setdefault(attr, set()).update(effective)

        for method_name, attr, node, held in writes:
            if method_name in _CONSTRUCTOR_METHODS:
                continue
            locks = guarded_by.get(attr)
            if not locks:
                continue
            effective = held | guaranteed.get(method_name, set())
            if effective & locks:
                continue
            lock_names = ", ".join(f"self.{name}" for name in sorted(locks))
            yield self.finding(
                model.module.rel,
                node,
                f"write to 'self.{attr}' without holding {lock_names} "
                f"(guarded elsewhere in {model.name})",
                symbol=f"{model.name}.{method_name}",
            )

    def _visit(
        self,
        model: ClassModel,
        method_name: str,
        node: ast.AST,
        held: frozenset,
        writes: List[Tuple[str, str, ast.AST, Set[str]]],
        call_sites: Dict[str, List[Tuple[str, Set[str]]]],
    ) -> None:
        """Walk *node*'s children, tracking which class locks are held."""
        for child in ast.iter_child_nodes(node):
            self._visit_node(model, method_name, child, held, writes, call_sites)

    def _visit_node(
        self,
        model: ClassModel,
        method_name: str,
        node: ast.AST,
        held: frozenset,
        writes: List[Tuple[str, str, ast.AST, Set[str]]],
        call_sites: Dict[str, List[Tuple[str, Set[str]]]],
    ) -> None:
        """Process one node: record it, then descend with the right held set."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Nested closure: it runs later, in a lock context of its own.
            self._visit(model, method_name, node, frozenset(), writes, call_sites)
            return
        self._record(model, method_name, node, held, writes, call_sites)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            taken = {
                attr
                for item in node.items
                if (attr := self._lock_attr(model, item.context_expr))
            }
            inner = frozenset(held | taken)
            for item in node.items:
                self._visit_node(
                    model, method_name, item.context_expr, held, writes, call_sites
                )
            for child in node.body:
                self._visit_node(
                    model, method_name, child, inner, writes, call_sites
                )
            return
        self._visit(model, method_name, node, held, writes, call_sites)

    def _record(
        self,
        model: ClassModel,
        method_name: str,
        node: ast.AST,
        held: frozenset,
        writes: List[Tuple[str, str, ast.AST, Set[str]]],
        call_sites: Dict[str, List[Tuple[str, Set[str]]]],
    ) -> None:
        """Record writes and intra-class call sites found at *node*."""
        for attr, anchor in self._attribute_writes(node):
            writes.append((method_name, attr, anchor, set(held)))
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
            and node.func.attr in model.methods
        ):
            call_sites.setdefault(node.func.attr, []).append(
                (method_name, set(held))
            )

    @staticmethod
    def _lock_attr(model: ClassModel, expr: ast.AST) -> Optional[str]:
        """``X`` when *expr* is ``self.X`` and ``X`` is a modelled lock."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in model.lock_attrs
        ):
            return expr.attr
        return None

    @staticmethod
    def _attribute_writes(node: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
        """Yield ``(attr, anchor)`` for each ``self.attr`` write at *node*."""

        def attr_of(target: ast.AST) -> Optional[str]:
            if isinstance(target, ast.Subscript):
                target = target.value
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return target.attr
            return None

        if isinstance(node, ast.Assign):
            targets: List[ast.AST] = []
            for target in node.targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    targets.extend(target.elts)
                else:
                    targets.append(target)
            for target in targets:
                attr = attr_of(target)
                if attr is not None:
                    yield attr, node
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            attr = attr_of(node.target)
            if attr is not None:
                yield attr, node
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATOR_METHOD_NAMES:
                attr = attr_of(node.func.value)
                if attr is not None:
                    yield attr, node

    @staticmethod
    def _lock_held_methods(
        model: ClassModel,
        call_sites: Dict[str, List[Tuple[str, Set[str]]]],
    ) -> Dict[str, Set[str]]:
        """Fixpoint: locks guaranteed held on entry to each private helper.

        A private method (leading underscore, not a dunder) whose every
        intra-class call site holds lock L is itself analyzed as if L
        were held.  Public methods are callable from outside the class,
        so they never inherit locks.
        """
        candidates = {
            name
            for name in model.methods
            if name.startswith("_")
            and not name.startswith("__")
            and call_sites.get(name)
        }
        guaranteed: Dict[str, Set[str]] = {
            name: set(model.lock_attrs) for name in candidates
        }
        changed = True
        while changed:
            changed = False
            for name in candidates:
                acc: Optional[Set[str]] = None
                for caller, held in call_sites[name]:
                    effective = held | guaranteed.get(caller, set())
                    acc = effective if acc is None else (acc & effective)
                acc = acc or set()
                if acc != guaranteed[name]:
                    guaranteed[name] = acc
                    changed = True
        return guaranteed
