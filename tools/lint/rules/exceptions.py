"""R5 — exception hygiene.

Concurrent code leans on broad handlers at thread boundaries ("a bad
callback must not kill the worker"), which makes *undocumented* broad
handlers indistinguishable from bugs.  The rule enforces, everywhere in
the linted tree:

* ``except:`` (bare) is forbidden outright — it swallows
  ``KeyboardInterrupt``/``SystemExit``.
* ``except Exception`` / ``except BaseException`` (with or without
  ``as``) must carry a trailing justification comment **on the same
  source line**, e.g.::

      except Exception:  # a bad callback must not kill the worker

* a broad handler whose body is only ``pass``/``...`` is flagged even
  when commented — discarding every possible exception needs a waiver,
  not just a comment.

Narrow handlers (``except OSError: pass``) are out of scope; they name
the failure they tolerate.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..core import CallGraph, LintConfig, Module, Project
from ..registry import Finding, Rule, register

_BROAD_NAMES = {"Exception", "BaseException"}


@register
class ExceptionHygieneRule(Rule):
    """Flag bare excepts, uncommented broad handlers, and silent swallows."""

    rule_id = "R5"
    name = "exception-hygiene"
    description = (
        "no bare except; except Exception/BaseException needs a trailing "
        "justification comment and must not silently pass"
    )

    def check(
        self, project: Project, graph: CallGraph, config: LintConfig
    ) -> Iterator[Finding]:
        """Walk every handler in every module."""
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ExceptHandler):
                    yield from self._check_handler(module, node)

    def _check_handler(
        self, module: Module, handler: ast.ExceptHandler
    ) -> Iterator[Finding]:
        """Apply the three sub-checks to one ``except`` clause."""
        if handler.type is None:
            yield self.finding(
                module.rel,
                handler,
                "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
                "catch Exception (with a justification comment) at most",
            )
            return
        broad = self._broad_names(handler.type)
        if not broad:
            return
        caught = "/".join(sorted(broad))
        if "#" not in module.line(handler.lineno):
            yield self.finding(
                module.rel,
                handler,
                f"'except {caught}' needs a trailing justification comment "
                "on the same line (why is swallowing everything safe here?)",
            )
        if all(isinstance(stmt, (ast.Pass,)) for stmt in handler.body) or (
            len(handler.body) == 1
            and isinstance(handler.body[0], ast.Expr)
            and isinstance(handler.body[0].value, ast.Constant)
            and handler.body[0].value.value is Ellipsis
        ):
            yield self.finding(
                module.rel,
                handler,
                f"'except {caught}' silently discards the exception; "
                "log, re-raise, or record it (or waive with a reason)",
            )

    @staticmethod
    def _broad_names(annotation: ast.AST) -> List[str]:
        """The broad exception names caught by *annotation* (may be a tuple)."""
        names: List[str] = []
        elements = (
            list(annotation.elts)
            if isinstance(annotation, ast.Tuple)
            else [annotation]
        )
        for element in elements:
            if isinstance(element, ast.Name) and element.id in _BROAD_NAMES:
                names.append(element.id)
        return names
