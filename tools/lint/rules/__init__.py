"""Rule modules; importing this package registers every rule.

One module per rule keeps each invariant's detection logic and its
documented blind spots in one reviewable place; see ``docs/LINTING.md``
for the user-facing catalogue.
"""

from . import (  # noqa: F401
    reactor,
    locks,
    atomicwrite,
    determinism,
    exceptions,
    forksafety,
    metricnames,
    failpoints,
)
