"""R7 — metric-name discipline.

The process-wide metrics registry (:mod:`repro.obs.metrics`) renders a
Prometheus exposition from whatever families were registered, so naming
mistakes become operator-facing: a typo'd family silently forks a time
series, and a family registered from two call sites with different
shapes raises at import time in whichever order the modules happen to
load.  The rule makes both failure modes a lint error at the source:

* every ``REGISTRY.counter(...)`` / ``REGISTRY.gauge(...)`` /
  ``REGISTRY.histogram(...)`` call must pass its family name as a
  **string literal** — a computed name cannot be checked statically and
  would dodge the uniqueness check below;
* the name must match ``repro_<subsystem>_<name>`` (lowercase,
  underscores, counters ending ``_total`` by convention — the regex
  enforces the shape, not the suffix);
* each family name must be registered **exactly once** across the whole
  linted tree — get-or-create tolerates duplicate registration at
  runtime, but two registration sites mean neither module can be read
  as the family's owner.

Blind spot: only calls on a name imported as ``REGISTRY`` from
``repro.obs.metrics`` are checked.  A registry reached through a module
alias (``obs.metrics.REGISTRY.counter``) or a locally-constructed
:class:`MetricsRegistry` (what the unit tests do on purpose) is not —
private registries are free to name things however they like.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Tuple

from ..core import CallGraph, LintConfig, Module, Project
from ..registry import Finding, Rule, register

#: The registration methods of :class:`repro.obs.metrics.MetricsRegistry`.
_REGISTER_METHODS = {"counter", "gauge", "histogram"}

#: Required family-name shape: ``repro_<subsystem>_<name>``.
_NAME_RE = re.compile(r"^repro_[a-z][a-z0-9]*_[a-z][a-z0-9_]*$")


@register
class MetricNamesRule(Rule):
    """Flag non-literal, malformed, or multiply-registered metric names."""

    rule_id = "R7"
    name = "metric-names"
    description = (
        "metric families must be registered exactly once, by string "
        "literal, matching repro_<subsystem>_<name>"
    )

    def check(
        self, project: Project, graph: CallGraph, config: LintConfig
    ) -> Iterator[Finding]:
        """Collect every registration call, then apply the three checks."""
        sites: Dict[str, List[Tuple[Module, ast.Call]]] = {}
        for module in project.modules:
            for call in self._registration_calls(module):
                name_node = call.args[0] if call.args else None
                if not (
                    isinstance(name_node, ast.Constant)
                    and isinstance(name_node.value, str)
                ):
                    yield self.finding(
                        module.rel,
                        call,
                        "metric family name must be a string literal "
                        "(computed names dodge the uniqueness check)",
                    )
                    continue
                name = name_node.value
                if not _NAME_RE.match(name):
                    yield self.finding(
                        module.rel,
                        call,
                        f"metric name {name!r} does not match "
                        "repro_<subsystem>_<name> "
                        "(lowercase letters, digits, underscores)",
                    )
                sites.setdefault(name, []).append((module, call))
        for name, registrations in sorted(sites.items()):
            if len(registrations) <= 1:
                continue
            first_module, first_call = registrations[0]
            for module, call in registrations[1:]:
                yield self.finding(
                    module.rel,
                    call,
                    f"metric {name!r} is already registered at "
                    f"{first_module.rel}:{first_call.lineno}; every family "
                    "has exactly one registration site",
                )

    @staticmethod
    def _registration_calls(module: Module) -> Iterator[ast.Call]:
        """Yield ``REGISTRY.<counter|gauge|histogram>(...)`` calls.

        ``REGISTRY`` must be a ``from``-import of the process-wide
        registry in :mod:`repro.obs.metrics` (see the module docstring
        for the documented blind spots).
        """
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _REGISTER_METHODS
                and isinstance(func.value, ast.Name)
            ):
                continue
            imported = module.name_imports.get(func.value.id)
            if imported is None:
                continue
            base, original = imported
            if original != "REGISTRY":
                continue
            if base == "obs.metrics" or base.endswith(".obs.metrics"):
                yield node
