"""R8 — failpoint-name discipline.

The fault-injection registry (:mod:`repro.faults`) matches activation
specs (``REPRO_FAILPOINTS`` / ``--failpoints``) against guard sites by
exact name, so naming mistakes become silent no-ops: a typo'd guard
never fires and the chaos test that targets it quietly tests nothing.
The rule mirrors R7's metric-name discipline for failpoints:

* every ``failpoint(...)`` / ``corrupting_failpoint(...)`` call must
  pass its name as a **string literal** — a computed name cannot be
  grepped from a spec to its guard site;
* the name must be dotted lowercase (``subsystem.component.event``,
  e.g. ``cache.flush.io``) — the same grammar the spec parser accepts,
  checked statically so a bad name fails lint instead of never firing;
* each name must appear at **exactly one** guard site across the whole
  linted tree — two sites sharing a name would make one spec trigger
  faults in two places, and neither site could be read as the name's
  owner.

Blind spot: only calls on a name imported (directly or via the package
re-export) from ``repro.faults`` are checked.  A guard reached through
a module alias (``faults.failpoints.failpoint(...)``) is not — the
codebase convention is the ``from``-import, and the one-site rule makes
aliased duplicates easy to spot in review anyway.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Tuple

from ..core import CallGraph, LintConfig, Module, Project
from ..registry import Finding, Rule, register

#: The guard functions of :mod:`repro.faults.failpoints`.
_GUARD_FUNCTIONS = {"failpoint", "corrupting_failpoint"}

#: Required name shape: dotted lowercase ``subsystem.component.event``.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


@register
class FailpointNamesRule(Rule):
    """Flag non-literal, malformed, or multiply-guarded failpoint names."""

    rule_id = "R8"
    name = "failpoint-names"
    description = (
        "failpoint names must be dotted-lowercase string literals with "
        "exactly one guard site each"
    )

    def check(
        self, project: Project, graph: CallGraph, config: LintConfig
    ) -> Iterator[Finding]:
        """Collect every guard call, then apply the three checks."""
        sites: Dict[str, List[Tuple[Module, ast.Call]]] = {}
        for module in project.modules:
            for call in self._guard_calls(module):
                name_node = call.args[0] if call.args else None
                if not (
                    isinstance(name_node, ast.Constant)
                    and isinstance(name_node.value, str)
                ):
                    yield self.finding(
                        module.rel,
                        call,
                        "failpoint name must be a string literal (a "
                        "computed name cannot be grepped from a spec to "
                        "its guard site)",
                    )
                    continue
                name = name_node.value
                if not _NAME_RE.match(name):
                    yield self.finding(
                        module.rel,
                        call,
                        f"failpoint name {name!r} does not match "
                        "subsystem.component.event (dotted lowercase "
                        "letters, digits, underscores)",
                    )
                sites.setdefault(name, []).append((module, call))
        for name, guards in sorted(sites.items()):
            if len(guards) <= 1:
                continue
            first_module, first_call = guards[0]
            for module, call in guards[1:]:
                yield self.finding(
                    module.rel,
                    call,
                    f"failpoint {name!r} is already guarded at "
                    f"{first_module.rel}:{first_call.lineno}; every name "
                    "has exactly one guard site",
                )

    @staticmethod
    def _guard_calls(module: Module) -> Iterator[ast.Call]:
        """Yield ``failpoint(...)``/``corrupting_failpoint(...)`` calls.

        The callee must be a ``from``-import out of ``repro.faults`` (or
        its ``failpoints`` submodule); see the module docstring for the
        documented blind spots.
        """
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Name):
                continue
            imported = module.name_imports.get(func.id)
            if imported is None:
                continue
            base, original = imported
            if original not in _GUARD_FUNCTIONS:
                continue
            if (
                base == "faults"
                or base.endswith(".faults")
                or base == "faults.failpoints"
                or base.endswith(".faults.failpoints")
            ):
                yield node
