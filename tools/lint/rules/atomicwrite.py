"""R3 — atomic-write idiom in cache/artifact/feature-store modules.

Readers of the cache tiers, artifact directories and feature-store
shards run concurrently with writers (other scan processes, the serving
registry's hot reload).  A direct ``open(..., "w")`` / ``write_text`` /
``np.savez`` into those directories can expose a torn file; the
repo-wide idiom is *sibling temp file + ``os.replace``* (see
``atomic_write_json`` in ``engine/cache.py`` and
``FeatureStore._write_shard``).

The rule checks every function in the configured modules: any write
operation (``write_text``/``write_bytes``, the ``open`` builtin with a
writing mode, ``np.savez``/``np.savez_compressed``/``np.save``) in a
function that does not also call ``os.replace``/``os.rename`` is a
finding.  The function-level granularity is deliberate: the idiom keeps
the temp write and the rename adjacent, and a helper that only writes
(hoping its caller renames) is itself a latent torn-file bug.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..core import CallGraph, LintConfig, Module, Project, iter_own_nodes
from ..registry import Finding, Rule, register

_NUMPY_WRITERS = {"savez", "savez_compressed", "save"}
_PATH_WRITERS = {"write_text", "write_bytes"}


@register
class AtomicWriteRule(Rule):
    """Flag non-atomic writes inside the durable-store modules."""

    rule_id = "R3"
    name = "atomic-write"
    description = (
        "cache/artifact/feature-store modules must write via a sibling "
        "temp file + os.replace, never directly into the store"
    )

    def check(
        self, project: Project, graph: CallGraph, config: LintConfig
    ) -> Iterator[Finding]:
        """Scan every function of every configured module."""
        for module in project.modules_matching(config.atomic_write_modules):
            for info in project.functions.values():
                if info.module is not module:
                    continue
                yield from self._check_function(module, info)

    def _check_function(self, module: Module, info) -> Iterator[Finding]:
        """Flag the function's writes unless it also calls ``os.replace``."""
        writes: List[Tuple[ast.AST, str]] = []
        has_replace = False
        for node in iter_own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            if self._is_os_replace(module, node):
                has_replace = True
                continue
            described = self._describe_write(module, node)
            if described is not None:
                writes.append((node, described))
        if has_replace or not writes:
            return
        for node, what in writes:
            yield self.finding(
                module.rel,
                node,
                f"non-atomic {what} in a durable-store module; write a "
                "sibling temp file and os.replace() it into place",
                symbol=info.qualname,
            )

    @staticmethod
    def _is_os_replace(module: Module, call: ast.Call) -> bool:
        """True for ``os.replace(...)`` / ``os.rename(...)``."""
        func = call.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr in {"replace", "rename"}
            and isinstance(func.value, ast.Name)
            and module.module_aliases.get(func.value.id) == "os"
        )

    def _describe_write(self, module: Module, call: ast.Call) -> Optional[str]:
        """Classify *call* as a file write, or return ``None``."""
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = self._open_mode(call)
            if mode is not None and any(ch in mode for ch in "wax+"):
                return f"open(..., {mode!r})"
            return None
        if isinstance(func, ast.Attribute):
            if func.attr in _PATH_WRITERS:
                return f".{func.attr}()"
            if func.attr in _NUMPY_WRITERS and isinstance(func.value, ast.Name):
                dotted = module.module_aliases.get(func.value.id)
                if dotted in {"numpy", "np"} or dotted == "numpy":
                    return f"np.{func.attr}()"
        return None

    @staticmethod
    def _open_mode(call: ast.Call) -> Optional[str]:
        """The constant mode string of an ``open`` call, if present."""
        if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
            value = call.args[1].value
            return value if isinstance(value, str) else None
        for keyword in call.keywords:
            if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
                value = keyword.value.value
                return value if isinstance(value, str) else None
        return None
