"""R4 — determinism of the scan/merge path.

``ScanScheduler`` promises byte-identical output across runs, worker
counts and batch sizes; the engine's records feed the content-hash
result cache, so any nondeterminism silently poisons cached verdicts.
In the configured modules the rule flags:

* wall-clock reads whose value is *data* (``time.time``,
  ``time.time_ns``, ``ctime``/``localtime``/``gmtime``/``strftime``,
  ``datetime.now``/``utcnow``/``today``).  Monotonic elapsed-time
  measurement (``time.perf_counter``, ``time.monotonic``) is allowed:
  stage timings are telemetry, excluded from record comparison.
* global-PRNG use: any ``random.*`` call except constructing a seeded
  ``random.Random``, and ``np.random.*`` except the seedable
  constructors (``default_rng``/``Generator``/``SeedSequence``/
  ``RandomState`` *with* a seed argument).
* iteration over a ``set`` feeding ordered output: ``for x in s`` or a
  comprehension where ``s`` was bound to a set in the same function —
  set order varies with hash seeding; iterate ``sorted(s)`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..core import CallGraph, LintConfig, Module, Project, iter_own_nodes
from ..registry import Finding, Rule, register

_BAD_TIME_ATTRS = {
    "time",
    "time_ns",
    "ctime",
    "localtime",
    "gmtime",
    "strftime",
    "asctime",
}
_BAD_DATETIME_ATTRS = {"now", "utcnow", "today"}
#: Seedable PRNG constructors allowed when given an explicit seed.
_SEEDABLE = {"default_rng", "Generator", "SeedSequence", "RandomState", "Random"}


@register
class DeterminismRule(Rule):
    """Flag nondeterminism sources inside the deterministic-merge modules."""

    rule_id = "R4"
    name = "determinism"
    description = (
        "no wall-clock data, unseeded PRNGs, or unsorted set iteration "
        "in the deterministic scan/merge modules"
    )

    def check(
        self, project: Project, graph: CallGraph, config: LintConfig
    ) -> Iterator[Finding]:
        """Scan each configured module's functions."""
        for module in project.modules_matching(config.determinism_modules):
            for info in project.functions.values():
                if info.module is not module:
                    continue
                yield from self._check_function(module, info)

    def _check_function(self, module: Module, info) -> Iterator[Finding]:
        """Flag clock/PRNG calls and unsorted set iteration in one function."""
        set_names = self._set_bound_names(info.node)
        for node in iter_own_nodes(info.node):
            if isinstance(node, ast.Call):
                message = self._describe_call(module, node)
                if message is not None:
                    yield self.finding(
                        module.rel, node, message, symbol=info.qualname
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(
                    module, info, node.iter, set_names
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    yield from self._check_iteration(
                        module, info, generator.iter, set_names
                    )

    def _check_iteration(
        self, module: Module, info, iter_expr: ast.AST, set_names: Set[str]
    ) -> Iterator[Finding]:
        """Flag iteration whose source is a set (literal or tracked name)."""
        is_set = isinstance(iter_expr, (ast.Set, ast.SetComp)) or (
            isinstance(iter_expr, ast.Name) and iter_expr.id in set_names
        )
        if is_set:
            what = (
                f"'{iter_expr.id}'"
                if isinstance(iter_expr, ast.Name)
                else "a set literal"
            )
            yield self.finding(
                module.rel,
                iter_expr,
                f"iteration over set {what} feeds ordered output; "
                "iterate sorted(...) instead",
                symbol=info.qualname,
            )

    @staticmethod
    def _set_bound_names(func: ast.AST) -> Set[str]:
        """Local names whose latest binding in *func* is a set expression.

        Assignment order is approximated by line number: a later rebind
        to a non-set value (``s = sorted(s)``) removes the name.
        """
        assignments = []
        for node in iter_own_nodes(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    assignments.append((node.lineno, target.id, node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    assignments.append((node.lineno, node.target.id, node.value))
        names: Set[str] = set()
        for _, name, value in sorted(assignments, key=lambda item: item[0]):
            if isinstance(value, (ast.Set, ast.SetComp)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in {"set", "frozenset"}
            ):
                names.add(name)
            else:
                names.discard(name)
        return names

    def _describe_call(self, module: Module, call: ast.Call) -> Optional[str]:
        """Classify *call* as a nondeterminism source, or return ``None``."""
        func = call.func
        if isinstance(func, ast.Name):
            imported = module.name_imports.get(func.id)
            if imported is None:
                return None
            base, original = imported
            if base == "time" and original in _BAD_TIME_ATTRS:
                return f"wall-clock read time.{original}() is nondeterministic data"
            if base == "random" and original not in _SEEDABLE:
                return f"global PRNG call random.{original}() is unseeded"
            return None
        if not (isinstance(func, ast.Attribute) and isinstance(func.value, (ast.Name, ast.Attribute))):
            return None
        owner = func.value
        if isinstance(owner, ast.Name):
            dotted = module.module_aliases.get(owner.id)
            if dotted == "time" and func.attr in _BAD_TIME_ATTRS:
                return f"wall-clock read time.{func.attr}() is nondeterministic data"
            if dotted == "datetime" and func.attr in _BAD_DATETIME_ATTRS:
                return f"wall-clock read datetime.{func.attr}() is nondeterministic data"
            if owner.id == "datetime" and func.attr in _BAD_DATETIME_ATTRS:
                # ``from datetime import datetime`` then ``datetime.now()``.
                if module.name_imports.get("datetime", ("", ""))[0] == "datetime":
                    return (
                        f"wall-clock read datetime.{func.attr}() is "
                        "nondeterministic data"
                    )
            if dotted == "random":
                return self._describe_prng(f"random.{func.attr}", func.attr, call)
        elif (
            isinstance(owner, ast.Attribute)
            and isinstance(owner.value, ast.Name)
            and owner.attr == "random"
            and module.module_aliases.get(owner.value.id) in {"numpy", "np"}
        ):
            return self._describe_prng(f"np.random.{func.attr}", func.attr, call)
        if (
            isinstance(owner, ast.Name)
            and module.module_aliases.get(owner.id) == "numpy.random"
        ):
            return self._describe_prng(f"np.random.{func.attr}", func.attr, call)
        return None

    @staticmethod
    def _describe_prng(label: str, attr: str, call: ast.Call) -> Optional[str]:
        """Flag global-PRNG calls; seedable constructors need a seed arg."""
        if attr in _SEEDABLE:
            if call.args or call.keywords:
                return None
            return f"{label}() without a seed is nondeterministic"
        return f"global PRNG call {label}() is unseeded"
