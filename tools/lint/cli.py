"""Command-line front end for repro-lint.

Mirrors the ``python -m repro`` exit-code convention:

* ``0`` — analysis ran, zero unwaived findings (and no stale waivers)
* ``1`` — analysis ran, unwaived findings (or stale waivers) remain
* ``2`` — usage error: bad path, malformed waivers file, bad flags

Human output is one ``file:line:col: RULE message`` line per finding
plus a summary; ``--json`` emits a stable machine-readable document
(schema below) for the CI gate and editor integrations::

    {
      "schema_version": 1,
      "paths": ["src/repro"],
      "rules": [{"id": "R1", "name": "...", "description": "..."}, ...],
      "findings": [{"rule", "file", "line", "col", "message",
                    "symbol", "waived", "waiver_reason"}, ...],
      "unused_waivers": ["R9 file=..."],
      "n_findings": 12, "n_waived": 12, "n_unwaived": 0
    }
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from .core import CallGraph, LintConfig, LintError, Project
from .registry import Finding, all_rules
from .waivers import Waiver, apply_waivers, load_waivers

#: Repository root (this file lives at ``tools/lint/cli.py``).
REPO_ROOT = Path(__file__).resolve().parents[2]

#: The committed suppression file; the only way to silence a finding.
DEFAULT_WAIVERS = Path(__file__).resolve().parent / "waivers.toml"

#: What ``python -m tools.lint`` analyzes when no path is given.
DEFAULT_PATHS = ["src/repro"]

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

JSON_SCHEMA_VERSION = 1


@dataclass
class LintResult:
    """Everything one lint run produced, pre-exit-code."""

    paths: List[str]
    findings: List[Finding]
    waivers: List[Waiver] = field(default_factory=list)

    @property
    def unwaived(self) -> List[Finding]:
        """Findings not suppressed by any waiver."""
        return [f for f in self.findings if not f.waived]

    @property
    def unused_waivers(self) -> List[Waiver]:
        """Waivers that matched nothing (stale — must be deleted)."""
        return [w for w in self.waivers if not w.used]

    def to_dict(self) -> dict:
        """The ``--json`` document."""
        return {
            "schema_version": JSON_SCHEMA_VERSION,
            "paths": self.paths,
            "rules": [
                {
                    "id": rule.rule_id,
                    "name": rule.name,
                    "description": rule.description,
                }
                for rule in all_rules()
            ],
            "findings": [f.to_dict() for f in self.findings],
            "unused_waivers": [w.render() for w in self.unused_waivers],
            "n_findings": len(self.findings),
            "n_waived": sum(1 for f in self.findings if f.waived),
            "n_unwaived": len(self.unwaived),
        }


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    waivers: Optional[List[Waiver]] = None,
) -> LintResult:
    """Run every registered rule over *paths* and apply *waivers*.

    The API entry point tests use directly; raises :class:`LintError`
    for unanalyzable input (missing path, syntax error).
    """
    project = Project.load([Path(p) for p in paths])
    graph = CallGraph(project)
    config = config or LintConfig()
    findings: List[Finding] = []
    for rule in all_rules():
        findings.extend(rule.check(project, graph, config))
    findings.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    waivers = waivers if waivers is not None else []
    apply_waivers(findings, waivers)
    return LintResult(paths=list(paths), findings=findings, waivers=waivers)


def _build_parser() -> argparse.ArgumentParser:
    """The ``python -m tools.lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="Project-specific static analysis for concurrency, "
        "determinism, and atomic-write invariants.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files or directories to lint (default: {DEFAULT_PATHS})",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable document"
    )
    parser.add_argument(
        "--waivers",
        type=Path,
        default=None,
        help=f"waiver file (default: {DEFAULT_WAIVERS.name} next to the linter)",
    )
    parser.add_argument(
        "--no-waivers",
        action="store_true",
        help="ignore the waiver file (show every finding unwaived)",
    )
    parser.add_argument(
        "--allow-unused-waivers",
        action="store_true",
        help="do not fail when a waiver matches nothing",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 for --help; pass through.
        return int(exc.code or 0)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name}: {rule.description}")
        return EXIT_OK

    paths = args.paths or [str(REPO_ROOT / p) for p in DEFAULT_PATHS]
    waivers: List[Waiver] = []
    try:
        if not args.no_waivers:
            waiver_path = args.waivers or DEFAULT_WAIVERS
            if args.waivers is not None or waiver_path.is_file():
                waivers = load_waivers(waiver_path)
        result = lint_paths(paths, waivers=waivers)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    failed = bool(result.unwaived) or (
        bool(result.unused_waivers) and not args.allow_unused_waivers
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return EXIT_FINDINGS if failed else EXIT_OK

    for finding in result.findings:
        if not finding.waived:
            print(finding.render())
    n_waived = sum(1 for f in result.findings if f.waived)
    for waiver in result.unused_waivers:
        print(f"stale waiver (matched nothing): {waiver.render()}", file=sys.stderr)
    summary = (
        f"{len(result.findings)} finding(s): "
        f"{len(result.unwaived)} unwaived, {n_waived} waived"
    )
    print(summary)
    return EXIT_FINDINGS if failed else EXIT_OK
