"""Waiver loading and matching.

A finding can only be suppressed through a committed TOML file (default
``tools/lint/waivers.toml``) whose entries name the rule, the file, and a
non-empty human reason::

    [[waiver]]
    rule = "R1"
    file = "src/repro/serve/eventloop.py"
    symbol = "EventLoopFrontend._apply_completions"   # optional narrowing
    reason = "bounded critical section; never held across blocking work"

``file`` is a path suffix (matched on a component boundary) so waivers
keep working when the repo is linted from a different working directory.
``symbol`` optionally narrows the waiver to one function/method.  Waivers
that match nothing are themselves reported — a stale waiver means the
underlying finding was fixed and the entry must be deleted.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence

from .core import LintError, suffix_match
from .registry import Finding


@dataclass
class Waiver:
    """One suppression entry from ``waivers.toml``."""

    rule: str
    file: str
    reason: str
    symbol: str = ""
    #: Set during matching; an unused waiver fails the run.
    used: bool = False

    def matches(self, finding: Finding) -> bool:
        """True when this waiver suppresses *finding*."""
        if self.rule != finding.rule:
            return False
        if not suffix_match(finding.file, self.file):
            return False
        if self.symbol and self.symbol != finding.symbol:
            return False
        return True

    def render(self) -> str:
        """Human-readable identity for the unused-waiver report."""
        narrow = f" symbol={self.symbol}" if self.symbol else ""
        return f"{self.rule} file={self.file}{narrow}"


def load_waivers(path: Path) -> List[Waiver]:
    """Parse *path* into :class:`Waiver` entries, validating each field.

    Raises :class:`LintError` (a usage error, exit 2) on malformed TOML,
    unknown keys, or an entry missing rule/file/reason — a waiver file
    that cannot be trusted must not silently suppress anything.
    """
    try:
        payload = tomllib.loads(path.read_text())
    except OSError as exc:
        raise LintError(f"cannot read waivers file {path}: {exc}") from exc
    except tomllib.TOMLDecodeError as exc:
        raise LintError(f"malformed waivers file {path}: {exc}") from exc
    entries = payload.get("waiver", [])
    if not isinstance(entries, list):
        raise LintError(f"{path}: 'waiver' must be an array of tables")
    waivers: List[Waiver] = []
    allowed = {"rule", "file", "reason", "symbol"}
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise LintError(f"{path}: waiver #{index + 1} is not a table")
        unknown = set(entry) - allowed
        if unknown:
            raise LintError(
                f"{path}: waiver #{index + 1} has unknown keys {sorted(unknown)}"
            )
        rule = entry.get("rule", "")
        file = entry.get("file", "")
        reason = entry.get("reason", "")
        if not (isinstance(rule, str) and rule):
            raise LintError(f"{path}: waiver #{index + 1} needs a 'rule'")
        if not (isinstance(file, str) and file):
            raise LintError(f"{path}: waiver #{index + 1} needs a 'file'")
        if not (isinstance(reason, str) and reason.strip()):
            raise LintError(
                f"{path}: waiver #{index + 1} needs a non-empty 'reason'"
            )
        waivers.append(
            Waiver(
                rule=rule,
                file=file,
                reason=reason.strip(),
                symbol=str(entry.get("symbol", "")),
            )
        )
    return waivers


def apply_waivers(findings: Sequence[Finding], waivers: Sequence[Waiver]) -> None:
    """Mark waived findings in place and flag used waivers."""
    for finding in findings:
        for waiver in waivers:
            if waiver.matches(finding):
                finding.waived = True
                finding.waiver_reason = waiver.reason
                waiver.used = True
                break
