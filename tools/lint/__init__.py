"""repro-lint: project-specific static analysis for concurrency invariants.

The subsystems grown in PRs 3-7 (flock-guarded sharded caches, the
worker-pool scan scheduler with deterministic merges, the ``selectors``
event-loop front-end) each depend on invariants that ordinary linters
cannot see: no blocking calls on the reactor thread, lock-guarded shared
state, temp-file + ``os.replace`` writes, no nondeterminism in merge
paths.  This package encodes those invariants as AST rules over a shared
analysis core (module loader, per-class attribute/lock model, and a
project-wide call graph with worklist reachability) so they are enforced
by CI instead of re-verified by hand in every review.

Run it as::

    python -m tools.lint [PATHS ...] [--json]

Findings are suppressible only through the committed
``tools/lint/waivers.toml`` (rule + file + reason); see ``docs/LINTING.md``
for the rule catalogue and waiver workflow.
"""

from .core import LintConfig, Module, Project
from .registry import Finding, Rule, all_rules

__all__ = ["LintConfig", "Module", "Project", "Finding", "Rule", "all_rules"]
