"""Rule registry and the :class:`Finding` record every rule emits.

Rules self-register at import time via :func:`register`; the CLI imports
:mod:`tools.lint.rules` once and iterates :func:`all_rules`.  Keeping the
registry separate from the rules lets tests instantiate individual rules
against fixture projects without running the whole gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Type

from .core import CallGraph, LintConfig, Project


@dataclass
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    file: str
    line: int
    col: int
    message: str
    #: Dotted symbol the finding is anchored to (``Class.method`` or
    #: ``func``), used for narrow waivers; may be empty.
    symbol: str = ""
    #: Set by the waiver pass, not by rules.
    waived: bool = field(default=False, compare=False)
    waiver_reason: str = field(default="", compare=False)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (the ``--json`` findings entry)."""
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "waived": self.waived,
            "waiver_reason": self.waiver_reason,
        }

    def render(self) -> str:
        """Human-readable one-liner (``file:line:col: RULE message``)."""
        suffix = f" [{self.symbol}]" if self.symbol else ""
        flag = " (waived)" if self.waived else ""
        return f"{self.file}:{self.line}:{self.col}: {self.rule} {self.message}{suffix}{flag}"


class Rule:
    """Base class every lint rule subclasses.

    Subclasses set ``rule_id`` (``R1`` ... ``R6``), ``name`` (short
    kebab-case slug) and ``description`` (one line for ``--list-rules``
    and the docs), and implement :meth:`check`.
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def check(
        self, project: Project, graph: CallGraph, config: LintConfig
    ) -> Iterator[Finding]:
        """Yield findings for *project*; must not mutate any input."""
        raise NotImplementedError

    def finding(self, module_rel: str, node: Any, message: str, symbol: str = "") -> Finding:
        """Build a :class:`Finding` anchored at an AST node's location."""
        return Finding(
            rule=self.rule_id,
            file=module_rel,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and index a rule by its ``rule_id``."""
    instance = cls()
    if not instance.rule_id:
        raise ValueError(f"{cls.__name__} must set rule_id")
    if instance.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.rule_id}")
    _REGISTRY[instance.rule_id] = instance
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by rule id."""
    from . import rules  # noqa: F401  (import-time registration)

    return [rule for _, rule in sorted(_REGISTRY.items())]
