"""``python -m tools.lint`` — run the static-analysis gate."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
