"""Shared analysis core for repro-lint.

Three layers, all built once per run and handed to every rule:

:class:`Project`
    Loads every ``*.py`` file under the lint paths and parses it with
    ``ast`` — analyzed code is never imported or executed.  Each
    :class:`Module` keeps its source lines so rules can inspect trailing
    comments (``ast`` drops them).

:class:`ClassModel`
    The per-class attribute/lock model: which ``self.X`` attributes a
    class assigns, and which of them hold ``threading`` synchronization
    primitives (``Lock``/``RLock``/``Condition``/semaphores).  The lock
    rules key off this instead of hard-coded attribute names, so a class
    guarding state with ``self._mem_lock`` is modelled the same way as
    one using ``self._lock``.

:class:`CallGraph`
    A project-wide, conservatively-resolved call graph (module-level
    functions, ``self.`` methods, imported names, and constructor calls
    into ``__init__``) with worklist reachability — the reactor-purity
    rule uses it to follow the event loop's callbacks transitively.
    Unresolvable calls (duck-typed attributes, callables passed as
    values) are simply not followed; rules that need soundness over such
    boundaries must say so in their catalogue entry.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: ``threading`` constructors whose result makes an attribute a "lock" in
#: the class model.  ``Condition`` included: code that does
#: ``with self._cond:`` is taking a lock.
LOCK_FACTORY_NAMES = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
}

#: Method names that mutate their receiver in place; used to treat
#: ``self.attr.append(...)`` as a write to ``attr``.
MUTATOR_METHOD_NAMES = {
    "append",
    "appendleft",
    "add",
    "insert",
    "extend",
    "update",
    "setdefault",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "discard",
    "clear",
    "sort",
    "reverse",
}


class LintError(RuntimeError):
    """Raised for conditions that abort the run (bad path, unparseable file)."""


def iter_own_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """Yield every descendant of *node* without entering nested scopes.

    Nested ``def``/``class``/``lambda`` bodies execute only when called,
    so a rule scanning a function for, say, blocking calls must not
    attribute a nested closure's body to the enclosing function.  The
    nested definition node itself is still yielded (so rules can see it
    exists); its children are not.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(child))


@dataclass
class LintConfig:
    """Scoping knobs for the path-targeted rules.

    Defaults describe this repository's layout; tests point the same
    fields at fixture trees.  All path entries are ``/``-separated
    suffixes matched against each module's path on a path-component
    boundary (``serve/eventloop.py`` matches
    ``src/repro/serve/eventloop.py`` but not ``xserve/eventloop.py``).
    """

    #: ``(path_suffix, class_name, root_method)`` triples: the reactor
    #: classes whose loop-thread entry point must never reach a blocking
    #: call (rule R1).
    reactor_roots: List[Tuple[str, str, str]] = field(
        default_factory=lambda: [("serve/eventloop.py", "EventLoopFrontend", "run")]
    )
    #: Modules that manage cache/artifact/feature-store directories and
    #: therefore must write through the temp-file + ``os.replace`` idiom
    #: (rule R3).
    atomic_write_modules: List[str] = field(
        default_factory=lambda: [
            "engine/cache.py",
            "engine/feature_store.py",
            "engine/artifacts.py",
            "engine/scheduler.py",
            "serve/registry.py",
        ]
    )
    #: Modules on the deterministic-merge path: scan output from these
    #: must be byte-identical across runs, workers and batch sizes
    #: (rule R4).
    determinism_modules: List[str] = field(
        default_factory=lambda: [
            "engine/scheduler.py",
            "engine/scan.py",
            "core/results.py",
        ]
    )


def suffix_match(rel: str, suffix: str) -> bool:
    """True when posix path *rel* ends with *suffix* on a component boundary."""
    if rel == suffix:
        return True
    return rel.endswith("/" + suffix.lstrip("/"))


@dataclass
class Module:
    """One parsed source file plus the raw lines rules need for comments."""

    path: Path
    rel: str
    name: str
    tree: ast.Module
    lines: List[str]

    #: local alias -> dotted module name, from ``import X`` / ``from P import M``.
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> (source module dotted name, original name), from
    #: ``from M import f [as g]``.
    name_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    def line(self, lineno: int) -> str:
        """Return the 1-indexed source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclass
class FunctionInfo:
    """A directly-addressable function: module-level or a class method."""

    module: Module
    qualname: str  # "func" or "Class.method"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None

    @property
    def key(self) -> Tuple[str, str]:
        """Stable call-graph node id: ``(module.rel, qualname)``."""
        return (self.module.rel, self.qualname)


@dataclass
class ClassModel:
    """Per-class attribute/lock model used by the concurrency rules."""

    module: Module
    name: str
    node: ast.ClassDef
    methods: Dict[str, ast.AST] = field(default_factory=dict)
    #: ``self.X`` attributes assigned a ``threading`` primitive.
    lock_attrs: Set[str] = field(default_factory=set)
    #: every ``self.X`` attribute the class assigns anywhere.
    assigned_attrs: Set[str] = field(default_factory=set)


def _module_name_for(rel: str) -> str:
    """Dotted module name for a posix path (``src/repro/a/b.py`` -> ``src.repro.a.b``)."""
    name = rel[:-3] if rel.endswith(".py") else rel
    if name.endswith("/__init__"):
        name = name[: -len("/__init__")]
    return name.replace("/", ".")


def _self_attr(node: ast.AST) -> Optional[str]:
    """Return ``X`` when *node* is the expression ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class Project:
    """Every parsed module under the lint paths, plus derived indexes."""

    def __init__(self, modules: List[Module]) -> None:
        self.modules = modules
        self.by_rel: Dict[str, Module] = {m.rel: m for m in modules}
        self.by_name: Dict[str, Module] = {m.name: m for m in modules}
        self.functions: Dict[Tuple[str, str], FunctionInfo] = {}
        self.classes: Dict[Tuple[str, str], ClassModel] = {}
        for module in modules:
            self._index_module(module)

    # -- loading -------------------------------------------------------------
    @classmethod
    def load(cls, paths: Sequence[Path]) -> "Project":
        """Parse every ``*.py`` under *paths* (files or directories).

        Raises :class:`LintError` for a missing path or a file that does
        not parse — an unparseable tree cannot be analyzed, so the run
        aborts rather than reporting a partial result.
        """
        files: List[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.is_file():
                files.append(path)
            else:
                raise LintError(f"no such file or directory: {path}")
        modules: List[Module] = []
        seen: Set[Path] = set()
        for path in files:
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            rel = cls._relativize(path)
            source = path.read_text()
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                raise LintError(f"cannot parse {path}: {exc}") from exc
            module = Module(
                path=path,
                rel=rel,
                name=_module_name_for(rel),
                tree=tree,
                lines=source.splitlines(),
            )
            cls._collect_imports(module)
            modules.append(module)
        return cls(modules)

    @staticmethod
    def _relativize(path: Path) -> str:
        """Posix path relative to the current directory when possible."""
        resolved = path.resolve()
        try:
            return resolved.relative_to(Path.cwd()).as_posix()
        except ValueError:
            return resolved.as_posix()

    @staticmethod
    def _collect_imports(module: Module) -> None:
        """Fill the module's alias tables from its top-level/function imports."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    dotted = alias.name if alias.asname else alias.name.split(".")[0]
                    module.module_aliases[local] = dotted
                    if alias.asname is None and "." in alias.name:
                        # ``import a.b`` binds ``a`` but makes ``a.b`` reachable;
                        # remember the full path under its own name too.
                        module.module_aliases.setdefault(alias.name, alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = Project._resolve_from_base(module, node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.name_imports[local] = (base, alias.name)

    @staticmethod
    def _resolve_from_base(module: Module, node: ast.ImportFrom) -> str:
        """Dotted base module for a ``from ... import`` statement."""
        if node.level == 0:
            return node.module or ""
        package_parts = module.name.split(".")
        if not module.rel.endswith("/__init__.py"):
            package_parts = package_parts[:-1]
        if node.level > 1:
            package_parts = package_parts[: len(package_parts) - (node.level - 1)]
        base = ".".join(package_parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    # -- indexing ------------------------------------------------------------
    def _index_module(self, module: Module) -> None:
        """Populate the function and class indexes for one module."""
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(module=module, qualname=node.name, node=node)
                self.functions[info.key] = info
            elif isinstance(node, ast.ClassDef):
                model = ClassModel(module=module, name=node.name, node=node)
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        model.methods[child.name] = child
                        info = FunctionInfo(
                            module=module,
                            qualname=f"{node.name}.{child.name}",
                            node=child,
                            class_name=node.name,
                        )
                        self.functions[info.key] = info
                self._model_attributes(model)
                self.classes[(module.rel, node.name)] = model

    def _model_attributes(self, model: ClassModel) -> None:
        """Record which ``self.X`` attributes a class assigns and which are locks."""
        for method in model.methods.values():
            for node in ast.walk(method):
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                else:
                    continue
                for target in targets:
                    elements = (
                        list(target.elts)
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target]
                    )
                    for element in elements:
                        attr = _self_attr(element)
                        if attr is None:
                            continue
                        model.assigned_attrs.add(attr)
                        value = getattr(node, "value", None)
                        if value is not None and self._is_lock_factory(
                            model.module, value
                        ):
                            model.lock_attrs.add(attr)

    @staticmethod
    def _is_lock_factory(module: Module, value: ast.AST) -> bool:
        """True when *value* constructs a ``threading`` synchronization primitive."""
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            dotted = module.module_aliases.get(func.value.id)
            return dotted == "threading" and func.attr in LOCK_FACTORY_NAMES
        if isinstance(func, ast.Name):
            imported = module.name_imports.get(func.id)
            if imported is not None:
                base, original = imported
                return base == "threading" and original in LOCK_FACTORY_NAMES
        return False

    # -- lookups used by rules ----------------------------------------------
    def modules_matching(self, suffixes: Iterable[str]) -> List[Module]:
        """Modules whose path matches any of the configured suffixes."""
        out: List[Module] = []
        for module in self.modules:
            if any(suffix_match(module.rel, suffix) for suffix in suffixes):
                out.append(module)
        return out

    def resolve_module(self, dotted: str) -> Optional[Module]:
        """Find a project module by dotted name, tolerating path-prefix skew.

        An absolute import says ``repro.engine.cache`` while the file
        loads as ``src.repro.engine.cache``; exact match is tried first,
        then a component-boundary suffix match.
        """
        if not dotted:
            return None
        exact = self.by_name.get(dotted)
        if exact is not None:
            return exact
        tail = "." + dotted
        matches = [m for m in self.modules if m.name.endswith(tail)]
        if len(matches) == 1:
            return matches[0]
        return None

    def class_model(self, module: Module, class_name: str) -> Optional[ClassModel]:
        """The :class:`ClassModel` for ``class_name`` in *module*, if indexed."""
        return self.classes.get((module.rel, class_name))


class CallGraph:
    """Conservative project-wide call graph with worklist reachability."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.edges: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
        for info in project.functions.values():
            self.edges[info.key] = self._callees(info)

    def _callees(self, info: FunctionInfo) -> Set[Tuple[str, str]]:
        """Resolve every call made directly by *info* to project functions."""
        out: Set[Tuple[str, str]] = set()
        for node in iter_own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = self.resolve_call(info, node)
            if resolved is not None:
                out.add(resolved)
        return out

    def resolve_call(
        self, info: FunctionInfo, call: ast.Call
    ) -> Optional[Tuple[str, str]]:
        """Map one ``ast.Call`` to a project function key, or ``None``.

        Handles direct names (same module or ``from``-imported),
        ``self.method()`` within a class, ``module.func()`` through an
        import alias, and constructor calls (edge into ``__init__``).
        """
        func = call.func
        module = info.module
        if isinstance(func, ast.Name):
            return self.resolve_name(module, func.id)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner = func.value.id
            if owner == "self" and info.class_name is not None:
                model = self.project.class_model(module, info.class_name)
                if model is not None and func.attr in model.methods:
                    return (module.rel, f"{info.class_name}.{func.attr}")
                return None
            dotted = module.module_aliases.get(owner)
            if dotted is not None:
                target = self.project.resolve_module(dotted)
                if target is not None:
                    return self.resolve_name(target, func.attr, imported=False)
        return None

    def resolve_name(
        self, module: Module, name: str, imported: bool = True
    ) -> Optional[Tuple[str, str]]:
        """Resolve a bare *name* in *module* to a function key.

        Checks module-level functions, classes (edge to ``__init__``),
        then — when *imported* — the module's ``from``-import table.
        """
        if (module.rel, name) in self.project.functions:
            return (module.rel, name)
        model = self.project.class_model(module, name)
        if model is not None:
            if "__init__" in model.methods:
                return (module.rel, f"{name}.__init__")
            return None
        if imported and name in module.name_imports:
            base, original = module.name_imports[name]
            target = self.project.resolve_module(base)
            if target is not None and target is not module:
                return self.resolve_name(target, original, imported=False)
        return None

    def reachable(self, roots: Iterable[Tuple[str, str]]) -> Set[Tuple[str, str]]:
        """Worklist closure: every function reachable from *roots* (inclusive)."""
        seen: Set[Tuple[str, str]] = set()
        work = [root for root in roots if root in self.edges]
        while work:
            key = work.pop()
            if key in seen:
                continue
            seen.add(key)
            work.extend(self.edges.get(key, ()) - seen)
        return seen
