#!/usr/bin/env python
"""Serve overload smoke: flood past the admission budget, then drain.

The chaos suite (``tests/test_chaos.py``) covers overload protection
in-process; this script covers what only a subprocess can: the
``python -m repro serve`` entry point under sustained overload with a
tiny admission budget, memory boundedness of the shedding path, and a
clean signal-driven drain while rejected traffic is still arriving.  It

1. starts ``python -m repro serve`` with a deliberately slow batch
   window, ``--max-batch 1`` and a small ``--max-queue-depth``, so a
   concurrent flood must overflow the admission gate,
2. fires waves of concurrent ``POST /scan`` requests and asserts every
   single one is *answered* — accepted requests scan (200), excess is
   shed with ``429`` + ``Retry-After`` (and never a socket error or
   hang),
3. asserts the shedding is observable (``rejected_by_reason.overload``
   in ``/metrics``) and free of memory growth: server RSS after the
   flood must stay within a fixed budget of its pre-flood value,
4. sends SIGTERM and asserts a clean drain: exit code 0 and the
   ``shutdown clean`` summary line.

Run from the repository root (CI chaos job)::

    PYTHONPATH=src python tools/overload_smoke.py --artifact /tmp/detector

Exit status is non-zero on any failed expectation.
"""

from __future__ import annotations

import argparse
import http.client
import json
import signal
import socket
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.serve.bench import build_request_corpus  # noqa: E402
from repro.serve.client import ScanServiceClient  # noqa: E402


def _free_port() -> int:
    """Ask the kernel for a currently-free TCP port."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _rss_kib(pid: int) -> int:
    """The process's resident set size in KiB (Linux /proc)."""
    with open(f"/proc/{pid}/status") as status:
        for line in status:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise AssertionError(f"no VmRSS for pid {pid}")


def _post_scan(port: int, name: str, text: str) -> tuple:
    """One raw POST /scan; returns (status, retry_after_header_or_None)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        body = json.dumps({"sources": [{"name": name, "source": text}]})
        conn.request(
            "POST", "/scan", body=body, headers={"Content-Type": "application/json"}
        )
        response = conn.getresponse()
        response.read()
        return response.status, response.getheader("Retry-After")
    finally:
        conn.close()


def main() -> int:
    """Run the overload sequence; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifact", required=True, metavar="DIR", help="trained artifact directory"
    )
    parser.add_argument("--waves", type=int, default=4, help="flood waves to fire")
    parser.add_argument(
        "--requests", type=int, default=16, help="concurrent scans per wave"
    )
    parser.add_argument(
        "--rss-budget-mib",
        type=int,
        default=256,
        help="max allowed server RSS growth across the flood",
    )
    args = parser.parse_args()

    port = _free_port()
    command = [
        sys.executable, "-m", "repro", "serve",
        "--artifact", args.artifact,
        "--port", str(port),
        "--no-cache",
        "--batch-window-ms", "150",
        "--max-batch", "1",
        "--max-queue-depth", "2",
    ]
    print(f"starting: {' '.join(command)}")
    server = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    try:
        probe = ScanServiceClient(port=port, timeout=30.0)
        health = probe.wait_until_ready(timeout=60.0)
        assert health["status"] == "ok", health
        assert health["faults"] == [], health  # no injection leaked into serve
        rss_before = _rss_kib(server.pid)
        print(f"healthy on port {port}, RSS {rss_before // 1024} MiB")

        corpus = build_request_corpus(args.requests, seed=321)
        accepted = shed = 0
        for wave in range(args.waves):
            with ThreadPoolExecutor(args.requests) as pool:
                outcomes = list(
                    pool.map(lambda p: _post_scan(port, *p), corpus)
                )
            statuses = [status for status, _ in outcomes]
            assert set(statuses) <= {200, 429}, statuses
            for status, retry_after in outcomes:
                if status == 429:
                    assert retry_after is not None, "429 without Retry-After"
                    shed += 1
                else:
                    accepted += 1
            print(
                f"wave {wave + 1}/{args.waves}: "
                f"{statuses.count(200)} accepted, {statuses.count(429)} shed"
            )
        assert accepted > 0, "admission gate shed every request"
        assert shed > 0, (
            "flood never overflowed the admission gate; smoke is not "
            "exercising overload protection"
        )

        metrics = probe.metrics()
        rejected = metrics["rejected_by_reason"]
        assert rejected.get("overload", 0) >= shed, rejected
        assert metrics["scan_requests"] == accepted, metrics

        rss_after = _rss_kib(server.pid)
        growth_mib = max(0, rss_after - rss_before) // 1024
        print(f"RSS after flood {rss_after // 1024} MiB (+{growth_mib} MiB)")
        assert growth_mib < args.rss_budget_mib, (
            f"server RSS grew {growth_mib} MiB under overload "
            f"(budget {args.rss_budget_mib} MiB): shed requests are leaking"
        )

        probe.close()
        print("sending SIGTERM")
        server.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + 60.0
        while server.poll() is None and time.monotonic() < deadline:
            time.sleep(0.1)
        assert server.poll() is not None, "server did not exit after SIGTERM"
        output = server.stdout.read() if server.stdout else ""
        print(output)
        assert server.returncode == 0, f"server exited {server.returncode}"
        assert "shutdown clean" in output, "drain summary missing from output"
        print(f"overload smoke OK ({accepted} accepted, {shed} shed)")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
