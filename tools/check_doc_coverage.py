#!/usr/bin/env python
"""Docstring-coverage check for the public API surface.

Walks every module under ``src/repro`` with ``ast`` (no imports, so it is
fast and side-effect free) and reports public objects — modules, classes,
functions and methods whose names do not start with ``_`` — that lack a
docstring.  Paths listed in ``STRICT_PATHS`` must be at 100%; everything
else must stay above the ``--min`` overall threshold.

Run with::

    python tools/check_doc_coverage.py [--min 90] [--verbose]

Exit status is non-zero when either bar is missed (used by the CI docs
job).
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

ROOT = Path(__file__).resolve().parents[1]
SOURCE_ROOT = ROOT / "src" / "repro"

#: ``(directory, label_prefix)`` pairs the checker walks; the prefix is
#: prepended to each file's relative name so strict-path matching and
#: reports stay unambiguous across roots.
SCAN_ROOTS = (
    (SOURCE_ROOT, ""),
    (ROOT / "tools" / "lint", "tools/lint/"),
)

#: Labelled paths that must be 100% documented: the scan engine and
#: serving layer, the serialization/conformal modules they build on, and
#: the static-analysis gate that polices them.
STRICT_PATHS = (
    "engine",
    "serve",
    "obs",
    "faults",
    "conformal/icp.py",
    "nn/serialize.py",
    "tools/lint",
)

#: Decorators whose presence exempts a function (e.g. overloads).
_EXEMPT_DECORATORS = {"overload"}


def _iter_public_nodes(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(qualified_name, node)`` for every public definition."""

    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = child.name
                if name.startswith("_"):
                    continue
                decorators = {
                    d.id
                    for d in getattr(child, "decorator_list", [])
                    if isinstance(d, ast.Name)
                }
                if decorators & _EXEMPT_DECORATORS:
                    continue
                qualified = f"{prefix}{name}"
                yield qualified, child
                if isinstance(child, ast.ClassDef):
                    yield from walk(child, f"{qualified}.")

    yield from walk(tree, "")


def check_file(path: Path, relative: str) -> Tuple[int, int, List[str]]:
    """Return ``(documented, total, missing_names)`` for one module."""
    tree = ast.parse(path.read_text())
    documented = 0
    total = 1  # the module itself
    missing: List[str] = []
    if ast.get_docstring(tree):
        documented += 1
    else:
        missing.append(f"{relative}: <module>")
    for name, node in _iter_public_nodes(tree):
        total += 1
        if ast.get_docstring(node):
            documented += 1
        else:
            missing.append(f"{relative}: {name}")
    return documented, total, missing


def is_strict(relative: str) -> bool:
    """Whether the labelled relative path falls under a strict prefix."""
    return any(
        relative == strict or relative.startswith(strict.rstrip("/") + "/")
        for strict in STRICT_PATHS
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--min",
        type=float,
        default=65.0,
        help="overall coverage floor (percent); ratchet upward as coverage grows",
    )
    parser.add_argument("--verbose", action="store_true", help="list every miss")
    args = parser.parse_args()

    documented = total = 0
    strict_missing: List[str] = []
    all_missing: List[str] = []
    for root, prefix in SCAN_ROOTS:
        for path in sorted(root.rglob("*.py")):
            relative = prefix + path.relative_to(root).as_posix()
            file_documented, file_total, missing = check_file(path, relative)
            documented += file_documented
            total += file_total
            all_missing.extend(missing)
            if is_strict(relative) and missing:
                strict_missing.extend(missing)

    coverage = 100.0 * documented / max(total, 1)
    print(f"docstring coverage: {documented}/{total} public objects ({coverage:.1f}%)")

    failed = False
    if strict_missing:
        failed = True
        print(f"\nFAIL: strict paths {STRICT_PATHS} must be 100% documented; missing:")
        for name in strict_missing:
            print(f"  {name}")
    if coverage < args.min:
        failed = True
        print(f"\nFAIL: coverage {coverage:.1f}% is below the {args.min:.1f}% floor")
    if args.verbose and all_missing:
        print("\nall undocumented public objects:")
        for name in all_missing:
            print(f"  {name}")
    if not failed:
        print("OK")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
