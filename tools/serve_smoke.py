#!/usr/bin/env python
"""End-to-end smoke test of the online scan service as a real process.

The pytest suite drives :class:`repro.serve.server.ScanService`
in-process; this script covers what only a subprocess can: the
``python -m repro serve`` entry point itself, signal-driven graceful
shutdown, and the drain summary on stdout.  It

1. starts ``python -m repro serve`` against the given artifact(s) on a
   free port (repeat ``--artifact NAME=DIR`` for a multi-model fleet,
   ``--shadow NAME`` to stand up a challenger),
2. fires concurrent single-design scans through
   :class:`repro.serve.client.ScanServiceClient` (one client per
   thread), routing across every registered model,
3. asserts the ``/metrics`` batch counters prove micro-batching
   actually coalesced requests (and that per-model routing counted),
   then scrapes ``/metrics?format=prometheus`` and validates the text
   exposition parses with the expected counter/histogram/gauge families,
4. exercises ``POST /reload`` and ``/healthz`` — plus ``POST /promote``
   when ``--promote`` is given, asserting the champion actually swaps,
5. sends SIGTERM and asserts a clean drain: exit code 0 and the
   ``shutdown clean`` summary line.

Run from the repository root (CI serve job)::

    PYTHONPATH=src python tools/serve_smoke.py --artifact /tmp/detector
    PYTHONPATH=src python tools/serve_smoke.py \
        --artifact champ=/tmp/a --artifact chal=/tmp/b \
        --shadow chal --promote

Exit status is non-zero on any failed expectation.
"""

from __future__ import annotations

import argparse
import signal
import socket
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.metrics import parse_prometheus_text  # noqa: E402
from repro.serve.bench import build_request_corpus  # noqa: E402
from repro.serve.client import ScanServiceClient  # noqa: E402


def _free_port() -> int:
    """Ask the kernel for a currently-free TCP port."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _model_names(specs) -> list:
    """The registered model names for a list of ``[NAME=]DIR`` specs."""
    names = []
    for spec in specs:
        name, sep, _ = spec.partition("=")
        names.append(name if sep and name else "default")
    return names


def main() -> int:
    """Run the smoke sequence; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifact",
        action="append",
        required=True,
        metavar="[NAME=]DIR",
        help="trained artifact directory (repeat for a multi-model fleet)",
    )
    parser.add_argument(
        "--shadow", default=None, metavar="NAME", help="challenger model name"
    )
    parser.add_argument(
        "--promote",
        action="store_true",
        help="force-promote the challenger mid-run and assert the swap",
    )
    parser.add_argument("--requests", type=int, default=24, help="concurrent scans to fire")
    parser.add_argument("--clients", type=int, default=6, help="client threads")
    parser.add_argument(
        "--cache-dir", default=None, help="cache directory (default: artifact-sibling)"
    )
    args = parser.parse_args()
    if args.promote and not args.shadow:
        parser.error("--promote needs --shadow NAME")

    names = _model_names(args.artifact)
    first_dir = args.artifact[0].partition("=")[2] or args.artifact[0]
    port = _free_port()
    cache_dir = args.cache_dir or str(Path(first_dir).parent / "serve_smoke_cache")
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--port", str(port),
        "--cache-dir", cache_dir,
        "--batch-window-ms", "20",
    ]
    for spec in args.artifact:
        command += ["--artifact", spec]
    if args.shadow:
        # A huge evidence floor: this run tests *forced* promotion, the
        # auto-promotion gate is covered by tests/test_serve_rollout.py.
        command += ["--shadow", args.shadow, "--min-shadow", "1000000"]
    print(f"starting: {' '.join(command)}")
    server = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    n_scans = 0
    try:
        probe = ScanServiceClient(port=port, timeout=30.0)
        health = probe.wait_until_ready(timeout=60.0)
        assert health["status"] == "ok", health
        assert set(health["models"]) == set(names), health
        champion = health["champion"]
        print(
            f"healthy: version {health['version']}, frontend "
            f"{health['frontend']}, models {sorted(health['models'])}, "
            f"champion {champion}"
        )

        corpus = build_request_corpus(args.requests, seed=123)
        routed = [names[i % len(names)] for i in range(args.requests)]

        def scan_one(pair_model):
            (name, text), model = pair_model
            with ScanServiceClient(port=port, timeout=60.0) as client:
                return client.scan_texts([(name, text)], model=model)

        with ThreadPoolExecutor(args.clients) as pool:
            responses = list(pool.map(scan_one, zip(corpus, routed)))
        n_scans += args.requests
        assert len(responses) == args.requests
        assert all(r["n_designs"] == 1 and r["n_errors"] == 0 for r in responses)
        assert [r["model"] for r in responses] == routed
        biggest = max(r["batch"]["designs"] for r in responses)
        print(f"scanned {args.requests} designs across {len(names)} model(s); "
              f"largest micro-batch {biggest}")

        metrics = probe.metrics()
        assert metrics["scan_requests"] == args.requests, metrics
        assert metrics["designs_total"] == args.requests, metrics
        assert 0 < metrics["batches_total"] <= args.requests, metrics
        assert metrics["max_batch_designs"] == biggest, metrics
        assert biggest > 1, "micro-batching never coalesced concurrent requests"
        assert metrics["latency_seconds"]["p50"] is not None
        for name in names:
            assert metrics["scans_by_model"].get(name, 0) > 0, metrics

        # Prometheus scrape: the exposition must parse (parse_prometheus_text
        # raises on any malformed line) and agree with the JSON counters.
        exposition = parse_prometheus_text(probe.metrics_prometheus())
        assert exposition[("repro_serve_scan_requests_total", ())] == args.requests
        latency_count = sum(
            value
            for (name, _labels), value in exposition.items()
            if name == "repro_serve_scan_latency_seconds_count"
        )
        assert latency_count == args.requests, latency_count
        for name in names:
            nominal_key = ("repro_serve_coverage_nominal", (("model", name),))
            alarm_key = ("repro_serve_coverage_alarm", (("model", name),))
            assert 0.0 < exposition[nominal_key] < 1.0, exposition[nominal_key]
            assert exposition[alarm_key] == 0.0, exposition[alarm_key]
        print(f"prometheus exposition OK ({len(exposition)} samples)")

        reload_payload = probe.reload()
        assert reload_payload["reloaded"] is False  # unchanged artifacts
        # Repeat traffic must hit the (flushed-on-demand) result cache or
        # the in-memory records.
        warm = probe.scan_texts([corpus[0]], model=routed[0])
        n_scans += 1
        assert warm["n_cache_hits"] == 1, warm
        print("metrics, reload and cache-hit checks OK")

        if args.promote:
            assert metrics["rollout"]["state"] == "shadowing", metrics
            promoted = probe.promote()
            assert promoted["champion"] == args.shadow, promoted
            assert promoted["rollout"]["forced"] is True, promoted
            after = probe.scan_texts([corpus[1]])  # default routing
            n_scans += 1
            assert after["model"] == args.shadow, after
            forced = probe.metrics()
            assert forced["forced_promotions"] == 1, forced
            print(f"forced promotion OK: champion is now {args.shadow!r}")

        probe.close()
        print("sending SIGTERM")
        server.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + 60.0
        while server.poll() is None and time.monotonic() < deadline:
            time.sleep(0.1)
        assert server.poll() is not None, "server did not exit after SIGTERM"
        output = server.stdout.read() if server.stdout else ""
        print(output)
        assert server.returncode == 0, f"server exited {server.returncode}"
        assert "shutdown clean" in output, "drain summary missing from output"
        assert f"served {n_scans} scan requests" in output
        print("serve smoke OK")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
