#!/usr/bin/env python
"""End-to-end smoke test of the online scan service as a real process.

The pytest suite drives :class:`repro.serve.server.ScanService`
in-process; this script covers what only a subprocess can: the
``python -m repro serve`` entry point itself, signal-driven graceful
shutdown, and the drain summary on stdout.  It

1. starts ``python -m repro serve`` against the given artifact on a
   free port,
2. fires concurrent single-design scans through
   :class:`repro.serve.client.ScanServiceClient` (one client per
   thread),
3. asserts the ``/metrics`` batch counters prove micro-batching
   actually coalesced requests,
4. exercises ``POST /reload`` and ``/healthz``,
5. sends SIGTERM and asserts a clean drain: exit code 0 and the
   ``shutdown clean`` summary line.

Run from the repository root (CI serve job)::

    PYTHONPATH=src python tools/serve_smoke.py --artifact /tmp/detector

Exit status is non-zero on any failed expectation.
"""

from __future__ import annotations

import argparse
import signal
import socket
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.serve.bench import build_request_corpus  # noqa: E402
from repro.serve.client import ScanServiceClient  # noqa: E402


def _free_port() -> int:
    """Ask the kernel for a currently-free TCP port."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def main() -> int:
    """Run the smoke sequence; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifact", required=True, help="trained artifact directory")
    parser.add_argument("--requests", type=int, default=24, help="concurrent scans to fire")
    parser.add_argument("--clients", type=int, default=6, help="client threads")
    parser.add_argument(
        "--cache-dir", default=None, help="cache directory (default: artifact-sibling)"
    )
    args = parser.parse_args()

    port = _free_port()
    cache_dir = args.cache_dir or str(Path(args.artifact).parent / "serve_smoke_cache")
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--artifact", args.artifact,
        "--port", str(port),
        "--cache-dir", cache_dir,
        "--batch-window-ms", "20",
    ]
    print(f"starting: {' '.join(command)}")
    server = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    try:
        probe = ScanServiceClient(port=port, timeout=30.0)
        health = probe.wait_until_ready(timeout=60.0)
        assert health["status"] == "ok", health
        print(f"healthy: version {health['version']}, "
              f"fingerprint {health['model']['fingerprint'][:12]}")

        corpus = build_request_corpus(args.requests, seed=123)

        def scan_one(pair):
            with ScanServiceClient(port=port, timeout=60.0) as client:
                return client.scan_texts([pair])

        with ThreadPoolExecutor(args.clients) as pool:
            responses = list(pool.map(scan_one, corpus))
        assert len(responses) == args.requests
        assert all(r["n_designs"] == 1 and r["n_errors"] == 0 for r in responses)
        biggest = max(r["batch"]["designs"] for r in responses)
        print(f"scanned {args.requests} designs; largest micro-batch {biggest}")

        metrics = probe.metrics()
        assert metrics["scan_requests"] == args.requests, metrics
        assert metrics["designs_total"] == args.requests, metrics
        assert 0 < metrics["batches_total"] <= args.requests, metrics
        assert metrics["max_batch_designs"] == biggest, metrics
        assert biggest > 1, "micro-batching never coalesced concurrent requests"
        assert metrics["latency_seconds"]["p50"] is not None

        reload_payload = probe.reload()
        assert reload_payload["reloaded"] is False  # unchanged artifact
        # Repeat traffic must hit the (flushed-on-demand) result cache or
        # the in-memory records.
        warm = probe.scan_texts([corpus[0]])
        assert warm["n_cache_hits"] == 1, warm
        probe.close()
        print("metrics, reload and cache-hit checks OK; sending SIGTERM")

        server.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + 60.0
        while server.poll() is None and time.monotonic() < deadline:
            time.sleep(0.1)
        assert server.poll() is not None, "server did not exit after SIGTERM"
        output = server.stdout.read() if server.stdout else ""
        print(output)
        assert server.returncode == 0, f"server exited {server.returncode}"
        assert "shutdown clean" in output, "drain summary missing from output"
        assert f"served {args.requests + 1} scan requests" in output
        print("serve smoke OK")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
