"""Repository tooling: doc/link checkers, serve smoke driver, and the
:mod:`tools.lint` static-analysis gate.

Everything in here is stdlib-only and runs against the source tree with
``ast`` — nothing imports ``repro`` itself, so the tools work without
``PYTHONPATH=src`` and never execute project code.
"""
