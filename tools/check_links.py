#!/usr/bin/env python
"""Verify that internal Markdown links in the documentation resolve.

Scans ``README.md`` and every ``docs/*.md`` file for Markdown links and
images.  For each relative link it checks the target file exists (relative
to the linking file), and for ``file.md#anchor`` links it additionally
checks that a heading yielding that GitHub-style anchor exists in the
target.  External (``http(s)://``) links are not fetched.

Run with::

    python tools/check_links.py

Exit status is non-zero when any internal link is broken (used by the CI
docs job).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List

ROOT = Path(__file__).resolve().parents[1]

#: Inline Markdown links/images: [text](target) — excludes code spans by
#: virtue of Markdown convention in this repo (no links inside backticks).
_LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_anchor(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, strip punctuation, dashes."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_in(path: Path) -> set:
    return {github_anchor(m.group(1)) for m in _HEADING_PATTERN.finditer(path.read_text())}


def check_file(path: Path) -> List[str]:
    """Return a list of broken-link descriptions for one Markdown file."""
    errors: List[str] = []
    for match in _LINK_PATTERN.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if github_anchor(target[1:]) not in anchors_in(path):
                errors.append(f"{path.relative_to(ROOT)}: missing anchor {target}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(ROOT)}: missing target {target}")
            continue
        if anchor and resolved.suffix == ".md":
            if github_anchor(anchor) not in anchors_in(resolved):
                errors.append(f"{path.relative_to(ROOT)}: missing anchor {target}")
    return errors


def main() -> int:
    candidates = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]
    errors: List[str] = []
    checked = 0
    for path in candidates:
        if not path.is_file():
            continue
        checked += 1
        errors.extend(check_file(path))
    print(f"checked {checked} Markdown files")
    if errors:
        print("broken internal links:")
        for error in errors:
            print(f"  {error}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
