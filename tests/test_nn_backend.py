"""Compute-backend tests: registry, fused-f32 equivalence, int8 quantization.

The acceptance properties of the backend seam:

* the registry knows exactly the built-in backends, rejects unknown names
  with a clear ``ValueError``, and accepts plugin registrations;
* the fused float32 plan matches the float64 forward within 1e-4 on every
  supported layer type (measured slack is ~1e-7);
* the int8 plan's exported quantization state round-trips byte-identically
  and compiling from that state reproduces the exact same outputs;
* scratch-buffer reuse is deterministic: repeated calls on the same plan
  return identical results;
* the threaded GEMM path is exact (column tiling splits pure matmuls).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AvgPool1d,
    AvgPool2d,
    BatchNorm1d,
    Conv1d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePool1d,
    LeakyReLU,
    MaxPool1d,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    available_backends,
    fused_gemm,
    get_backend,
    register_backend,
)
from repro.nn.backend import (
    DEFAULT_BACKEND,
    GEMM_MIN_TILE_COLS,
    PROFILER,
    InferencePlan,
    _BACKENDS,
)

FUSED_TOL = 1e-4  # the acceptance bound; observed error is ~1e-7


def paper_1d_model(rng=None) -> Sequential:
    """The 1-D CNN stack CNNModalityClassifier builds (length 32)."""
    rng = rng or np.random.default_rng(5)
    return Sequential(
        [
            Conv1d(1, 16, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            MaxPool1d(2),
            Conv1d(16, 32, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            Flatten(),
            Dense(32 * 16, 64, rng=rng),
            ReLU(),
            Dense(64, 1, rng=rng),
            Sigmoid(),
        ],
        loss="bce",
    )


def paper_2d_model(rng=None) -> Sequential:
    """The 2-D CNN stack ImageCNNClassifier builds (16x16 images)."""
    rng = rng or np.random.default_rng(6)
    return Sequential(
        [
            Conv2d(1, 16, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(16, 32, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Dense(32 * 4 * 4, 64, rng=rng),
            ReLU(),
            Dense(64, 1, rng=rng),
            Sigmoid(),
        ],
        loss="bce",
    )


def misc_layers_model(rng=None) -> Sequential:
    """Every remaining supported layer type in one stack."""
    rng = rng or np.random.default_rng(7)
    return Sequential(
        [
            Conv1d(1, 8, kernel_size=3, padding=1, rng=rng),
            LeakyReLU(0.1),
            AvgPool1d(2),
            Conv1d(8, 8, kernel_size=3, padding=1, rng=rng),
            Tanh(),
            Dropout(0.5, rng=rng),  # inference no-op: plans must skip it
            GlobalAveragePool1d(),
            BatchNorm1d(8),  # 2-D input: after the pooled (N, C) collapse
            Dense(8, 4, rng=rng),
            Sigmoid(),
        ],
        loss="bce",
    )


def misc_2d_model(rng=None) -> Sequential:
    """AvgPool2d coverage (the 2-D pool the paper stacks do not use)."""
    rng = rng or np.random.default_rng(8)
    return Sequential(
        [
            Conv2d(1, 4, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            AvgPool2d(2),
            Flatten(),
            Dense(4 * 8 * 8, 2, rng=rng),
            Sigmoid(),
        ],
        loss="bce",
    )


class TestRegistry:
    def test_builtin_backends(self):
        assert available_backends() == ["fused_f32", "int8", "numpy"]
        assert DEFAULT_BACKEND == "numpy"

    def test_unknown_backend_raises_with_known_names(self):
        with pytest.raises(ValueError) as excinfo:
            get_backend("nope")
        message = str(excinfo.value)
        assert "nope" in message
        for name in available_backends():
            assert name in message

    def test_backend_dtypes(self):
        assert get_backend("numpy").dtype == "float64"
        assert get_backend("fused_f32").dtype == "float32"
        assert get_backend("int8").dtype == "int8"

    def test_register_backend_plugin(self):
        sentinel = get_backend("numpy")
        register_backend("test_plugin", lambda: sentinel)
        try:
            assert "test_plugin" in available_backends()
            assert get_backend("test_plugin") is sentinel
        finally:
            _BACKENDS.pop("test_plugin", None)

    def test_numpy_plan_is_bit_identical(self):
        model = paper_1d_model()
        x = np.random.default_rng(0).standard_normal((7, 1, 32))
        plan = get_backend("numpy").compile(model)
        assert np.array_equal(plan.predict_proba(x), model.predict_proba(x))

    def test_base_plan_forward_is_abstract(self):
        with pytest.raises(NotImplementedError):
            InferencePlan("x", "float64").forward(np.zeros((1, 1, 4)))


class TestFusedF32Equivalence:
    @pytest.mark.parametrize(
        "build, shape",
        [
            (paper_1d_model, (13, 1, 32)),
            (paper_2d_model, (13, 1, 16, 16)),
            (misc_layers_model, (9, 1, 32)),
            (misc_2d_model, (9, 1, 16, 16)),
        ],
        ids=["paper-1d", "paper-2d", "misc-1d", "misc-2d"],
    )
    def test_matches_float64_within_tolerance(self, build, shape):
        model = build()
        x = np.random.default_rng(3).standard_normal(shape)
        expected = model.predict_proba(x)
        plan = get_backend("fused_f32").compile(model)
        observed = plan.predict_proba(x)
        assert observed.shape == expected.shape
        assert np.max(np.abs(observed - expected)) < FUSED_TOL

    def test_scratch_reuse_is_deterministic(self):
        model = paper_1d_model()
        plan = get_backend("fused_f32").compile(model)
        x = np.random.default_rng(4).standard_normal((11, 1, 32))
        first = plan.predict_proba(x)
        for _ in range(3):
            assert np.array_equal(plan.predict_proba(x), first)

    def test_varying_batch_sizes_share_one_plan(self):
        model = paper_1d_model()
        plan = get_backend("fused_f32").compile(model)
        rng = np.random.default_rng(5)
        for n in (1, 3, 17, 3, 1):
            x = rng.standard_normal((n, 1, 32))
            assert (
                np.max(np.abs(plan.predict_proba(x) - model.predict_proba(x)))
                < FUSED_TOL
            )

    def test_plan_reports_backend_and_dtype(self):
        plan = get_backend("fused_f32").compile(paper_1d_model())
        assert plan.backend == "fused_f32"
        assert plan.dtype == "float32"


class TestThreadedGemm:
    def test_large_gemm_tiled_result_is_exact(self):
        rng = np.random.default_rng(9)
        a = np.ascontiguousarray(rng.standard_normal((64, 256)), dtype=np.float32)
        # Wide enough to cross both thresholds when multiple cores exist.
        n_cols = 2 * GEMM_MIN_TILE_COLS + 123
        b = np.ascontiguousarray(rng.standard_normal((256, n_cols)), dtype=np.float32)
        out = np.empty((64, n_cols), dtype=np.float32)
        fused_gemm(a, b, out)
        assert np.array_equal(out, a @ b)

    def test_small_gemm_single_shot(self):
        rng = np.random.default_rng(10)
        a = rng.standard_normal((4, 8)).astype(np.float32)
        b = rng.standard_normal((8, 6)).astype(np.float32)
        out = np.empty((4, 6), dtype=np.float32)
        fused_gemm(a, b, out)
        assert np.array_equal(out, a @ b)


class TestInt8Backend:
    def test_close_to_float64(self):
        model = paper_1d_model()
        x = np.random.default_rng(11).standard_normal((13, 1, 32))
        plan = get_backend("int8").compile(model)
        observed = plan.predict_proba(x)
        expected = model.predict_proba(x)
        # Dynamic int8 is lossy by design; sigmoid outputs stay within a
        # few percent at these scales (triage agreement is asserted on the
        # full pipeline in test_engine_scan.py).
        assert np.max(np.abs(observed - expected)) < 0.1

    def test_state_round_trip_is_byte_identical(self):
        model = paper_1d_model()
        backend = get_backend("int8")
        state = backend.compile(model).export_state()
        assert state  # conv + dense layers all export w_q/scale pairs
        for key, value in state.items():
            if key.endswith("/w_q"):
                assert value.dtype == np.int8
        x = np.random.default_rng(12).standard_normal((9, 1, 32))
        from_scratch = backend.compile(model).predict_proba(x)
        from_state = backend.compile(model, state=state).predict_proba(x)
        assert np.array_equal(from_state, from_scratch)
        restated = backend.compile(model, state=state).export_state()
        assert set(restated) == set(state)
        for key in state:
            assert np.array_equal(restated[key], state[key])

    def test_per_channel_scales_are_per_output_channel(self):
        model = paper_1d_model()
        state = get_backend("int8").compile(model).export_state()
        conv_scale = state["0/scale"]
        assert conv_scale.shape == (16,)  # one scale per output channel

    def test_profiler_records_quantize_gemm_activation(self):
        model = paper_1d_model()
        plan = get_backend("int8").compile(model)
        x = np.random.default_rng(13).standard_normal((5, 1, 32))
        PROFILER.reset()
        plan.predict_proba(x)
        stages = PROFILER.snapshot()
        for stage in ("quantize", "gemm", "activation"):
            assert stages.get(stage, 0.0) > 0.0


class TestClassifierBackendSeam:
    def test_set_backend_validates_eagerly(self):
        from repro.core.classifiers import CNNModalityClassifier

        clf = CNNModalityClassifier(16)
        with pytest.raises(ValueError):
            clf.set_backend("nope")
        assert clf.backend == DEFAULT_BACKEND

    def test_fused_probabilities_match_numpy(self, rng):
        from repro.core.classifiers import CNNModalityClassifier

        x = rng.standard_normal((30, 16))
        y = (rng.random(30) > 0.5).astype(int)
        y[:2] = [0, 1]  # both classes present
        clf = CNNModalityClassifier(16).fit(x, y)
        golden = clf.predict_proba(x)
        clf.set_backend("fused_f32")
        fused = clf.predict_proba(x)
        assert np.max(np.abs(fused - golden)) < FUSED_TOL
        clf.set_backend("numpy")
        assert np.array_equal(clf.predict_proba(x), golden)

    def test_fit_invalidates_compiled_plan(self, rng):
        from repro.core.classifiers import CNNModalityClassifier

        x = rng.standard_normal((30, 16))
        y = np.array([0, 1] * 15)
        clf = CNNModalityClassifier(16).fit(x, y)
        clf.set_backend("fused_f32")
        stale = clf.predict_proba(x)
        clf.fit(x, 1 - y)  # retrain flips the labels -> new weights
        fresh = clf.predict_proba(x)
        assert not np.allclose(stale, fresh)
        golden = clf._model.predict_proba(
            clf._reshape(clf._scaler.transform(x))
        ).reshape(-1)
        assert np.max(np.abs(fresh[:, 1] - np.clip(golden, 0, 1))) < FUSED_TOL
