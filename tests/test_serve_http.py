"""End-to-end scan-service tests over real loopback HTTP.

Covers the acceptance property of the serving layer: concurrent,
micro-batched scans return records byte-identical to a serial engine
scan of the same corpus, plus the operational surface (healthz/metrics/
reload), error mapping, and graceful shutdown.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import __version__
from repro.core.config import ClassifierConfig, NoodleConfig
from repro.core.results import ScanRecord
from repro.engine import ScanEngine, save_detector, train_detector
from repro.engine.bench import build_scan_batch
from repro.serve.client import ScanServiceClient, ScanServiceError
from repro.serve.server import ScanService


@pytest.fixture(scope="module")
def detector(small_features):
    config = NoodleConfig(classifier=ClassifierConfig(epochs=3, seed=0), seed=0)
    return train_detector(small_features, strategy="late", config=config).model


@pytest.fixture(scope="module")
def artifact(detector, tmp_path_factory):
    return save_detector(detector, tmp_path_factory.mktemp("serve") / "artifact")


@pytest.fixture(scope="module")
def corpus():
    return build_scan_batch(10, seed=91)


@pytest.fixture()
def service(artifact):
    with ScanService(artifact, port=0, batch_window_s=0.05, max_batch=16) as svc:
        yield svc


@pytest.fixture()
def client(service):
    with ScanServiceClient(service.host, service.port) as c:
        c.wait_until_ready()
        yield c


class TestOperationalEndpoints:
    def test_healthz_reports_version_and_model(self, client, artifact):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["version"] == __version__
        manifest = json.loads((artifact / "manifest.json").read_text())
        assert payload["model"]["fingerprint"] == manifest["fingerprint"]
        assert payload["batching"]["max_batch"] == 16

    def test_metrics_counts_requests_and_designs(self, client, corpus):
        client.scan_texts([(corpus[0].name, corpus[0].source)])
        snapshot = client.metrics()
        assert snapshot["scan_requests"] == 1
        assert snapshot["designs_total"] == 1
        assert snapshot["batches_total"] == 1
        assert snapshot["requests_by_route"]["/scan"] == 1
        assert snapshot["latency_seconds"]["p50"] is not None

    def test_reload_endpoint_answers(self, client):
        payload = client.reload()
        assert payload["reloaded"] is False  # artifact unchanged
        assert payload["version"] == __version__

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ScanServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404


class TestScanEndpoint:
    def test_inline_sources_return_records(self, client, corpus, artifact):
        response = client.scan_texts([(s.name, s.source) for s in corpus[:3]])
        assert response["n_designs"] == 3
        records = client.iter_scan_records(response)
        assert [r["name"] for r in records] == [s.name for s in corpus[:3]]
        assert all(r["decision"] is not None for r in records)
        manifest = json.loads((artifact / "manifest.json").read_text())
        # The response names the model that actually scanned the batch.
        assert response["fingerprint"] == manifest["fingerprint"]

    def test_server_side_paths_are_scanned(self, client, corpus, tmp_path):
        for source in corpus[:2]:
            (tmp_path / f"{source.name}.v").write_text(source.source)
        response = client.scan(paths=[str(tmp_path)])
        assert response["n_designs"] == 2
        assert all(r["source_path"] for r in response["records"])

    def test_unparseable_design_gets_error_record(self, client):
        response = client.scan_texts([("broken", "module broken (x; endmodule")])
        assert response["n_errors"] == 1
        assert response["records"][0]["error"] is not None

    def test_confidence_is_respected(self, client, corpus):
        strict = client.scan_texts([(corpus[0].name, corpus[0].source)], confidence=0.99)
        assert strict["confidence_level"] == 0.99

    def test_bad_payloads_are_400(self, client):
        for payload in (
            {},  # no sources
            {"sources": [{"bad": 1}]},
            {"sources": "nope"},
            {"confidence": 2.0, "sources": [{"source": "module m; endmodule"}]},
            {"paths": ["/does/not/exist"]},
            {"unknown_field": 1},
        ):
            with pytest.raises(ScanServiceError) as excinfo:
                client._request("POST", "/scan", payload=payload)
            assert excinfo.value.status == 400

    def test_paths_can_be_disabled(self, artifact, tmp_path):
        with ScanService(artifact, port=0, allow_paths=False) as svc:
            with ScanServiceClient(svc.host, svc.port) as c:
                c.wait_until_ready()
                with pytest.raises(ScanServiceError) as excinfo:
                    c.scan(paths=[str(tmp_path)])
                assert excinfo.value.status == 400
                assert "disabled" in str(excinfo.value)


class TestServedEqualsSerial:
    def test_concurrent_microbatched_records_byte_identical_to_serial(
        self, detector, artifact, corpus
    ):
        """The serving acceptance property, uncached on both sides."""
        serial = ScanEngine(detector).scan_sources(corpus, workers=1)
        expected = [record.to_dict() for record in serial.records]

        with ScanService(artifact, port=0, batch_window_s=0.05, max_batch=16) as svc:
            ScanServiceClient(svc.host, svc.port).wait_until_ready()

            def scan_one(source):
                with ScanServiceClient(svc.host, svc.port) as c:
                    return c.scan_texts([(source.name, source.source)])

            with ThreadPoolExecutor(len(corpus)) as pool:
                responses = list(pool.map(scan_one, corpus))
            snapshot = svc.metrics.snapshot()

        observed = [response["records"][0] for response in responses]
        assert json.dumps(observed, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )
        # And they genuinely shared forward passes.
        assert snapshot["batches_total"] < snapshot["scan_requests"]
        assert snapshot["max_batch_designs"] > 1

    def test_cache_hits_are_marked_and_identical(self, artifact, corpus, tmp_path):
        pairs = [(s.name, s.source) for s in corpus[:3]]
        with ScanService(
            artifact, port=0, batch_window_s=0.0, cache_dir=tmp_path / "cache"
        ) as svc:
            with ScanServiceClient(svc.host, svc.port) as c:
                c.wait_until_ready()
                cold = c.scan_texts(pairs)
                warm = c.scan_texts(pairs)
        assert cold["n_cache_hits"] == 0
        assert warm["n_cache_hits"] == 3
        strip = lambda rs: [{k: v for k, v in r.items() if k != "cached"} for r in rs]
        assert strip(warm["records"]) == strip(cold["records"])


class TestLifecycle:
    def test_shutdown_is_idempotent_and_flushes(self, artifact, corpus, tmp_path):
        svc = ScanService(
            artifact, port=0, cache_dir=tmp_path / "cache", flush_every=10_000
        ).start()
        with ScanServiceClient(svc.host, svc.port) as c:
            c.wait_until_ready()
            c.scan_texts([(corpus[0].name, corpus[0].source)])
        svc.shutdown()
        svc.shutdown()
        # flush_every was huge, so only the shutdown flush can have
        # persisted the record.
        entry = svc.registry.entries()[0]
        shards = tmp_path / "cache" / entry.fingerprint[:16] / "shards"
        assert shards.is_dir() and any(shards.glob("*.json"))

    def test_shutdown_is_not_pinned_by_idle_keepalive_connections(self, artifact):
        import time

        svc = ScanService(artifact, port=0).start()
        idle = ScanServiceClient(svc.host, svc.port)
        idle.wait_until_ready()  # leaves a keep-alive connection open, idle
        t_start = time.monotonic()
        svc.shutdown()
        elapsed = time.monotonic() - t_start
        idle.close()
        # Well under the handler read timeout (60s): the grace period is
        # 2s, after which remaining connections are force-closed.
        assert elapsed < 10.0, f"shutdown took {elapsed:.1f}s with an idle connection"

    def test_scans_after_shutdown_are_refused(self, artifact, corpus):
        svc = ScanService(artifact, port=0).start()
        client = ScanServiceClient(svc.host, svc.port)
        client.wait_until_ready()
        svc.shutdown()
        with pytest.raises((ScanServiceError, OSError)):
            client.scan_texts([(corpus[0].name, corpus[0].source)])
        client.close()


class TestFeatureTierOverHttp:
    def test_post_reload_rescan_pays_only_the_forward_pass(
        self, detector, corpus, tmp_path
    ):
        import copy

        from repro.engine import recalibrate_detector
        from repro.features import extract_modalities
        from repro.trojan import SuiteConfig, TrojanDataset

        # A private copy: recalibrating the module-scoped detector fixture
        # in place would skew the serial baselines of the other tests.
        detector = copy.deepcopy(detector)
        artifact = save_detector(detector, tmp_path / "artifact")
        with ScanService(
            artifact,
            port=0,
            batch_window_s=0.0,
            max_batch=16,
            cache_dir=tmp_path / "cache",
        ) as service:
            with ScanServiceClient(service.host, service.port) as client:
                client.wait_until_ready()
                first = client.scan_texts([(s.name, s.source) for s in corpus])
                assert first["n_cache_hits"] == 0
                # Recalibrate -> new fingerprint -> forced hot reload.
                fresh = extract_modalities(
                    TrojanDataset.generate(
                        SuiteConfig(n_trojan_free=10, n_trojan_infected=6, seed=93)
                    )
                )
                recalibrate_detector(detector, fresh)
                save_detector(detector, artifact)
                reload_payload = client.reload()
                assert reload_payload["reloaded"]
                second = client.scan_texts([(s.name, s.source) for s in corpus])
                # New fingerprint: the result tier is cold by construction,
                # but every design rides the warm feature tier.
                assert second["fingerprint"] != first["fingerprint"]
                assert second["n_cache_hits"] == 0
                metrics = client.metrics()
                assert metrics["feature_hits"] == len(corpus)


class TestServeBackends:
    """--backend selection surfaces in /metrics and preserves verdicts."""

    def test_metrics_reports_default_backend(self, client):
        snapshot = client.metrics()
        assert snapshot["backend"] == "numpy"
        assert snapshot["backend_dtype"] == "float64"

    def test_fused_service_metrics_and_verdict_parity(self, artifact, corpus):
        pairs = [(s.name, s.source) for s in corpus[:6]]
        with ScanService(
            artifact, port=0, batch_window_s=0.05, max_batch=16, backend="fused_f32"
        ) as svc:
            with ScanServiceClient(svc.host, svc.port) as fused_client:
                fused_client.wait_until_ready()
                snapshot = fused_client.metrics()
                assert snapshot["backend"] == "fused_f32"
                assert snapshot["backend_dtype"] == "float32"
                served = fused_client.scan_texts(pairs)["records"]
        golden = ScanEngine.from_artifact(artifact).scan_sources(
            build_scan_batch(10, seed=91)[:6]
        )
        for a, b in zip(golden.records, served):
            restored = ScanRecord.from_dict(b)
            assert a.name == restored.name
            assert a.verdict == restored.verdict
            assert a.decision.predicted_label == restored.decision.predicted_label

    def test_unknown_backend_fails_at_construction(self, artifact):
        with pytest.raises(ValueError, match="unknown compute backend"):
            ScanService(artifact, port=0, backend="nope")


#: The documented JSON /metrics schema (docs/SERVING.md).  The Prometheus
#: exposition rides the same endpoint via content negotiation; this frozen
#: set is the regression guard that negotiation never changed the default.
METRICS_JSON_KEYS = {
    "uptime_seconds",
    "requests_total",
    "requests_by_route",
    "http_errors",
    "scan_requests",
    "designs_total",
    "cache_hits",
    "cache_hit_rate",
    "feature_hits",
    "design_errors",
    "batches_total",
    "batched_designs_total",
    "mean_batch_designs",
    "max_batch_designs",
    "reloads",
    "scans_by_model",
    "designs_by_model",
    "shadow_scans",
    "shadow_designs",
    "promotions",
    "forced_promotions",
    "rejected_by_reason",
    "latency_seconds",
    "backend",
    "backend_dtype",
    "frontend",
    "champion",
    "rollout",
    "drift",
    "scheduler",
}


class TestMetricsExposition:
    """Content negotiation on /metrics: JSON by default, Prometheus on ask."""

    def test_default_json_schema_is_unchanged(self, client, corpus):
        """A bare GET /metrics still returns the documented JSON document."""
        client.scan_texts([(corpus[0].name, corpus[0].source)])
        snapshot = client.metrics()
        assert set(snapshot) == METRICS_JSON_KEYS
        assert set(snapshot["latency_seconds"]) == {"p50", "p95", "p99", "count"}
        assert set(snapshot["scheduler"]) == {
            "shard_retries",
            "worker_deaths",
            "shard_failures",
        }
        for snap in snapshot["drift"].values():
            assert snap["state"] in ("ok", "alarming")

    def test_format_param_selects_prometheus(self, client, corpus):
        """?format=prometheus returns a parseable text exposition."""
        from repro.obs.metrics import parse_prometheus_text

        client.scan_texts([(s.name, s.source) for s in corpus[:2]])
        text = client.metrics_prometheus()
        samples = parse_prometheus_text(text)
        names = {name for name, _ in samples}
        assert "repro_serve_requests_total" in names
        assert "repro_serve_designs_total" in names
        assert "repro_serve_scan_latency_seconds_count" in names
        assert "repro_serve_coverage_observed" in names
        count_keys = [
            key
            for key in samples
            if key[0] == "repro_serve_scan_latency_seconds_count"
        ]
        assert sum(samples[key] for key in count_keys) >= 1

    def test_accept_header_negotiates_prometheus(self, service):
        """Accept: text/plain (no query param) also selects the exposition."""
        import http.client

        conn = http.client.HTTPConnection(service.host, service.port, timeout=10)
        try:
            conn.request("GET", "/metrics", headers={"Accept": "text/plain"})
            response = conn.getresponse()
            body = response.read().decode("utf-8")
            assert response.status == 200
            assert response.getheader("Content-Type", "").startswith("text/plain")
            assert "# TYPE repro_serve_requests_total counter" in body
        finally:
            conn.close()

    def test_format_param_overrides_accept_header(self, service):
        """?format=json beats Accept: text/plain — the explicit ask wins."""
        import http.client

        conn = http.client.HTTPConnection(service.host, service.port, timeout=10)
        try:
            conn.request(
                "GET", "/metrics?format=json", headers={"Accept": "text/plain"}
            )
            response = conn.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
            assert response.status == 200
            assert response.getheader("Content-Type", "").startswith(
                "application/json"
            )
            assert set(payload) == METRICS_JSON_KEYS
        finally:
            conn.close()


class TestCoverageDriftE2E:
    """The ISSUE acceptance loop: stale calibration -> alarm -> reload -> ok."""

    @staticmethod
    def _stale_state(icp, n_per_class: int = 50):
        """A calibration state whose scores make every region empty.

        All calibration scores are pushed to -1e9: any real test score
        exceeds every calibration score, so each label's p-value collapses
        to 1/(n+1) < 0.1 and the region at confidence 0.9 is empty — the
        observable signature of a stale/tampered calibration set.
        """
        import numpy as np

        state = icp.calibration_state()
        scores = np.full(2 * n_per_class, -1e9)
        state["calibration_scores"] = scores
        state["calibration_labels"] = np.array(
            [0] * n_per_class + [1] * n_per_class
        )
        state["sorted_marginal"] = scores.copy()
        for label in (0, 1):
            state[f"sorted_label_{label}"] = np.full(n_per_class, -1e9)
        return state

    def test_stale_calibration_trips_alarm_and_reload_clears_it(
        self, detector, corpus, tmp_path
    ):
        import copy

        from repro.conformal.icp import InductiveConformalClassifier
        from repro.obs.metrics import parse_prometheus_text

        detector = copy.deepcopy(detector)
        artifact = save_detector(detector, tmp_path / "artifact")
        pairs = [(s.name, s.source) for s in corpus[:4]]
        good_states = {
            modality: icp.calibration_state()
            for modality, icp in detector._icps.items()
        }
        with ScanService(
            artifact,
            port=0,
            batch_window_s=0.0,
            max_batch=16,
            drift_window=16,
            drift_min_observations=4,
        ) as service:
            with ScanServiceClient(service.host, service.port) as client:
                client.wait_until_ready()
                # Healthy traffic: status ok, no alarms.
                client.scan_texts(pairs)
                health = client.healthz()
                assert health["status"] == "ok"
                assert health["drift_alarms"] == []
                (model_name,) = health["drift"].keys()

                # Stale calibration -> new fingerprint -> hot reload.
                for modality in detector._icps:
                    detector._icps[modality] = (
                        InductiveConformalClassifier.from_calibration_state(
                            self._stale_state(detector._icps[modality])
                        )
                    )
                save_detector(detector, artifact)
                assert client.reload()["reloaded"]

                # Every region is now empty; the window trips the alarm.
                response = client.scan_texts(pairs)
                assert all(
                    r["decision"]["region_labels"] == []
                    for r in response["records"]
                )
                health = client.healthz()
                assert health["status"] == "degraded"
                assert health["drift_alarms"] == [model_name]
                snap = health["drift"][model_name]
                assert snap["state"] == "alarming"
                assert snap["observed_coverage"] == 0.0
                # Both expositions carry the alarm.
                assert client.metrics()["drift"][model_name]["state"] == "alarming"
                samples = parse_prometheus_text(client.metrics_prometheus())
                key = ("repro_serve_coverage_alarm", (("model", model_name),))
                assert samples[key] == 1

                # Remediation: recalibrate (restore the good calibration)
                # and POST /reload — the window resets and the alarm clears.
                for modality, state in good_states.items():
                    detector._icps[modality] = (
                        InductiveConformalClassifier.from_calibration_state(state)
                    )
                save_detector(detector, artifact)
                assert client.reload()["reloaded"]
                assert client.healthz()["status"] == "ok"
                client.scan_texts(pairs)
                health = client.healthz()
                assert health["status"] == "ok"
                assert health["drift_alarms"] == []
                assert health["drift"][model_name]["state"] == "ok"
                samples = parse_prometheus_text(client.metrics_prometheus())
                key = ("repro_serve_coverage_alarm", (("model", model_name),))
                assert samples[key] == 0
