"""Scan pipeline tests: batched == sequential, cache hits and invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ClassifierConfig, NoodleConfig
from repro.core.results import ScanRecord
from repro.engine import ScanCache, ScanEngine, save_detector, train_detector
from repro.engine.scan import (
    ScanReport,
    ScanSource,
    collect_sources,
    hash_source,
    sources_from_pairs,
)
from repro.trojan import SuiteConfig, TrojanDataset


@pytest.fixture(scope="module")
def detector(small_features):
    config = NoodleConfig(classifier=ClassifierConfig(epochs=3, seed=0), seed=0)
    return train_detector(small_features, strategy="late", config=config).model


@pytest.fixture(scope="module")
def scan_batch():
    suite = TrojanDataset.generate(
        SuiteConfig(n_trojan_free=6, n_trojan_infected=3, seed=31)
    )
    return sources_from_pairs((b.name, b.source) for b in suite.benchmarks)


class TestBatchedEqualsSequential:
    def test_identical_p_values_and_verdicts(self, detector, scan_batch):
        engine = ScanEngine(detector)
        batched = engine.scan_sources(scan_batch).records
        sequential = [engine.scan_sources([s]).records[0] for s in scan_batch]
        assert len(batched) == len(sequential) == len(scan_batch)
        for one, many in zip(sequential, batched):
            assert one.decision.p_value_trojan_free == many.decision.p_value_trojan_free
            assert one.decision.p_value_trojan_infected == many.decision.p_value_trojan_infected
            assert one.decision.predicted_label == many.decision.predicted_label
            assert one.verdict == many.verdict

    def test_matches_direct_model_p_values(self, detector, scan_batch, small_features):
        from repro.engine.scan import assemble_features, extract_feature_rows

        rows, errors = extract_feature_rows(scan_batch, workers=1)
        assert not errors
        features = assemble_features(
            [rows[i] for i in range(len(scan_batch))], [s.name for s in scan_batch]
        )
        expected = detector.p_values(features)
        records = ScanEngine(detector).scan_sources(scan_batch).records
        observed = np.array(
            [
                [r.decision.p_value_trojan_free, r.decision.p_value_trojan_infected]
                for r in records
            ]
        )
        assert np.array_equal(observed, expected)


class TestScanCache:
    def test_second_scan_hits(self, detector, scan_batch, tmp_path):
        cache = ScanCache(tmp_path, "fp-test")
        engine = ScanEngine(detector, fingerprint="fp-test", cache=cache)
        first = engine.scan_sources(scan_batch)
        assert first.n_cache_hits == 0
        second = engine.scan_sources(scan_batch)
        assert second.n_cache_hits == len(scan_batch)
        for a, b in zip(first.records, second.records):
            assert b.cached and not a.cached
            assert a.decision.p_value_trojan_infected == b.decision.p_value_trojan_infected

    def test_cache_survives_reload(self, detector, scan_batch, tmp_path):
        ScanEngine(
            detector, fingerprint="fp-persist", cache=ScanCache(tmp_path, "fp-persist")
        ).scan_sources(scan_batch)
        fresh = ScanEngine(
            detector, fingerprint="fp-persist", cache=ScanCache(tmp_path, "fp-persist")
        )
        assert fresh.scan_sources(scan_batch).n_cache_hits == len(scan_batch)

    def test_content_change_invalidates(self, detector, scan_batch, tmp_path):
        cache = ScanCache(tmp_path, "fp-inv")
        engine = ScanEngine(detector, fingerprint="fp-inv", cache=cache)
        engine.scan_sources(scan_batch)
        edited = list(scan_batch)
        edited[0] = ScanSource(
            name=edited[0].name, source=edited[0].source + "\n// benign edit\n"
        )
        report = engine.scan_sources(edited)
        assert report.n_cache_hits == len(scan_batch) - 1
        assert not report.records[0].cached

    def test_fingerprint_isolation(self, detector, scan_batch, tmp_path):
        ScanEngine(
            detector, fingerprint="fp-a", cache=ScanCache(tmp_path, "fp-a")
        ).scan_sources(scan_batch)
        other = ScanEngine(
            detector, fingerprint="fp-b", cache=ScanCache(tmp_path, "fp-b")
        )
        assert other.scan_sources(scan_batch).n_cache_hits == 0

    def test_error_records_not_cached(self, detector, tmp_path):
        cache = ScanCache(tmp_path, "fp-err")
        engine = ScanEngine(detector, fingerprint="fp-err", cache=cache)
        bad = [ScanSource(name="broken", source="module broken (x; endmodule")]
        report = engine.scan_sources(bad)
        assert report.n_errors == 1
        assert report.records[0].error is not None
        assert report.records[0].verdict == "error"
        assert len(cache) == 0


class TestSourceCollection:
    def test_directory_collection(self, detector, scan_batch, tmp_path):
        for source in scan_batch[:4]:
            (tmp_path / f"{source.name}.v").write_text(source.source)
        collected = collect_sources([tmp_path])
        assert sorted(s.name for s in collected) == sorted(
            s.name for s in scan_batch[:4]
        )
        assert all(s.path is not None for s in collected)

    def test_missing_input_raises(self):
        with pytest.raises(FileNotFoundError):
            collect_sources(["/definitely/not/here.v"])

    def test_hash_is_content_addressed(self):
        assert hash_source("module m; endmodule") == hash_source("module m; endmodule")
        assert hash_source("a") != hash_source("b")

    def test_directory_walk_is_sorted(self, tmp_path):
        # Creation order deliberately scrambled: the walk must come back
        # path-sorted regardless of what order the filesystem yields.
        for name in ("zeta", "alpha", "mid"):
            (tmp_path / f"{name}.v").write_text(f"module {name}; endmodule")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "beta.v").write_text("module beta; endmodule")
        collected = collect_sources([tmp_path])
        paths = [s.path for s in collected]
        assert paths == sorted(paths)

    def test_duplicate_inputs_are_deduplicated(self, tmp_path):
        target = tmp_path / "one.v"
        target.write_text("module one; endmodule")
        # The same file listed twice, and again via its directory.
        collected = collect_sources([target, target, tmp_path])
        assert [s.name for s in collected] == ["one"]

    def test_symlinked_duplicates_resolve_to_one_source(self, tmp_path):
        target = tmp_path / "real.v"
        target.write_text("module real_mod; endmodule")
        link = tmp_path / "alias.v"
        try:
            link.symlink_to(target)
        except (OSError, NotImplementedError):
            pytest.skip("platform does not support symlinks")
        collected = collect_sources([tmp_path])
        assert len(collected) == 1
        # First occurrence in sorted order wins, under its given path.
        assert collected[0].path == str(link)

    def test_file_plus_containing_directory_keeps_first_occurrence(self, tmp_path):
        target = tmp_path / "dup.v"
        target.write_text("module dup; endmodule")
        collected = collect_sources([target, tmp_path])
        assert [s.path for s in collected] == [str(target)]


class TestReportsAndRecords:
    def test_report_json_round_trip(self, detector, scan_batch):
        report = ScanEngine(detector).scan_sources(scan_batch)
        restored = ScanReport.from_dict(report.to_dict())
        assert restored.n_designs == report.n_designs
        assert [r.to_dict() for r in restored.records] == [
            r.to_dict() for r in report.records
        ]

    def test_triage_partitions_every_record(self, detector, scan_batch):
        report = ScanEngine(detector).scan_sources(scan_batch)
        queues = report.triage()
        assert sum(len(q) for q in queues.values()) == len(report.records)
        assert report.n_scanned == len(scan_batch)

    def test_scan_record_round_trip(self, detector, scan_batch):
        record = ScanEngine(detector).scan_sources(scan_batch[:1]).records[0]
        restored = ScanRecord.from_dict(record.to_dict())
        assert restored == record

    def test_worker_pool_matches_serial(self, detector, scan_batch):
        serial = ScanEngine(detector).scan_sources(scan_batch, workers=1)
        pooled = ScanEngine(detector).scan_sources(scan_batch, workers=2)
        for a, b in zip(serial.records, pooled.records):
            assert a.decision.p_value_trojan_infected == b.decision.p_value_trojan_infected


class TestCacheHitRenaming:
    def test_renamed_design_updates_decision_name(self, detector, scan_batch, tmp_path):
        cache = ScanCache(tmp_path, "fp-rename")
        engine = ScanEngine(detector, fingerprint="fp-rename", cache=cache)
        engine.scan_sources(scan_batch[:1])
        renamed = [
            ScanSource(name="renamed_design", source=scan_batch[0].source)
        ]
        record = engine.scan_sources(renamed).records[0]
        assert record.cached
        assert record.name == "renamed_design"
        assert record.decision.name == "renamed_design"

    def test_cache_hit_respects_requested_confidence(
        self, detector, scan_batch, tmp_path
    ):
        cache = ScanCache(tmp_path, "fp-conf")
        engine = ScanEngine(detector, fingerprint="fp-conf", cache=cache)
        engine.scan_sources(scan_batch, confidence=0.5)
        cached = engine.scan_sources(scan_batch, confidence=0.99)
        assert cached.n_cache_hits == len(scan_batch)
        fresh = ScanEngine(detector).scan_sources(scan_batch, confidence=0.99)
        for hit, ref in zip(cached.records, fresh.records):
            assert hit.decision.region_labels == ref.decision.region_labels
            assert hit.decision.p_value_trojan_infected == ref.decision.p_value_trojan_infected
            assert hit.verdict == ref.verdict


class TestComputeBackends:
    """Backend-selected scans agree with the golden numpy pipeline."""

    def test_fused_f32_verdicts_and_p_values_match(self, detector, scan_batch):
        golden = ScanEngine(detector).scan_sources(scan_batch)
        try:
            fused = ScanEngine(detector, backend="fused_f32").scan_sources(scan_batch)
        finally:
            detector.set_backend("numpy")
        assert fused.backend == "fused_f32"
        for a, b in zip(golden.records, fused.records):
            assert a.verdict == b.verdict
            assert a.decision.predicted_label == b.decision.predicted_label
            assert abs(
                a.decision.p_value_trojan_infected - b.decision.p_value_trojan_infected
            ) < 0.05

    def test_int8_verdicts_identical_p_values_close(self, detector, scan_batch):
        golden = ScanEngine(detector).scan_sources(scan_batch)
        try:
            quantized = ScanEngine(detector, backend="int8").scan_sources(scan_batch)
        finally:
            detector.set_backend("numpy")
        assert quantized.backend == "int8"
        # Quantization perturbs probabilities, so p-values may shift by a
        # few calibration ranks — but every triage verdict must be
        # identical to the float64 pipeline's.
        for a, b in zip(golden.records, quantized.records):
            assert a.verdict == b.verdict
            assert a.decision.predicted_label == b.decision.predicted_label
            assert abs(
                a.decision.p_value_trojan_free - b.decision.p_value_trojan_free
            ) < 0.3
            assert abs(
                a.decision.p_value_trojan_infected - b.decision.p_value_trojan_infected
            ) < 0.3

    def test_non_default_backend_records_infer_substages(self, detector, scan_batch):
        try:
            report = ScanEngine(detector, backend="fused_f32").scan_sources(scan_batch)
        finally:
            detector.set_backend("numpy")
        assert "infer/gemm" in report.stage_seconds
        assert "infer/activation" in report.stage_seconds
        substage_total = sum(
            v for k, v in report.stage_seconds.items() if k.startswith("infer/")
        )
        assert substage_total <= report.stage_seconds["infer"] + 1e-6

    def test_numpy_backend_has_no_infer_substages(self, detector, scan_batch):
        report = ScanEngine(detector).scan_sources(scan_batch)
        assert not any(k.startswith("infer/") for k in report.stage_seconds)

    def test_report_round_trips_backend_through_profile(self, detector, scan_batch):
        try:
            report = ScanEngine(detector, backend="int8").scan_sources(scan_batch)
        finally:
            detector.set_backend("numpy")
        payload = report.to_dict()
        assert payload["profile"]["backend"] == "int8"
        restored = ScanReport.from_dict(payload)
        assert restored.backend == "int8"
        assert restored.stage_seconds.keys() == report.stage_seconds.keys()

    def test_unknown_backend_rejected_before_any_work(self, detector):
        with pytest.raises(ValueError, match="unknown compute backend"):
            ScanEngine(detector, backend="nope")
        assert detector  # construction failed fast; model untouched
