"""Tests for the Verilog emitter (round-trip stability) and AST visitors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import (
    NodeVisitor,
    ast,
    collect,
    count_nodes,
    emit_module,
    emit_source,
    identifiers_in,
    max_depth,
    node_kind_histogram,
    parse_module,
    parse_source,
    walk,
)
from repro.trojan import HOST_FAMILIES, generate_host


class TestEmitterRoundTrip:
    def test_fixture_round_trip_is_stable(self, sample_verilog) -> None:
        first = emit_module(parse_module(sample_verilog))
        second = emit_module(parse_module(first))
        assert first == second

    def test_round_trip_preserves_structure(self, sample_verilog) -> None:
        original = parse_module(sample_verilog)
        reparsed = parse_module(emit_module(original))
        assert node_kind_histogram(original) == node_kind_histogram(reparsed)

    @pytest.mark.parametrize("family", sorted(HOST_FAMILIES))
    def test_generated_hosts_round_trip(self, family: str) -> None:
        rng = np.random.default_rng(99)
        source = generate_host(family, rng, name=f"{family}_rt")
        first = emit_module(parse_module(source))
        second = emit_module(parse_module(first))
        assert first == second

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_property_over_random_hosts(self, seed: int) -> None:
        """Any generated host re-parses to a structurally identical AST."""
        rng = np.random.default_rng(seed)
        family = sorted(HOST_FAMILIES)[seed % len(HOST_FAMILIES)]
        source = generate_host(family, rng, name="prop_host")
        module = parse_module(source)
        reparsed = parse_module(emit_module(module))
        assert node_kind_histogram(module) == node_kind_histogram(reparsed)
        assert reparsed.name == module.name
        assert reparsed.ports == module.ports

    def test_emit_source_multiple_modules(self) -> None:
        source = "module a (input x); endmodule\nmodule b (output y); assign y = 1'b0; endmodule\n"
        emitted = emit_source(parse_source(source))
        reparsed = parse_source(emitted)
        assert [m.name for m in reparsed.modules] == ["a", "b"]

    def test_emitted_expressions_preserve_meaning(self) -> None:
        # Parenthesisation must keep the original grouping.
        module = parse_module(
            "module e (input [3:0] a, input [3:0] b, output [3:0] y);\n"
            "  assign y = (a + b) * a;\nendmodule\n"
        )
        reparsed = parse_module(emit_module(module))
        expr = reparsed.continuous_assigns()[0].value
        assert isinstance(expr, ast.BinaryOp) and expr.op == "*"
        assert isinstance(expr.left, ast.BinaryOp) and expr.left.op == "+"

    def test_emit_unknown_node_raises(self) -> None:
        class Strange(ast.Node):
            pass

        module = ast.Module(name="m", ports=[], items=[Strange()])
        with pytest.raises(TypeError):
            emit_module(module)


class TestVisitors:
    def test_walk_visits_every_node(self, sample_verilog) -> None:
        module = parse_module(sample_verilog)
        visited = list(walk(module))
        assert visited[0] is module
        assert len(visited) == count_nodes(module)

    def test_collect_by_type(self, sample_verilog) -> None:
        module = parse_module(sample_verilog)
        assert all(isinstance(n, ast.If) for n in collect(module, ast.If))
        assert len(collect(module, ast.Case)) == 1

    def test_identifiers_in(self) -> None:
        module = parse_module(
            "module i (input a, input b, output y);\n  assign y = a & b & a;\nendmodule\n"
        )
        names = identifiers_in(module.continuous_assigns()[0].value)
        assert names.count("a") == 2 and names.count("b") == 1

    def test_max_depth_monotonic(self) -> None:
        shallow = parse_module("module s (output y); assign y = 1'b0; endmodule")
        deep = parse_module(
            "module d (input a, output y); assign y = ((a ? 1'b0 : 1'b1) & a) | a; endmodule"
        )
        assert max_depth(deep) > max_depth(shallow)

    def test_node_kind_histogram_counts(self, sample_verilog) -> None:
        histogram = node_kind_histogram(parse_module(sample_verilog))
        assert histogram["Module"] == 1
        assert histogram["Always"] == 2
        assert histogram["Case"] == 1

    def test_node_visitor_dispatch(self, sample_verilog) -> None:
        class AssignCounter(NodeVisitor):
            def __init__(self) -> None:
                self.count = 0

            def visit_NonBlockingAssign(self, node) -> None:
                self.count += 1
                self.generic_visit(node)

        counter = AssignCounter()
        counter.visit(parse_module(sample_verilog))
        assert counter.count == len(collect(parse_module(sample_verilog), ast.NonBlockingAssign))

    def test_module_accessors(self, sample_verilog) -> None:
        module = parse_module(sample_verilog)
        assert len(module.port_declarations()) == 7
        assert len(module.always_blocks()) == 2
        assert len(module.parameters()) == 2
        assert module.instantiations() == []
