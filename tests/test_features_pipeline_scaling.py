"""Tests for the multimodal feature pipeline and the scalers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays
from hypothesis import strategies as st

from repro.features import (
    GRAPH_FEATURE_NAMES,
    MODALITIES,
    MODALITY_GRAPH,
    MODALITY_TABULAR,
    TABULAR_FEATURE_NAMES,
    MinMaxScaler,
    MultimodalFeatures,
    StandardScaler,
    extract_design_modalities,
    extract_modalities,
)


class TestExtractionPipeline:
    def test_shapes(self, small_features, small_dataset) -> None:
        n = len(small_dataset)
        assert small_features.tabular.shape == (n, len(TABULAR_FEATURE_NAMES))
        assert small_features.graph.shape == (n, len(GRAPH_FEATURE_NAMES))
        assert small_features.graph_images.shape[0] == n
        assert len(small_features.labels) == n
        assert small_features.names == small_dataset.names

    def test_single_design_extraction(self, sample_verilog) -> None:
        tabular, graph, image = extract_design_modalities(sample_verilog)
        assert tabular.shape == (len(TABULAR_FEATURE_NAMES),)
        assert graph.shape == (len(GRAPH_FEATURE_NAMES),)
        assert image.ndim == 3

    def test_modality_accessor(self, small_features) -> None:
        assert small_features.modality(MODALITY_TABULAR) is small_features.tabular
        assert small_features.modality(MODALITY_GRAPH) is small_features.graph
        with pytest.raises(ValueError):
            small_features.modality("audio")

    def test_modalities_constant(self) -> None:
        assert set(MODALITIES) == {MODALITY_GRAPH, MODALITY_TABULAR}

    def test_subset(self, small_features) -> None:
        subset = small_features.subset([0, 3, 5])
        assert len(subset) == 3
        np.testing.assert_array_equal(subset.tabular[1], small_features.tabular[3])
        assert subset.names[2] == small_features.names[5]

    def test_mismatched_shapes_rejected(self, small_features) -> None:
        with pytest.raises(ValueError):
            MultimodalFeatures(
                tabular=small_features.tabular[:3],
                graph=small_features.graph,
                graph_images=small_features.graph_images,
                labels=small_features.labels,
            )

    def test_stratified_split(self, small_features) -> None:
        train, test = small_features.stratified_split(0.3, np.random.default_rng(0))
        assert len(train) + len(test) == len(small_features)
        assert set(np.unique(test.labels)) == {0, 1}

    def test_empty_dataset_extraction(self) -> None:
        from repro.trojan import TrojanDataset

        features = extract_modalities(TrojanDataset(benchmarks=[]))
        assert len(features) == 0
        assert features.tabular.shape == (0, len(TABULAR_FEATURE_NAMES))


class TestMissingModalities:
    def test_with_missing_modality_marks_nan(self, small_features) -> None:
        damaged = small_features.with_missing_modality(
            MODALITY_TABULAR, 0.5, rng=np.random.default_rng(0)
        )
        mask = damaged.missing_mask(MODALITY_TABULAR)
        assert 0 < mask.sum() <= len(small_features)
        assert not damaged.missing_mask(MODALITY_GRAPH).any()
        # Original is untouched.
        assert not small_features.missing_mask(MODALITY_TABULAR).any()

    def test_missing_fraction_zero_and_one(self, small_features) -> None:
        untouched = small_features.with_missing_modality(MODALITY_GRAPH, 0.0)
        assert not untouched.missing_mask(MODALITY_GRAPH).any()
        all_missing = small_features.with_missing_modality(MODALITY_GRAPH, 1.0)
        assert all_missing.missing_mask(MODALITY_GRAPH).all()

    def test_invalid_fraction(self, small_features) -> None:
        with pytest.raises(ValueError):
            small_features.with_missing_modality(MODALITY_GRAPH, 1.5)

    def test_unknown_modality(self, small_features) -> None:
        with pytest.raises(ValueError):
            small_features.with_missing_modality("audio", 0.5)


class TestScalers:
    def test_standard_scaler_moments(self) -> None:
        rng = np.random.default_rng(0)
        x = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_inverse(self) -> None:
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 3)) * 10 + 2
        scaler = StandardScaler().fit(x)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_standard_scaler_constant_column(self) -> None:
        x = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        scaled = StandardScaler().fit_transform(x)
        assert np.all(np.isfinite(scaled))
        np.testing.assert_allclose(scaled[:, 0], 0.0)

    def test_minmax_scaler_range(self) -> None:
        rng = np.random.default_rng(2)
        x = rng.normal(size=(100, 5)) * 7 - 3
        scaled = MinMaxScaler().fit_transform(x)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0

    def test_minmax_inverse(self) -> None:
        rng = np.random.default_rng(3)
        x = rng.uniform(-5, 5, size=(30, 2))
        scaler = MinMaxScaler().fit(x)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_transform_before_fit_raises(self) -> None:
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones((2, 2)))

    def test_scalers_require_2d(self) -> None:
        with pytest.raises(ValueError):
            StandardScaler().fit(np.ones(5))
        with pytest.raises(ValueError):
            MinMaxScaler().fit(np.ones(5))

    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(2, 20), st.integers(1, 6)),
            elements=st.floats(-1e4, 1e4, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_standard_scaler_round_trip_property(self, x) -> None:
        scaler = StandardScaler().fit(x)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(x)), x, atol=1e-6, rtol=1e-6
        )
