"""Tests for the dtype policy (repro.nn.dtype) and the perf harness utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Conv2d, Dense, ReLU, Sequential, Sigmoid
from repro.nn.dtype import as_float, as_param, default_dtype, get_default_dtype, set_default_dtype
from repro.perf import BenchmarkSuite, TimingResult, load_benchmark_json, speedup, time_callable


class TestDtypePolicy:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64

    def test_as_float_is_copy_free_for_conforming_input(self):
        x64 = np.ones((4, 4))
        assert as_float(x64) is x64
        with default_dtype(np.float32):
            x32 = np.ones((4, 4), dtype=np.float32)
            assert as_float(x32) is x32

    def test_as_float_converts_non_conforming_input(self):
        converted = as_float(np.arange(6, dtype=np.int64))
        assert converted.dtype == np.float64
        assert as_float([1.0, 2.0]).dtype == np.float64
        # Off-policy floats upcast, exactly like the seed's forced asarray.
        assert as_float(np.ones(3, dtype=np.float32)).dtype == np.float64

    def test_policy_rejects_non_float_dtypes(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)
        with pytest.raises(ValueError):
            set_default_dtype(np.float16)

    def test_context_manager_restores_previous_policy(self):
        with default_dtype(np.float32):
            assert get_default_dtype() == np.float32
            assert as_param(np.ones(3)).dtype == np.float32
        assert get_default_dtype() == np.float64

    def test_float32_policy_threads_through_layers(self):
        with default_dtype(np.float32):
            rng = np.random.default_rng(0)
            layer = Dense(4, 3, rng=rng)
            assert layer.weight.dtype == np.float32
            out = layer.forward(np.ones((2, 4), dtype=np.float32))
            assert out.dtype == np.float32
            conv = Conv2d(1, 2, kernel_size=3, padding=1, rng=rng)
            assert conv.weight.dtype == np.float32
            out = conv.forward(np.ones((2, 1, 5, 5), dtype=np.float32))
            assert out.dtype == np.float32
            grad = conv.backward(np.ones_like(out))
            assert grad.dtype == np.float32

    def test_float32_model_end_to_end(self):
        with default_dtype(np.float32):
            rng = np.random.default_rng(1)
            model = Sequential(
                [Dense(6, 4, rng=rng), ReLU(), Dense(4, 1, rng=rng), Sigmoid()],
                loss="bce",
                optimizer="sgd",
                learning_rate=0.1,
            )
            x = rng.standard_normal((16, 6)).astype(np.float32)
            y = (rng.random(16) < 0.5).astype(np.float32)
            model.fit(x, y, epochs=2, batch_size=8, rng=np.random.default_rng(2))
            proba = model.predict_proba(x)
            assert proba.dtype == np.float32
            assert np.isfinite(proba).all()


class TestPerfHarness:
    def test_time_callable_returns_sane_stats(self):
        result = time_callable(lambda: sum(range(100)), name="sum", repeats=3)
        assert result.name == "sum"
        assert result.repeats == 3
        assert 0 <= result.best_s <= result.mean_s

    def test_time_callable_validates_arguments(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            time_callable(lambda: None, warmup=-1)

    def test_speedup_is_best_vs_best(self):
        slow = TimingResult("slow", best_s=1.0, mean_s=1.1, std_s=0.0, repeats=1)
        fast = TimingResult("fast", best_s=0.25, mean_s=0.3, std_s=0.0, repeats=1)
        assert speedup(slow, fast) == pytest.approx(4.0)

    def test_suite_json_round_trip(self, tmp_path):
        suite = BenchmarkSuite("unit")
        baseline = suite.time(lambda: None, "baseline", repeats=2)
        optimized = suite.time(lambda: None, "optimized", repeats=2)
        suite.record_speedup("kernel", baseline, optimized)
        path = suite.write_json(tmp_path / "BENCH_unit.json")
        data = load_benchmark_json(path)
        assert data["suite"] == "unit"
        assert set(data["results"]) == {"baseline", "optimized"}
        assert "kernel" in data["speedups"]
        assert data["environment"]["numpy"] == np.__version__
        assert data["results"]["baseline"]["best_s"] >= 0.0
