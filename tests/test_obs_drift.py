"""Unit tests for conformal coverage-drift monitoring (``repro.obs.drift``).

The e2e loop — a served model with deliberately stale calibration tripping
the alarm, then clearing after recalibrate + ``POST /reload`` — lives in
``tests/test_serve_http.py``; here we pin down the window math and the
hysteresis state machine in isolation.
"""

from __future__ import annotations

import pytest

from repro.conformal.metrics import coverage_outcomes
from repro.conformal.regions import PredictionRegion
from repro.obs.drift import (
    STATE_ALARMING,
    STATE_OK,
    VERDICT_ANOMALOUS,
    CoverageDriftMonitor,
    outcome_from_verdict,
)


def monitor(**overrides):
    """A small, fast-tripping monitor for the tests."""
    kwargs = dict(
        nominal=0.9, window=20, min_observations=10, trip_margin=0.15, clear_margin=0.05
    )
    kwargs.update(overrides)
    return CoverageDriftMonitor(**kwargs)


# -- outcome mapping ---------------------------------------------------------


def test_outcome_from_verdict():
    """Anomalous = guaranteed miss; error = no information; rest covered."""
    assert outcome_from_verdict(VERDICT_ANOMALOUS) is False
    assert outcome_from_verdict("error") is None
    assert outcome_from_verdict("trojan-infected") is True
    assert outcome_from_verdict("trojan-free") is True
    assert outcome_from_verdict("uncertain (both labels fit)") is True


def test_coverage_outcomes_without_labels_is_nonempty_bound():
    """Serve-time form: non-empty regions count as (potentially) covered."""
    regions = [
        PredictionRegion(labels=(0,), confidence=0.9),
        PredictionRegion(labels=(), confidence=0.9),
        PredictionRegion(labels=(0, 1), confidence=0.9),
    ]
    assert list(coverage_outcomes(regions)) == [True, False, True]


def test_coverage_outcomes_with_labels_is_exact():
    """Offline form: the indicator of the true label being in the region."""
    regions = [
        PredictionRegion(labels=(0,), confidence=0.9),
        PredictionRegion(labels=(0,), confidence=0.9),
    ]
    assert list(coverage_outcomes(regions, labels=[0, 1])) == [True, False]
    with pytest.raises(ValueError):
        coverage_outcomes(regions, labels=[0])


# -- window math -------------------------------------------------------------


def test_observed_coverage_is_window_mean():
    """Coverage is the mean of the retained (bounded) window."""
    mon = monitor(window=4, min_observations=1)
    mon.observe([True, True, False, True])
    assert mon.observed_coverage() == pytest.approx(0.75)
    # Two more observations evict the two oldest (window=4).
    mon.observe([False, False])
    assert mon.observed_coverage() == pytest.approx(0.25)


def test_error_outcomes_are_skipped():
    """None entries (error records) never enter the window."""
    mon = monitor(min_observations=1)
    mon.observe([True, None, False, None])
    snap = mon.snapshot()
    assert snap["window"] == 2
    assert snap["observations_total"] == 2
    assert mon.observed_coverage() == pytest.approx(0.5)


def test_mixed_confidence_levels_weight_the_nominal():
    """The trip threshold tracks the mean nominal of the window."""
    mon = monitor(min_observations=1)
    mon.observe([True] * 5, nominal=0.8)
    mon.observe([True] * 5, nominal=0.6)
    assert mon.snapshot()["nominal_coverage"] == pytest.approx(0.7)


# -- hysteresis --------------------------------------------------------------


def test_alarm_needs_min_observations():
    """Total misses below min_observations still report ok."""
    mon = monitor(min_observations=10)
    assert mon.observe([False] * 9) is None
    assert mon.state == STATE_OK
    assert mon.observe([False]) == STATE_ALARMING  # the 10th observation trips


def test_trip_and_clear_thresholds():
    """Trips below nominal - trip_margin; clears at nominal - clear_margin."""
    mon = monitor(window=100, min_observations=10)
    # 80% observed at nominal 0.9: above 0.75 trip line -> stays ok.
    mon.observe([True] * 8 + [False] * 2)
    assert mon.state == STATE_OK
    # Push observed below 0.75 -> alarm.
    transition = mon.observe([False] * 10)
    assert transition == STATE_ALARMING
    assert mon.is_alarming
    # Recovery: fill the window with hits until >= 0.85 -> clears.
    transition = None
    while mon.is_alarming:
        transition = mon.observe([True] * 10) or transition
    assert transition == STATE_OK
    assert mon.snapshot()["trips"] == 1


def test_hysteresis_prevents_flapping():
    """Between the clear and trip lines, the current state is sticky."""
    # Window mean of 0.8 at nominal 0.9 sits between 0.75 (trip) and
    # 0.85 (clear): an ok monitor stays ok...
    ok = monitor(window=10, min_observations=10)
    ok.observe([True] * 8 + [False] * 2)
    assert ok.state == STATE_OK
    # ...and an alarming monitor with the same window stays alarming.
    alarming = monitor(window=10, min_observations=10)
    alarming.observe([False] * 10)
    assert alarming.state == STATE_ALARMING
    alarming.observe([True] * 8 + [False] * 2)
    assert alarming.state == STATE_ALARMING
    assert alarming.observed_coverage() == pytest.approx(0.8)


def test_reset_clears_window_and_alarm_but_keeps_trips():
    """Hot reload resets the window; the trip counter is cumulative."""
    mon = monitor(min_observations=10)
    mon.observe([False] * 10)
    assert mon.is_alarming
    mon.reset()
    snap = mon.snapshot()
    assert snap["state"] == STATE_OK
    assert snap["window"] == 0
    assert snap["observed_coverage"] is None
    assert snap["trips"] == 1
    assert snap["observations_total"] == 10


def test_observe_verdicts_path():
    """Verdict strings feed the same machinery as booleans."""
    mon = monitor(min_observations=4)
    transition = mon.observe_verdicts(
        [VERDICT_ANOMALOUS, VERDICT_ANOMALOUS, VERDICT_ANOMALOUS, "trojan-free", "error"]
    )
    assert transition == STATE_ALARMING
    assert mon.snapshot()["window"] == 4  # the error record is excluded


def test_constructor_validation():
    """Nonsense configurations are rejected up front."""
    with pytest.raises(ValueError):
        CoverageDriftMonitor(nominal=1.5)
    with pytest.raises(ValueError):
        CoverageDriftMonitor(nominal=0.9, window=0)
    with pytest.raises(ValueError):
        CoverageDriftMonitor(nominal=0.9, window=5, min_observations=6)
    with pytest.raises(ValueError):
        CoverageDriftMonitor(nominal=0.9, trip_margin=0.05, clear_margin=0.1)


def test_snapshot_shape():
    """/healthz consumers rely on these exact keys."""
    snap = monitor().snapshot()
    assert set(snap) == {
        "state",
        "observed_coverage",
        "nominal_coverage",
        "window",
        "window_size",
        "min_observations",
        "trip_margin",
        "clear_margin",
        "trips",
        "observations_total",
    }
