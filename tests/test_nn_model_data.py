"""Tests for the Sequential model, training loop, serialization and data utils."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Dense,
    ReLU,
    Sequential,
    Sigmoid,
    iterate_minibatches,
    load_state_dict,
    load_weights,
    one_hot,
    save_weights,
    state_dict,
    stratified_indices,
    train_test_split,
)


def _make_model(seed: int = 0) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(
        [Dense(6, 16, rng=rng), ReLU(), Dense(16, 1, rng=rng), Sigmoid()],
        loss="bce",
        optimizer="adam",
        learning_rate=0.01,
    )


class TestSequential:
    def test_training_reduces_loss(self, binary_classification_data) -> None:
        x, y = binary_classification_data
        model = _make_model()
        history = model.fit(x, y, epochs=25, batch_size=32, rng=np.random.default_rng(0))
        assert history.loss[-1] < history.loss[0]

    def test_learns_separable_problem(self, binary_classification_data) -> None:
        x, y = binary_classification_data
        model = _make_model()
        model.fit(x, y, epochs=40, batch_size=32, rng=np.random.default_rng(0))
        assert np.mean(model.predict(x) == y) > 0.9

    def test_validation_history_recorded(self, binary_classification_data) -> None:
        x, y = binary_classification_data
        model = _make_model()
        history = model.fit(
            x[:200], y[:200], epochs=5, validation_data=(x[200:], y[200:]),
            rng=np.random.default_rng(0),
        )
        assert len(history.val_loss) == len(history.loss) == 5

    def test_early_stopping_stops_before_max_epochs(self, binary_classification_data) -> None:
        x, y = binary_classification_data
        model = _make_model()
        history = model.fit(
            x, y, epochs=200, batch_size=64, early_stopping_patience=3,
            rng=np.random.default_rng(0),
        )
        assert history.n_epochs < 200

    def test_predict_proba_shape_and_range(self, binary_classification_data) -> None:
        x, _ = binary_classification_data
        model = _make_model()
        proba = model.predict_proba(x)
        assert proba.shape == (len(x), 1)
        assert np.all(proba >= 0) and np.all(proba <= 1)

    def test_predict_threshold(self, binary_classification_data) -> None:
        x, _ = binary_classification_data
        model = _make_model()
        strict = model.predict(x, threshold=0.9).sum()
        lenient = model.predict(x, threshold=0.1).sum()
        assert lenient >= strict

    def test_requires_at_least_one_layer(self) -> None:
        with pytest.raises(ValueError):
            Sequential([])

    def test_invalid_epochs(self, binary_classification_data) -> None:
        x, y = binary_classification_data
        with pytest.raises(ValueError):
            _make_model().fit(x, y, epochs=0)

    def test_n_parameters(self) -> None:
        model = _make_model()
        assert model.n_parameters == (6 * 16 + 16) + (16 * 1 + 1)

    def test_multiclass_head(self) -> None:
        rng = np.random.default_rng(0)
        x = rng.normal(size=(120, 4))
        y = (x[:, 0] > 0).astype(int) + (x[:, 1] > 0).astype(int)  # 3 classes
        model = Sequential(
            [Dense(4, 16, rng=rng), ReLU(), Dense(16, 3, rng=rng)],
            loss="softmax_crossentropy",
            optimizer="adam",
            learning_rate=0.02,
        )
        model.fit(x, y, epochs=60, batch_size=16, rng=rng)
        assert np.mean(model.predict(x) == y) > 0.8


class TestSerialization:
    def test_state_dict_round_trip(self) -> None:
        source = _make_model(seed=1)
        target = _make_model(seed=2)
        load_state_dict(target, state_dict(source))
        for p_source, p_target in zip(source.parameters(), target.parameters()):
            np.testing.assert_array_equal(p_source, p_target)

    def test_save_and_load_weights(self, tmp_path, binary_classification_data) -> None:
        x, y = binary_classification_data
        source = _make_model(seed=1)
        source.fit(x, y, epochs=5, rng=np.random.default_rng(0))
        path = save_weights(source, tmp_path / "model.npz")
        target = _make_model(seed=9)
        load_weights(target, path)
        np.testing.assert_allclose(source.predict_proba(x), target.predict_proba(x))

    def test_load_rejects_shape_mismatch(self) -> None:
        source = _make_model()
        state = state_dict(source)
        state["param_0"] = np.zeros((3, 3))
        with pytest.raises(ValueError, match="shape mismatch"):
            load_state_dict(source, state)

    def test_load_rejects_missing_and_extra_keys(self) -> None:
        source = _make_model()
        state = state_dict(source)
        del state["param_0"]
        with pytest.raises(ValueError, match="missing"):
            load_state_dict(source, state)
        state = state_dict(source)
        state["param_99"] = np.zeros(1)
        with pytest.raises(ValueError, match="unexpected"):
            load_state_dict(source, state)


class TestDataUtilities:
    def test_one_hot_basic(self) -> None:
        encoded = one_hot([0, 2, 1], n_classes=3)
        np.testing.assert_array_equal(encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_one_hot_rejects_out_of_range(self) -> None:
        with pytest.raises(ValueError):
            one_hot([0, 3], n_classes=3)

    def test_minibatches_cover_everything(self) -> None:
        x = np.arange(10).reshape(-1, 1)
        y = np.arange(10)
        seen = []
        for xb, yb in iterate_minibatches(x, y, batch_size=3, shuffle=False):
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(10))

    def test_minibatch_sizes(self) -> None:
        x = np.zeros((10, 2))
        y = np.zeros(10)
        sizes = [len(xb) for xb, _ in iterate_minibatches(x, y, batch_size=4, shuffle=False)]
        assert sizes == [4, 4, 2]

    def test_minibatches_validate_inputs(self) -> None:
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros((3, 1)), np.zeros(2), batch_size=1))
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros((3, 1)), np.zeros(3), batch_size=0))

    def test_train_test_split_stratified_preserves_classes(self) -> None:
        rng = np.random.default_rng(0)
        x = rng.normal(size=(60, 2))
        y = np.array([0] * 45 + [1] * 15)
        _, x_test, _, y_test = train_test_split(x, y, test_fraction=0.2, rng=rng)
        assert set(np.unique(y_test)) == {0, 1}

    def test_train_test_split_disjoint_and_complete(self) -> None:
        rng = np.random.default_rng(0)
        x = np.arange(40).reshape(-1, 1).astype(float)
        y = np.array([0, 1] * 20)
        x_train, x_test, _, _ = train_test_split(x, y, test_fraction=0.25, rng=rng)
        combined = sorted(np.concatenate([x_train, x_test]).reshape(-1).tolist())
        assert combined == list(range(40))

    def test_train_test_split_invalid_fraction(self) -> None:
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_fraction=1.5)

    def test_stratified_indices_partition(self) -> None:
        y = np.array([0] * 20 + [1] * 10)
        folds = stratified_indices(y, n_splits=5, rng=np.random.default_rng(0))
        all_indices = sorted(int(i) for fold in folds for i in fold)
        assert all_indices == list(range(30))
        for fold in folds:
            fold_labels = y[fold]
            assert (fold_labels == 1).sum() == 2

    @given(
        labels=st.lists(st.integers(min_value=0, max_value=3), min_size=8, max_size=60),
        n_classes=st.just(4),
    )
    @settings(max_examples=30, deadline=None)
    def test_one_hot_property(self, labels, n_classes) -> None:
        encoded = one_hot(labels, n_classes=n_classes)
        assert encoded.shape == (len(labels), n_classes)
        np.testing.assert_array_equal(encoded.sum(axis=1), 1.0)
        np.testing.assert_array_equal(encoded.argmax(axis=1), labels)
