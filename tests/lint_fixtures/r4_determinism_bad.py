"""Known-bad R4 fixture: three nondeterminism sources in a merge path.

Copied by the tests to ``.../engine/scheduler.py`` in a temp tree so the
default determinism module list applies.  Expected: exactly three R4
findings (set iteration, wall-clock read, global PRNG), all in ``merge``.
"""

import random
import time


def merge(records):
    """Merge records with every mistake the rule knows about."""
    seen = set(records)
    out = []
    for record in seen:  # R4: set iteration feeding ordered output
        out.append(record)
    stamp = time.time()  # R4: wall-clock read as data
    jitter = random.random()  # R4: unseeded global PRNG
    return out, stamp, jitter
