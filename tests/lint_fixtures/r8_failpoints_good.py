"""Known-good R8 twin: disciplined failpoint guard sites.

Literal dotted-lowercase names, exactly one guard site per name.
"""

from ..faults import corrupting_failpoint, failpoint


def flush(data: bytes) -> bytes:
    """One uniquely-named guard per fault surface."""
    failpoint("fixture.flush.io")
    return corrupting_failpoint("fixture.shard.read", data)
