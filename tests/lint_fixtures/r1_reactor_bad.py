"""Known-bad R1 fixture: the reactor reaches ``time.sleep`` via a helper.

Copied by the tests to ``.../serve/eventloop.py`` in a temp tree so the
default config's reactor root (``EventLoopFrontend.run``) applies.
Expected: exactly one R1 finding, anchored in ``_pump``.
"""

import time


class EventLoopFrontend:
    """Minimal reactor shape matching the default R1 root."""

    def __init__(self):
        self.ticks = 0

    def run(self):
        """Loop-thread entry point."""
        while self.ticks < 3:
            self._pump()

    def _pump(self):
        """Helper the loop calls every iteration."""
        time.sleep(0.01)  # R1: blocking call on the reactor thread
        self.ticks += 1
