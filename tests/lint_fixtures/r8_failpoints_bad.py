"""Known-bad R8 fixture: sloppy failpoint guard sites.

Expected: exactly three R8 findings — one computed (non-literal) name,
one malformed name, and one duplicate guard site.
"""

from ..faults import corrupting_failpoint, failpoint

_PREFIX = "cache."


def flush(data: bytes) -> bytes:
    """Guards with every naming mistake the rule flags."""
    # R8: computed name cannot be grepped from a spec to its guard site.
    failpoint(_PREFIX + "flush.io")
    # R8: name is not dotted lowercase subsystem.component.event.
    failpoint("CacheFlushIO")
    failpoint("fixture.flush.once")
    # R8: second guard site for an already-owned name.
    return corrupting_failpoint("fixture.flush.once", data)
