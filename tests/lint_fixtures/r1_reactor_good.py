"""Known-good R1 fixture: the reactor does only non-blocking work.

Same shape as the bad twin; ``time.monotonic`` is an allowed monotonic
read, not a blocking call.  Expected: zero findings.
"""

import time


class EventLoopFrontend:
    """Minimal reactor shape matching the default R1 root."""

    def __init__(self):
        self.ticks = 0
        self.last_tick = 0.0

    def run(self):
        """Loop-thread entry point."""
        while self.ticks < 3:
            self._pump()

    def _pump(self):
        """Helper the loop calls every iteration."""
        self.last_tick = time.monotonic()
        self.ticks += 1
