"""Known-good R4 fixture: deterministic merge with allowed telemetry.

``sorted(...)`` fixes the set order, ``time.perf_counter`` is elapsed
telemetry (allowed), and the PRNG is explicitly seeded.  Expected: zero
findings.
"""

import time

import numpy as np


def merge(records):
    """Merge records deterministically, timing the work."""
    t_start = time.perf_counter()
    seen = set(records)
    out = [record for record in sorted(seen)]
    rng = np.random.default_rng(1234)
    shuffle_check = rng.integers(0, 10)
    return out, time.perf_counter() - t_start, int(shuffle_check)
