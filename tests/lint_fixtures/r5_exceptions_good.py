"""Known-good R5 fixture: narrow and justified handlers only.

Expected: zero findings.
"""

import logging


def narrow(text):
    """A narrow handler names the failure it tolerates."""
    try:
        return int(text)
    except ValueError:
        return None


def justified(callback):
    """A broad handler with a trailing justification that does something."""
    try:
        callback()
    except Exception:  # a bad callback must not kill the worker
        logging.getLogger(__name__).exception("callback failed")
