"""Known-good R3 fixture: the sibling-temp-file + ``os.replace`` idiom.

Expected: zero findings.
"""

import json
import os


def write_entry(path, payload):
    """Stage the payload in a sibling temp file, then rename into place."""
    tmp_path = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp_path.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp_path, path)
