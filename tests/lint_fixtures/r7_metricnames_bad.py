"""Known-bad R7 fixture: sloppy metric-family registrations.

Expected: exactly three R7 findings — one computed (non-literal) name,
one malformed name, and one duplicate registration site.
"""

from ..obs.metrics import REGISTRY

_PREFIX = "repro_serve_"

#: R7: computed name dodges the static uniqueness check.
_DYNAMIC = REGISTRY.counter(_PREFIX + "dynamic_total", "Computed family name.")

#: R7: name does not match repro_<subsystem>_<name>.
_CAMEL = REGISTRY.gauge("reproServeQueueDepth", "Malformed family name.")

_FIRST = REGISTRY.counter("repro_serve_twice_total", "The owning site.")

#: R7: second registration of an already-owned family.
_SECOND = REGISTRY.counter("repro_serve_twice_total", "A second site.")
