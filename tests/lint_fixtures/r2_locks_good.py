"""Known-good R2 fixture: every write to the guarded attribute holds the lock.

Also exercises the lock-held-helper refinement: ``_clear`` writes the
guarded attribute with no lexical ``with``, but its only call site holds
the lock, so it inherits the guarantee.  Expected: zero findings.
"""

import threading


class Counter:
    """Thread-safe counter, consistently guarded."""

    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def add(self, n):
        """Guarded increment."""
        with self._lock:
            self.total += n

    def reset(self):
        """Guarded reset via a helper that inherits the lock."""
        with self._lock:
            self._clear()

    def _clear(self):
        """Only ever called with the lock held."""
        self.total = 0
