"""Known-good R7 twin: disciplined metric-family registrations.

Literal names, `repro_<subsystem>_<name>` shape, one site per family.
A locally-constructed registry (what unit tests use) is deliberately
out of scope for the rule and may name things however it likes.
"""

from ..obs.metrics import REGISTRY, MetricsRegistry

_SCANS = REGISTRY.counter(
    "repro_serve_fixture_scans_total",
    "Completed fixture scans.",
    labels=("model",),
)
_QUEUE = REGISTRY.gauge(
    "repro_serve_fixture_queue_depth", "Designs waiting in the fixture queue."
)
_LATENCY = REGISTRY.histogram(
    "repro_serve_fixture_latency_seconds", "Fixture request latency."
)

#: Private registries are not checked (documented R7 blind spot).
_PRIVATE = MetricsRegistry()
_FREEFORM = _PRIVATE.counter("anything_goes", "Not the process-wide registry.")
