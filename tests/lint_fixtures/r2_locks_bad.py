"""Known-bad R2 fixture: a guarded attribute written without the lock.

``total`` is written under ``with self._lock:`` in ``add`` — so the
class treats it as lock-guarded — but ``reset`` writes it bare.
Expected: exactly one R2 finding, anchored in ``reset``.
"""

import threading


class Counter:
    """Thread-safe counter with one unguarded write slipped in."""

    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def add(self, n):
        """Guarded increment."""
        with self._lock:
            self.total += n

    def reset(self):
        """R2: writes the guarded attribute without holding the lock."""
        self.total = 0
