"""Known-bad R3 fixture: a direct write into a durable-store module.

Copied by the tests to ``.../engine/cache.py`` in a temp tree so the
default atomic-write module list applies.  Expected: exactly one R3
finding, anchored in ``write_entry``.
"""

import json


def write_entry(path, payload):
    """R3: writes the store file in place — a reader can see a torn file."""
    path.write_text(json.dumps(payload, sort_keys=True))
