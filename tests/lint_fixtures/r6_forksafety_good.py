"""Known-good R6 fixture: workers communicate only via return values.

Expected: zero findings.
"""

import multiprocessing


def _worker(item):
    """Pool worker; purely functional."""
    local = {"value": item * 2}
    return local["value"]


def run(items):
    """Fan the items out to a pool and merge the returned values."""
    with multiprocessing.Pool(2) as pool:
        results = pool.map(_worker, items)
    return dict(zip(items, results))
