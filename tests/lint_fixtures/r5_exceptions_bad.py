"""Known-bad R5 fixture: all three exception-hygiene mistakes.

Expected: exactly three R5 findings — one bare except, one uncommented
broad handler, one silent pass (its comment does not excuse the
swallow).
"""


def bare(text):
    """R5: bare except swallows KeyboardInterrupt/SystemExit."""
    try:
        return int(text)
    except:
        return None


def uncommented(text):
    """R5: broad handler with no trailing justification comment."""
    try:
        return int(text)
    except Exception:
        return None


def silent(text):
    """R5: broad handler that silently discards the exception."""
    try:
        return int(text)
    except Exception:  # fixture: the comment alone does not excuse the pass
        pass
