"""Known-bad R6 fixture: pool workers mutating module-level state.

Expected: exactly two R6 findings — one ``global`` rebind and one
module-level-container mutation, both in worker-reachable functions.
"""

import multiprocessing

_RESULTS = {}
_TOTAL = 0


def _record(item):
    """Reached from the worker; mutates a module-level dict."""
    _RESULTS[item] = item * 2  # R6: shared-container mutation


def _worker(item):
    """Pool worker; rebinds a module global."""
    global _TOTAL
    _TOTAL += 1  # R6: global rebind diverges per forked process
    _record(item)
    return item * 2


def run(items):
    """Fan the items out to a pool."""
    with multiprocessing.Pool(2) as pool:
        return pool.map(_worker, items)
