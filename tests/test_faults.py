"""Unit tests for the fault-injection layer (``repro.faults``).

Covers the failpoint spec grammar, the guard semantics (error / delay /
corrupt actions, probability and budget gates), and the unified
retry/deadline policy primitives.  Process-killing actions are exercised
end-to-end in ``tests/test_chaos.py``; here ``kill`` is only parsed.
"""

from __future__ import annotations

import errno
import random
import time

import pytest

from repro import faults
from repro.faults import (
    FAILPOINTS_ENV,
    Deadline,
    FailpointSpecError,
    RetryPolicy,
    active_failpoints,
    configure,
    configure_from_env,
    corrupting_failpoint,
    failpoint,
    failpoints_active,
)
from repro.faults.failpoints import _corrupt_bytes, parse_spec


@pytest.fixture(autouse=True)
def _clean_failpoints():
    """The activation table is process-global: always leave it empty."""
    configure(None)
    yield
    configure(None)


# -- spec grammar ------------------------------------------------------------


class TestParseSpec:
    def test_single_entry(self):
        table = parse_spec("cache.flush.io=error:OSError")
        assert set(table) == {"cache.flush.io"}
        spec = table["cache.flush.io"]
        assert spec.action == "error" and spec.arg == "OSError"
        assert spec.probability == 1.0 and spec.budget is None

    def test_multiple_entries_with_options(self):
        table = parse_spec(
            "cache.flush.io=error,p=0.5,n=3; features.shard.read=corrupt ;"
            "scheduler.worker.body=kill"
        )
        assert set(table) == {
            "cache.flush.io",
            "features.shard.read",
            "scheduler.worker.body",
        }
        assert table["cache.flush.io"].probability == 0.5
        assert table["cache.flush.io"].budget == 3
        assert table["features.shard.read"].action == "corrupt"
        assert table["scheduler.worker.body"].action == "kill"

    def test_delay_takes_milliseconds(self):
        table = parse_spec("serve.dispatch=delay:25")
        assert table["serve.dispatch"].arg == "25"

    def test_empty_entries_are_skipped(self):
        assert parse_spec(" ; ;") == {}

    @pytest.mark.parametrize(
        "bad",
        [
            "noequalsign",  # missing =
            "cache.flush.io=",  # empty action
            "BadName=error",  # name not dotted lowercase
            "flat=error",  # single word, no dot
            "a.b=error;a.b=delay:1",  # duplicate name
            "a.b=explode",  # unknown action
            "a.b=error:NotAnException",  # unknown exception type
            "a.b=error:print",  # builtin but not an exception
            "a.b=delay",  # delay without argument
            "a.b=delay:-5",  # negative delay
            "a.b=delay:soon",  # non-numeric delay
            "a.b=kill:now",  # argument on no-arg action
            "a.b=corrupt:half",  # argument on no-arg action
            "a.b=error,p",  # option without =
            "a.b=error,p=maybe",  # non-float p
            "a.b=error,p=1.5",  # p out of range
            "a.b=error,n=few",  # non-int n
            "a.b=error,n=-1",  # negative n
            "a.b=error,q=1",  # unknown option
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(FailpointSpecError):
            parse_spec(bad)

    def test_bad_spec_leaves_table_untouched(self):
        configure("a.b=delay:0")
        with pytest.raises(FailpointSpecError):
            configure("a.b=explode")
        assert [fp["name"] for fp in active_failpoints()] == ["a.b"]

    def test_configure_none_clears(self):
        configure("a.b=delay:0")
        assert failpoints_active()
        configure(None)
        assert not failpoints_active()
        assert active_failpoints() == []

    def test_configure_from_env(self, monkeypatch):
        monkeypatch.setenv(FAILPOINTS_ENV, "env.driven.point=delay:0")
        configure_from_env()
        assert [fp["name"] for fp in active_failpoints()] == ["env.driven.point"]
        monkeypatch.delenv(FAILPOINTS_ENV)
        configure_from_env()
        assert not failpoints_active()


# -- guard semantics ---------------------------------------------------------


class TestFailpointGuards:
    def test_inert_when_unconfigured(self):
        failpoint("never.configured.name")
        assert corrupting_failpoint("never.configured.name", b"data") == b"data"

    def test_error_action_default_runtimeerror(self):
        configure("a.b=error")
        with pytest.raises(RuntimeError, match=r"failpoint a\.b: injected RuntimeError"):
            failpoint("a.b")

    def test_error_action_oserror_carries_enospc(self):
        configure("a.b=error:OSError")
        with pytest.raises(OSError) as excinfo:
            failpoint("a.b")
        assert excinfo.value.errno == errno.ENOSPC

    def test_error_action_custom_builtin(self):
        configure("a.b=error:TimeoutError")
        with pytest.raises(TimeoutError):
            failpoint("a.b")

    def test_delay_action_sleeps(self):
        configure("a.b=delay:30")
        start = time.perf_counter()
        failpoint("a.b")
        assert time.perf_counter() - start >= 0.02

    def test_budget_limits_firings(self):
        configure("a.b=error,n=2")
        for _ in range(2):
            with pytest.raises(RuntimeError):
                failpoint("a.b")
        failpoint("a.b")  # budget exhausted: inert
        (desc,) = active_failpoints()
        assert desc["hits"] == 3 and desc["fired"] == 2

    def test_probability_zero_never_fires(self):
        configure("a.b=error,p=0")
        for _ in range(50):
            failpoint("a.b")
        (desc,) = active_failpoints()
        assert desc["hits"] == 50 and desc["fired"] == 0

    def test_probability_is_deterministic_per_name(self):
        def firing_pattern():
            configure("a.b=error,p=0.5")
            pattern = []
            for _ in range(20):
                try:
                    failpoint("a.b")
                    pattern.append(False)
                except RuntimeError:
                    pattern.append(True)
            return pattern

        first = firing_pattern()
        assert firing_pattern() == first  # name-seeded RNG: same every run
        assert any(first) and not all(first)

    def test_corrupt_action_mangles_bytes_at_corrupting_site(self):
        configure("a.b=corrupt")
        data = bytes(range(32))
        out = corrupting_failpoint("a.b", data)
        assert out != data
        assert out == _corrupt_bytes(data)
        assert len(out) == 16 and out[0] == data[0] ^ 0xFF

    def test_corrupt_of_empty_bytes_is_nonempty(self):
        configure("a.b=corrupt")
        assert corrupting_failpoint("a.b", b"") == b"\xffcorrupt"

    def test_corrupt_is_inert_at_plain_failpoint(self):
        configure("a.b=corrupt")
        failpoint("a.b")  # must not raise: corrupt only acts on byte streams

    def test_error_action_at_corrupting_site_raises(self):
        configure("a.b=error:OSError")
        with pytest.raises(OSError):
            corrupting_failpoint("a.b", b"data")

    def test_corrupting_site_respects_budget(self):
        configure("a.b=corrupt,n=1")
        assert corrupting_failpoint("a.b", b"data") != b"data"
        assert corrupting_failpoint("a.b", b"data") == b"data"

    def test_describe_shape(self):
        configure("a.b=error:OSError,p=0.25,n=4")
        (desc,) = active_failpoints()
        assert desc == {
            "name": "a.b",
            "action": "error",
            "arg": "OSError",
            "probability": 0.25,
            "budget": 4,
            "hits": 0,
            "fired": 0,
        }

    def test_module_import_side_effect_reads_env(self, monkeypatch):
        # configure_from_env runs at import; the function is the same hook.
        monkeypatch.setenv(FAILPOINTS_ENV, "a.b=delay:0")
        faults.configure_from_env()
        assert faults.failpoints_active()


# -- retry policy ------------------------------------------------------------


class TestRetryPolicy:
    def test_attempts_and_allows_bounded(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.attempts == 3
        assert policy.allows(0) and policy.allows(2)
        assert not policy.allows(3)

    def test_unbounded(self):
        policy = RetryPolicy(max_retries=None)
        assert policy.attempts is None
        assert policy.allows(10**6)

    def test_backoff_zero_base_is_zero(self):
        policy = RetryPolicy(max_retries=3)
        assert policy.backoff_s(1) == 0.0
        assert policy.backoff_s(5) == 0.0

    def test_backoff_growth_and_cap(self):
        policy = RetryPolicy(
            max_retries=None, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5
        )
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.4)
        assert policy.backoff_s(4) == pytest.approx(0.5)  # capped
        assert policy.backoff_s(10) == pytest.approx(0.5)

    def test_jitter_bounds(self):
        policy = RetryPolicy(
            max_retries=None,
            base_delay_s=0.1,
            multiplier=1.0,
            max_delay_s=10.0,
            jitter=0.25,
        )
        rng = random.Random(7)
        delays = [policy.backoff_s(1, rng) for _ in range(200)]
        assert all(0.075 <= d <= 0.125 for d in delays)
        assert len(set(delays)) > 1
        # Without an rng the jitter is skipped entirely (deterministic path).
        assert policy.backoff_s(1) == pytest.approx(0.1)

    def test_is_frozen(self):
        policy = RetryPolicy(max_retries=1)
        with pytest.raises(AttributeError):
            policy.max_retries = 5  # type: ignore[misc]


# -- deadlines ---------------------------------------------------------------


class TestDeadline:
    def test_never_is_unbounded(self):
        deadline = Deadline.never()
        assert not deadline.expired()
        assert deadline.remaining() is None
        assert deadline.clamp(1.5) == 1.5

    def test_after_ms_expires(self):
        deadline = Deadline.after_ms(10)
        assert not deadline.expired()
        time.sleep(0.03)
        assert deadline.expired()
        remaining = deadline.remaining()
        assert remaining is not None and remaining <= 0.0
        assert deadline.clamp(5.0) == 0.0

    def test_clamp_shrinks_timeout(self):
        deadline = Deadline.after_ms(10_000)
        assert deadline.clamp(1.0) == 1.0
        assert 0.0 < deadline.clamp(60.0) <= 10.0

    def test_remaining_counts_down(self):
        deadline = Deadline.after_ms(500)
        first = deadline.remaining()
        time.sleep(0.02)
        second = deadline.remaining()
        assert first is not None and second is not None and second < first
