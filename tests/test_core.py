"""Tests for the NOODLE core: configs, CNN classifiers, fusion models, pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    NOODLE,
    ClassifierConfig,
    CNNModalityClassifier,
    EarlyFusionModel,
    ImageCNNClassifier,
    LateFusionModel,
    NoodleConfig,
    SingleModalityModel,
    build_fusion_model,
    default_config,
    evaluate_fusion_model,
)
from repro.features import MultimodalFeatures
from repro.gan import AmplificationConfig, GANConfig


def _fast_config(seed: int = 0, **overrides) -> NoodleConfig:
    config = default_config(seed=seed, **overrides)
    config.classifier.epochs = 12
    config.amplification = AmplificationConfig(target_total=60, gan=GANConfig(epochs=40))
    return config


@pytest.fixture(scope="module")
def synthetic_multimodal() -> MultimodalFeatures:
    """A synthetic multimodal dataset with informative, partially redundant
    modalities — cheap to build and separable but not trivially so."""
    rng = np.random.default_rng(9)
    n = 160
    labels = (rng.random(n) < 0.5).astype(int)
    signal = labels[:, None].astype(float)
    graph = 1.2 * signal + rng.normal(size=(n, 10)) * 0.9
    tabular = 0.9 * signal + rng.normal(size=(n, 8)) * 1.1
    images = rng.random((n, 1, 8, 8))
    return MultimodalFeatures(
        tabular=tabular,
        graph=graph,
        graph_images=images,
        labels=labels,
        names=[f"d{i}" for i in range(n)],
        tabular_feature_names=[f"t{i}" for i in range(8)],
        graph_feature_names=[f"g{i}" for i in range(10)],
    )


class TestConfigs:
    def test_default_config_valid(self) -> None:
        default_config().validate()

    def test_seed_override(self) -> None:
        config = default_config(seed=7)
        assert config.seed == 7 and config.classifier.seed == 7

    def test_invalid_configs_rejected(self) -> None:
        with pytest.raises(ValueError):
            NoodleConfig(modalities=()).validate()
        with pytest.raises(ValueError):
            NoodleConfig(modalities=("graph", "graph")).validate()
        with pytest.raises(ValueError):
            NoodleConfig(confidence_level=1.2).validate()
        with pytest.raises(ValueError):
            NoodleConfig(calibration_fraction=0.7, validation_fraction=0.3).validate()
        with pytest.raises(ValueError):
            ClassifierConfig(channels=(4,)).validate()
        with pytest.raises(ValueError):
            ClassifierConfig(dropout=1.5).validate()


class TestCNNClassifiers:
    def test_learns_flat_features(self) -> None:
        rng = np.random.default_rng(0)
        x = rng.normal(size=(120, 20))
        y = (x[:, :5].sum(axis=1) > 0).astype(int)
        config = ClassifierConfig(epochs=40, seed=1)
        classifier = CNNModalityClassifier(20, config)
        classifier.fit(x, y)
        proba = classifier.predict_proba(x)
        assert proba.shape == (120, 2)
        assert np.mean(classifier.predict(x) == y) > 0.85

    def test_rejects_wrong_width(self) -> None:
        classifier = CNNModalityClassifier(10, ClassifierConfig(epochs=2))
        with pytest.raises(ValueError):
            classifier.fit(np.ones((5, 8)), np.zeros(5))
        with pytest.raises(ValueError):
            CNNModalityClassifier(0)

    def test_image_cnn_shapes(self) -> None:
        rng = np.random.default_rng(1)
        images = rng.random((40, 1, 8, 8))
        labels = (images.mean(axis=(1, 2, 3)) > np.median(images.mean(axis=(1, 2, 3)))).astype(int)
        classifier = ImageCNNClassifier(8, ClassifierConfig(epochs=15, seed=0))
        classifier.fit(images, labels)
        proba = classifier.predict_proba(images)
        assert proba.shape == (40, 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_image_cnn_rejects_small_images(self) -> None:
        with pytest.raises(ValueError):
            ImageCNNClassifier(2)


class TestFusionModels:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda cfg: SingleModalityModel("graph", cfg),
            lambda cfg: SingleModalityModel("tabular", cfg),
            EarlyFusionModel,
            LateFusionModel,
        ],
    )
    def test_fit_predict_cycle(self, factory, synthetic_multimodal) -> None:
        config = _fast_config()
        model = factory(config)
        train, test = synthetic_multimodal.stratified_split(0.25, np.random.default_rng(0))
        model.fit(train)
        p_values = model.p_values(test)
        assert p_values.shape == (len(test), 2)
        assert np.all(p_values >= 0) and np.all(p_values <= 1)
        proba = model.predict_proba(test)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        predictions = model.predict(test)
        assert np.mean(predictions == test.labels) > 0.6
        regions = model.prediction_regions(test)
        assert len(regions) == len(test)

    def test_unfitted_model_raises(self, synthetic_multimodal) -> None:
        model = LateFusionModel(_fast_config())
        with pytest.raises(RuntimeError):
            model.p_values(synthetic_multimodal)

    def test_single_class_training_rejected(self, synthetic_multimodal) -> None:
        only_clean = synthetic_multimodal.subset(
            np.flatnonzero(synthetic_multimodal.labels == 0)
        )
        with pytest.raises(ValueError):
            LateFusionModel(_fast_config()).fit(only_clean)

    def test_late_fusion_per_modality_p_values(self, synthetic_multimodal) -> None:
        config = _fast_config()
        train, test = synthetic_multimodal.stratified_split(0.25, np.random.default_rng(1))
        model = LateFusionModel(config)
        model.fit(train)
        per_modality = model.per_modality_p_values(test)
        assert set(per_modality) == {"graph", "tabular"}
        for matrix in per_modality.values():
            assert matrix.shape == (len(test), 2)

    def test_build_fusion_model_factory(self) -> None:
        config = _fast_config()
        assert isinstance(build_fusion_model("early", config), EarlyFusionModel)
        assert isinstance(build_fusion_model("late", config), LateFusionModel)
        single = build_fusion_model("single", config, modality="graph")
        assert isinstance(single, SingleModalityModel)
        with pytest.raises(ValueError):
            build_fusion_model("single", config)
        with pytest.raises(ValueError):
            build_fusion_model("middle", config)

    def test_evaluate_fusion_model_metrics(self, synthetic_multimodal) -> None:
        config = _fast_config()
        train, test = synthetic_multimodal.stratified_split(0.25, np.random.default_rng(2))
        model = EarlyFusionModel(config)
        model.fit(train)
        evaluation = evaluate_fusion_model(model, test)
        assert 0.0 <= evaluation.brier_score <= 1.0
        assert 0.0 <= evaluation.auc <= 1.0
        assert 0.0 <= evaluation.coverage <= 1.0
        assert evaluation.strategy == "early_fusion"
        assert "brier_score" in evaluation.as_dict()


class TestNOODLEPipeline:
    def test_fit_selects_winner_and_reports(self, synthetic_multimodal) -> None:
        config = _fast_config()
        train, test = synthetic_multimodal.stratified_split(0.25, np.random.default_rng(3))
        detector = NOODLE(config)
        report = detector.fit(train)
        assert report.winner in ("early_fusion", "late_fusion")
        assert set(report.validation_scores) == {"early_fusion", "late_fusion"}
        assert report.original_training_size == len(train)
        assert any("winner" in line for line in report.summary_lines())
        evaluation = detector.evaluate(test)
        assert evaluation.auc > 0.6

    def test_decisions_are_risk_aware(self, synthetic_multimodal) -> None:
        config = _fast_config()
        train, test = synthetic_multimodal.stratified_split(0.25, np.random.default_rng(4))
        detector = NOODLE(config)
        detector.fit(train)
        decisions = detector.decide(test)
        assert len(decisions) == len(test)
        for decision in decisions:
            assert decision.predicted_label in (0, 1)
            assert 0.0 <= decision.probability_infected <= 1.0
            assert 0.0 <= decision.credibility <= 1.0
            assert decision.verdict
            assert decision.true_label in (0, 1)
        # The conformal machinery should produce at least a few singleton calls.
        assert any(not d.is_uncertain and not d.is_empty for d in decisions)

    def test_amplification_path(self, synthetic_multimodal) -> None:
        config = _fast_config()
        config.amplify = True
        train, _ = synthetic_multimodal.stratified_split(0.3, np.random.default_rng(5))
        detector = NOODLE(config)
        report = detector.fit(train)
        assert report.amplified_training_size >= report.original_training_size

    def test_missing_modality_path(self, synthetic_multimodal) -> None:
        config = _fast_config()
        train, test = synthetic_multimodal.stratified_split(0.3, np.random.default_rng(6))
        damaged = train.with_missing_modality("tabular", 0.2, rng=np.random.default_rng(0))
        detector = NOODLE(config)
        detector.fit(damaged)
        assert detector.predict(test).shape == (len(test),)

    def test_unfitted_access_raises(self) -> None:
        detector = NOODLE(_fast_config())
        with pytest.raises(RuntimeError):
            _ = detector.report
        with pytest.raises(RuntimeError):
            _ = detector.model

    def test_candidate_access(self, synthetic_multimodal) -> None:
        config = _fast_config()
        train, _ = synthetic_multimodal.stratified_split(0.3, np.random.default_rng(7))
        detector = NOODLE(config)
        detector.fit(train)
        assert detector.candidate("early_fusion").strategy == "early_fusion"
        with pytest.raises(KeyError):
            detector.candidate("mid_fusion")
