"""Model registry tests: load-once, hot reload, fingerprint cache namespacing."""

from __future__ import annotations

import os

import pytest

from repro.core.config import ClassifierConfig, NoodleConfig
from repro.engine import recalibrate_detector, save_detector, train_detector
from repro.serve.registry import ModelRegistry
from repro.trojan import SuiteConfig, TrojanDataset
from repro.features import extract_modalities


@pytest.fixture(scope="module")
def detector(small_features):
    config = NoodleConfig(classifier=ClassifierConfig(epochs=3, seed=0), seed=0)
    return train_detector(small_features, strategy="late", config=config).model


@pytest.fixture()
def artifact(detector, tmp_path):
    return save_detector(detector, tmp_path / "artifact")


def _bump_mtime(artifact) -> None:
    """Force a visibly newer manifest mtime (coarse-mtime filesystems)."""
    manifest = artifact / "manifest.json"
    stat = os.stat(manifest)
    os.utime(manifest, (stat.st_atime + 10, stat.st_mtime + 10))


class TestLoadOnce:
    def test_get_loads_once_and_caches(self, artifact):
        registry = ModelRegistry()
        first = registry.get(artifact)
        second = registry.get(artifact)
        assert first is second
        assert first.engine is second.engine
        assert len(registry.entries()) == 1

    def test_missing_artifact_fails_fast(self, tmp_path):
        registry = ModelRegistry()
        with pytest.raises(Exception):
            registry.get(tmp_path / "nope")

    def test_cache_is_namespaced_by_fingerprint(self, artifact, tmp_path):
        registry = ModelRegistry(cache_dir=tmp_path / "cache")
        entry = registry.get(artifact)
        assert entry.engine.cache is not None
        assert entry.engine.cache.fingerprint == entry.fingerprint

    def test_no_cache_dir_serves_uncached(self, artifact):
        entry = ModelRegistry().get(artifact)
        assert entry.engine.cache is None


class TestHotReload:
    def test_unchanged_artifact_is_not_reloaded(self, artifact):
        registry = ModelRegistry()
        entry = registry.get(artifact)
        same, reloaded = registry.maybe_reload(artifact)
        assert not reloaded
        assert same is entry

    def test_changed_fingerprint_hot_reloads(self, artifact, detector):
        registry = ModelRegistry()
        before = registry.get(artifact)
        # Recalibrate on different data => new calibration arrays => new
        # fingerprint written into the same artifact directory.
        fresh = extract_modalities(
            TrojanDataset.generate(
                SuiteConfig(n_trojan_free=10, n_trojan_infected=6, seed=77)
            )
        )
        recalibrate_detector(detector, fresh)
        save_detector(detector, artifact)
        _bump_mtime(artifact)
        after, reloaded = registry.maybe_reload(artifact)
        assert reloaded
        assert after.fingerprint != before.fingerprint
        assert after.engine is not before.engine

    def test_same_content_rewrite_keeps_resident_engine(self, artifact, detector):
        registry = ModelRegistry()
        before = registry.get(artifact)
        save_detector(detector, artifact)  # identical content, new mtime
        _bump_mtime(artifact)
        after, reloaded = registry.maybe_reload(artifact)
        assert not reloaded
        assert after is before
        # The probe must not keep re-reading the detector once the mtime
        # is re-remembered.
        again, reloaded_again = registry.maybe_reload(artifact)
        assert not reloaded_again and again is before

    def test_vanished_manifest_keeps_serving_resident_model(self, artifact):
        registry = ModelRegistry()
        entry = registry.get(artifact)
        (artifact / "manifest.json").unlink()
        same, reloaded = registry.maybe_reload(artifact)
        assert not reloaded and same is entry

    def test_forced_reload_skips_mtime_short_circuit(self, artifact, detector):
        registry = ModelRegistry()
        before = registry.get(artifact)
        fresh = extract_modalities(
            TrojanDataset.generate(
                SuiteConfig(n_trojan_free=10, n_trojan_infected=6, seed=78)
            )
        )
        recalibrate_detector(detector, fresh)
        save_detector(detector, artifact)
        # Pin the mtime back so only the forced path can notice the change.
        os.utime(artifact / "manifest.json", (before.manifest_mtime, before.manifest_mtime))
        unchanged, reloaded = registry.maybe_reload(artifact)
        assert not reloaded and unchanged is before
        after, forced = registry.reload(artifact)
        assert forced
        assert after.fingerprint != before.fingerprint

    def test_reloaded_out_engine_cache_flushes_with_the_next_flush(
        self, artifact, detector, tmp_path
    ):
        from repro.engine.scan import ScanSource

        registry = ModelRegistry(cache_dir=tmp_path / "cache")
        entry = registry.get(artifact)
        entry.engine.scan_sources(
            [ScanSource(name="x", source="module x (a); input a; endmodule")],
            workers=1,
            flush_cache=False,
        )
        fresh = extract_modalities(
            TrojanDataset.generate(
                SuiteConfig(n_trojan_free=10, n_trojan_infected=6, seed=79)
            )
        )
        recalibrate_detector(detector, fresh)
        save_detector(detector, artifact)
        _bump_mtime(artifact)
        _, reloaded = registry.maybe_reload(artifact)
        assert reloaded
        # The swap itself must not flush (the batch worker may still be
        # scanning on the outgoing engine); the next flush_caches() —
        # which the serving layer only runs from the batch worker —
        # persists the retired engine's records exactly once.
        shards_dir = tmp_path / "cache" / entry.fingerprint[:16] / "shards"
        assert not shards_dir.is_dir()
        registry.flush_caches()
        assert shards_dir.is_dir() and any(shards_dir.glob("*.json"))
        assert registry._retired == []
