"""Model registry tests: load-once, hot reload, fingerprint cache namespacing."""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.config import ClassifierConfig, NoodleConfig
from repro.engine import recalibrate_detector, save_detector, train_detector
from repro.serve.registry import ModelRegistry
from repro.trojan import SuiteConfig, TrojanDataset
from repro.features import extract_modalities


@pytest.fixture(scope="module")
def detector(small_features):
    config = NoodleConfig(classifier=ClassifierConfig(epochs=3, seed=0), seed=0)
    return train_detector(small_features, strategy="late", config=config).model


@pytest.fixture()
def artifact(detector, tmp_path):
    return save_detector(detector, tmp_path / "artifact")


def _bump_mtime(artifact) -> None:
    """Force a visibly newer manifest mtime (coarse-mtime filesystems)."""
    manifest = artifact / "manifest.json"
    stat = os.stat(manifest)
    os.utime(manifest, (stat.st_atime + 10, stat.st_mtime + 10))


class TestLoadOnce:
    def test_get_loads_once_and_caches(self, artifact):
        registry = ModelRegistry()
        first = registry.get(artifact)
        second = registry.get(artifact)
        assert first is second
        assert first.engine is second.engine
        assert len(registry.entries()) == 1

    def test_missing_artifact_fails_fast(self, tmp_path):
        registry = ModelRegistry()
        with pytest.raises(Exception):
            registry.get(tmp_path / "nope")

    def test_cache_is_namespaced_by_fingerprint(self, artifact, tmp_path):
        registry = ModelRegistry(cache_dir=tmp_path / "cache")
        entry = registry.get(artifact)
        assert entry.engine.cache is not None
        assert entry.engine.cache.fingerprint == entry.fingerprint

    def test_no_cache_dir_serves_uncached(self, artifact):
        entry = ModelRegistry().get(artifact)
        assert entry.engine.cache is None


class TestHotReload:
    def test_unchanged_artifact_is_not_reloaded(self, artifact):
        registry = ModelRegistry()
        entry = registry.get(artifact)
        same, reloaded = registry.maybe_reload(artifact)
        assert not reloaded
        assert same is entry

    def test_changed_fingerprint_hot_reloads(self, artifact, detector):
        # ttl=0 probes the manifest every time (this test exercises the
        # fingerprint-compare path, not the TTL short-circuit).
        registry = ModelRegistry(reload_ttl_s=0.0)
        before = registry.get(artifact)
        # Recalibrate on different data => new calibration arrays => new
        # fingerprint written into the same artifact directory.
        fresh = extract_modalities(
            TrojanDataset.generate(
                SuiteConfig(n_trojan_free=10, n_trojan_infected=6, seed=77)
            )
        )
        recalibrate_detector(detector, fresh)
        save_detector(detector, artifact)
        _bump_mtime(artifact)
        after, reloaded = registry.maybe_reload(artifact)
        assert reloaded
        assert after.fingerprint != before.fingerprint
        assert after.engine is not before.engine

    def test_same_content_rewrite_keeps_resident_engine(self, artifact, detector):
        registry = ModelRegistry()
        before = registry.get(artifact)
        save_detector(detector, artifact)  # identical content, new mtime
        _bump_mtime(artifact)
        after, reloaded = registry.maybe_reload(artifact)
        assert not reloaded
        assert after is before
        # The probe must not keep re-reading the detector once the mtime
        # is re-remembered.
        again, reloaded_again = registry.maybe_reload(artifact)
        assert not reloaded_again and again is before

    def test_vanished_manifest_keeps_serving_resident_model(self, artifact):
        registry = ModelRegistry()
        entry = registry.get(artifact)
        (artifact / "manifest.json").unlink()
        same, reloaded = registry.maybe_reload(artifact)
        assert not reloaded and same is entry

    def test_forced_reload_skips_mtime_short_circuit(self, artifact, detector):
        registry = ModelRegistry()
        before = registry.get(artifact)
        fresh = extract_modalities(
            TrojanDataset.generate(
                SuiteConfig(n_trojan_free=10, n_trojan_infected=6, seed=78)
            )
        )
        recalibrate_detector(detector, fresh)
        save_detector(detector, artifact)
        # Pin the mtime back so only the forced path can notice the change.
        os.utime(artifact / "manifest.json", (before.manifest_mtime, before.manifest_mtime))
        unchanged, reloaded = registry.maybe_reload(artifact)
        assert not reloaded and unchanged is before
        after, forced = registry.reload(artifact)
        assert forced
        assert after.fingerprint != before.fingerprint

    def test_reloaded_out_engine_cache_flushes_with_the_next_flush(
        self, artifact, detector, tmp_path
    ):
        from repro.engine.scan import ScanSource

        registry = ModelRegistry(cache_dir=tmp_path / "cache", reload_ttl_s=0.0)
        entry = registry.get(artifact)
        entry.engine.scan_sources(
            [ScanSource(name="x", source="module x (a); input a; endmodule")],
            workers=1,
            flush_cache=False,
        )
        fresh = extract_modalities(
            TrojanDataset.generate(
                SuiteConfig(n_trojan_free=10, n_trojan_infected=6, seed=79)
            )
        )
        recalibrate_detector(detector, fresh)
        save_detector(detector, artifact)
        _bump_mtime(artifact)
        _, reloaded = registry.maybe_reload(artifact)
        assert reloaded
        # The swap itself must not flush (the batch worker may still be
        # scanning on the outgoing engine); the next flush_caches() —
        # which the serving layer only runs from the batch worker —
        # persists the retired engine's records exactly once.
        shards_dir = tmp_path / "cache" / entry.fingerprint[:16] / "shards"
        assert not shards_dir.is_dir()
        registry.flush_caches()
        assert shards_dir.is_dir() and any(shards_dir.glob("*.json"))
        assert registry._retired == []


class TestReloadTTL:
    """The manifest-mtime stat probe is rate-limited by ``reload_ttl_s``."""

    def test_probe_within_ttl_skips_the_stat(self, artifact, monkeypatch):
        registry = ModelRegistry(reload_ttl_s=60.0)
        registry.get(artifact)
        calls = {"n": 0}
        original = ModelRegistry._manifest_mtime

        def counting(self, path):
            calls["n"] += 1
            return original(self, path)

        monkeypatch.setattr(ModelRegistry, "_manifest_mtime", counting)
        for _ in range(500):
            _, reloaded = registry.maybe_reload(artifact)
            assert not reloaded
        assert calls["n"] == 0  # every probe rode the TTL, zero stats

    def test_reload_latency_stays_bounded_by_the_ttl(self, artifact, detector):
        import time

        ttl = 0.05
        registry = ModelRegistry(reload_ttl_s=ttl)
        before = registry.get(artifact)
        fresh = extract_modalities(
            TrojanDataset.generate(
                SuiteConfig(n_trojan_free=10, n_trojan_infected=6, seed=83)
            )
        )
        recalibrate_detector(detector, fresh)
        save_detector(detector, artifact)
        _bump_mtime(artifact)
        # Keep probing the way the batch worker does; the swap must land
        # within a couple of TTL windows, not eventually.
        deadline = time.monotonic() + 20 * ttl
        reloaded = False
        while time.monotonic() < deadline and not reloaded:
            _, reloaded = registry.maybe_reload(artifact)
            if not reloaded:
                time.sleep(ttl / 5)
        assert reloaded
        after = registry.get(artifact)
        assert after.fingerprint != before.fingerprint

    def test_forced_reload_bypasses_the_ttl(self, artifact, detector):
        registry = ModelRegistry(reload_ttl_s=3600.0)
        before = registry.get(artifact)
        fresh = extract_modalities(
            TrojanDataset.generate(
                SuiteConfig(n_trojan_free=10, n_trojan_infected=6, seed=84)
            )
        )
        recalibrate_detector(detector, fresh)
        save_detector(detector, artifact)
        after, forced = registry.reload(artifact)
        assert forced and after.fingerprint != before.fingerprint


class TestPerModelTTL:
    """Regression: the probe TTL is per model, not a registry-global clock.

    A global timestamp lets one frequently-probed tenant perpetually
    refresh the window and starve every other model's staleness probes —
    a recalibrated challenger would never be noticed while the champion
    takes all the traffic.
    """

    def test_hot_tenant_probes_do_not_starve_other_models(
        self, detector, tmp_path, monkeypatch
    ):
        art_a = save_detector(detector, tmp_path / "a")
        art_b = save_detector(detector, tmp_path / "b")
        registry = ModelRegistry(reload_ttl_s=60.0)
        registry.get(art_a)
        entry_b = registry.get(art_b)
        # Expire B's window only; A's (stamped at load) stays fresh.
        entry_b.last_probe = 0.0
        calls = {}
        original = ModelRegistry._manifest_mtime

        def counting(self, path):
            calls[path.name] = calls.get(path.name, 0) + 1
            return original(self, path)

        monkeypatch.setattr(ModelRegistry, "_manifest_mtime", counting)
        for _ in range(200):
            _, reloaded = registry.maybe_reload(art_a)  # hot tenant
            assert not reloaded
        registry.maybe_reload(art_b)
        # A rode its TTL every time; B's due probe ran despite A's
        # traffic.  A global clock cannot produce this asymmetry: it
        # would either stat A 200 times or skip B entirely.
        assert calls == {"b": 1}

    def test_fresh_probe_of_one_model_does_not_reset_anothers_window(
        self, detector, tmp_path
    ):
        import time

        ttl = 0.2
        art_a = save_detector(detector, tmp_path / "a")
        art_b = save_detector(detector, tmp_path / "b")
        registry = ModelRegistry(reload_ttl_s=ttl)
        registry.get(art_a)
        before_b = registry.get(art_b)
        fresh = extract_modalities(
            TrojanDataset.generate(
                SuiteConfig(n_trojan_free=10, n_trojan_infected=6, seed=87)
            )
        )
        recalibrate_detector(detector, fresh)
        save_detector(detector, art_b)
        _bump_mtime(art_b)
        time.sleep(ttl * 1.5)  # both windows expired
        # A's probe stats, finds nothing, and restamps only A's clock.
        _, reloaded_a = registry.maybe_reload(art_a)
        assert not reloaded_a
        # With a global clock, A's restamp just now would swallow this
        # probe; the per-model clock lets B notice its change immediately.
        after_b, reloaded_b = registry.maybe_reload(art_b)
        assert reloaded_b
        assert after_b.fingerprint != before_b.fingerprint

    def test_slow_load_of_one_model_does_not_block_another(
        self, detector, tmp_path, monkeypatch
    ):
        import threading
        import time

        import repro.serve.registry as registry_module

        art_a = save_detector(detector, tmp_path / "a")
        art_b = save_detector(detector, tmp_path / "b")
        registry = ModelRegistry()
        original = registry_module.load_detector
        release = threading.Event()

        def gated(path, *args, **kwargs):
            if Path(path).name == "a":
                release.wait(10.0)  # a slow deserialize of tenant A
            return original(path, *args, **kwargs)

        monkeypatch.setattr(registry_module, "load_detector", gated)
        slow = threading.Thread(target=registry.get, args=(art_a,))
        slow.start()
        try:
            t_start = time.monotonic()
            entry_b = registry.get(art_b)  # must not queue behind A's load
            elapsed = time.monotonic() - t_start
            assert entry_b.fingerprint
            assert elapsed < 5.0, f"get(b) blocked {elapsed:.1f}s behind get(a)"
        finally:
            release.set()
            slow.join(timeout=10.0)
        assert not slow.is_alive()
        assert len(registry.entries()) == 2


class TestFeatureTierAcrossReload:
    def test_hot_reload_keeps_the_feature_store_warm(
        self, artifact, detector, tmp_path
    ):
        from repro.engine.scan import sources_from_pairs

        registry = ModelRegistry(cache_dir=tmp_path / "cache", reload_ttl_s=0.0)
        before = registry.get(artifact)
        assert registry.feature_store is not None
        assert before.engine.feature_store is registry.feature_store
        batch = sources_from_pairs(
            (b.name, b.source)
            for b in TrojanDataset.generate(
                SuiteConfig(n_trojan_free=4, n_trojan_infected=2, seed=85)
            ).benchmarks
        )
        first = before.engine.scan_sources(batch, workers=1, flush_cache=False)
        assert first.n_feature_hits == 0
        fresh = extract_modalities(
            TrojanDataset.generate(
                SuiteConfig(n_trojan_free=10, n_trojan_infected=6, seed=86)
            )
        )
        recalibrate_detector(detector, fresh)
        save_detector(detector, artifact)
        _bump_mtime(artifact)
        after, reloaded = registry.maybe_reload(artifact)
        assert reloaded
        # The swapped-in engine shares the registry's store, so the
        # post-reload rescan pays only the forward pass: every design is a
        # feature hit even though its result namespace is brand new.
        assert after.engine.feature_store is registry.feature_store
        second = after.engine.scan_sources(batch, workers=1, flush_cache=False)
        assert second.n_cache_hits == 0
        assert second.n_feature_hits == len(batch)

    def test_feature_cache_flag_disables_the_tier(self, artifact, tmp_path):
        registry = ModelRegistry(cache_dir=tmp_path / "cache", feature_cache=False)
        assert registry.feature_store is None
        assert registry.get(artifact).engine.feature_store is None
