"""Tests for the GAN, class-conditional amplification and modality imputation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.pipeline import MODALITY_GRAPH, MODALITY_TABULAR
from repro.gan import (
    AmplificationConfig,
    GANConfig,
    ImputerConfig,
    ModalityImputer,
    TabularGAN,
    amplify_features,
    amplify_multimodal,
    impute_missing_modalities,
)


def _two_cluster_data(rng: np.random.Generator, n0: int = 30, n1: int = 12):
    x0 = rng.normal(loc=[0.0, 0.0, 0.0, 0.0], scale=0.6, size=(n0, 4))
    x1 = rng.normal(loc=[3.0, -2.0, 1.5, 4.0], scale=0.6, size=(n1, 4))
    x = np.vstack([x0, x1])
    y = np.array([0] * n0 + [1] * n1)
    return x, y


class TestTabularGAN:
    def test_sample_shape_and_determinism_of_training(self) -> None:
        rng = np.random.default_rng(0)
        data = rng.normal(loc=2.0, size=(40, 5))
        gan = TabularGAN(5, GANConfig(epochs=120, seed=1))
        gan.fit(data)
        samples = gan.sample(25)
        assert samples.shape == (25, 5)
        assert np.all(np.isfinite(samples))

    def test_samples_match_training_distribution(self) -> None:
        rng = np.random.default_rng(1)
        data = rng.normal(loc=[5.0, -3.0, 2.0], scale=[0.5, 1.0, 2.0], size=(60, 3))
        gan = TabularGAN(3, GANConfig(epochs=250, seed=2))
        gan.fit(data)
        samples = gan.sample(200)
        np.testing.assert_allclose(samples.mean(axis=0), data.mean(axis=0), atol=1.0)
        np.testing.assert_allclose(samples.std(axis=0), data.std(axis=0), rtol=0.6)

    def test_history_recorded(self) -> None:
        rng = np.random.default_rng(2)
        gan = TabularGAN(2, GANConfig(epochs=50, seed=0))
        history = gan.fit(rng.normal(size=(20, 2)))
        assert len(history.discriminator_loss) == 50
        assert len(history.generator_loss) == 50
        assert gan.history is history

    def test_sample_zero_and_negative(self) -> None:
        gan = TabularGAN(3, GANConfig(epochs=10, seed=0))
        gan.fit(np.random.default_rng(0).normal(size=(10, 3)))
        assert gan.sample(0).shape == (0, 3)

    def test_rejects_bad_inputs(self) -> None:
        with pytest.raises(ValueError):
            TabularGAN(0)
        gan = TabularGAN(3, GANConfig(epochs=5))
        with pytest.raises(ValueError):
            gan.fit(np.ones((5, 2)))
        with pytest.raises(ValueError):
            gan.fit(np.ones((1, 3)))

    def test_invalid_config(self) -> None:
        with pytest.raises(ValueError):
            GANConfig(latent_dim=0).validate()
        with pytest.raises(ValueError):
            GANConfig(epochs=0).validate()


class TestAmplification:
    def test_reaches_target_and_balances(self) -> None:
        rng = np.random.default_rng(3)
        x, y = _two_cluster_data(rng)
        config = AmplificationConfig(target_total=100, gan=GANConfig(epochs=100, seed=1))
        x_aug, y_aug, synthetic = amplify_features(x, y, config)
        assert len(x_aug) == 100
        counts = np.bincount(y_aug)
        assert abs(counts[0] - counts[1]) <= 2
        assert synthetic.sum() == 100 - len(x)

    def test_original_samples_preserved_first(self) -> None:
        rng = np.random.default_rng(4)
        x, y = _two_cluster_data(rng)
        config = AmplificationConfig(target_total=80, gan=GANConfig(epochs=60, seed=1))
        x_aug, y_aug, synthetic = amplify_features(x, y, config)
        np.testing.assert_array_equal(x_aug[: len(x)], x)
        np.testing.assert_array_equal(y_aug[: len(y)], y)
        assert not synthetic[: len(x)].any()

    def test_synthetic_points_near_their_class(self) -> None:
        rng = np.random.default_rng(5)
        x, y = _two_cluster_data(rng)
        config = AmplificationConfig(target_total=120, gan=GANConfig(epochs=200, seed=2))
        x_aug, y_aug, synthetic = amplify_features(x, y, config)
        for cls in (0, 1):
            real_centre = x[y == cls].mean(axis=0)
            other_centre = x[y == 1 - cls].mean(axis=0)
            synth_points = x_aug[synthetic & (y_aug == cls)]
            to_own = np.linalg.norm(synth_points - real_centre, axis=1).mean()
            to_other = np.linalg.norm(synth_points - other_centre, axis=1).mean()
            assert to_own < to_other

    def test_no_amplification_needed(self) -> None:
        rng = np.random.default_rng(6)
        x, y = _two_cluster_data(rng, n0=60, n1=60)
        config = AmplificationConfig(target_total=100, gan=GANConfig(epochs=10))
        x_aug, y_aug, synthetic = amplify_features(x, y, config)
        assert len(x_aug) == len(x)
        assert synthetic.sum() == 0

    def test_multimodal_amplification(self, small_features) -> None:
        config = AmplificationConfig(target_total=60, gan=GANConfig(epochs=80, seed=0))
        amplified = amplify_multimodal(small_features, config)
        assert len(amplified) == 60
        assert amplified.tabular.shape[1] == small_features.tabular.shape[1]
        assert amplified.graph.shape[1] == small_features.graph.shape[1]
        assert len(amplified.names) == 60
        counts = np.bincount(amplified.labels)
        assert abs(counts[0] - counts[1]) <= 2
        # The original rows come first and are unchanged.
        np.testing.assert_array_equal(
            amplified.tabular[: len(small_features)], small_features.tabular
        )

    def test_invalid_target(self) -> None:
        with pytest.raises(ValueError):
            AmplificationConfig(target_total=0).validate()


class TestImputation:
    def test_imputer_learns_linear_map(self) -> None:
        rng = np.random.default_rng(7)
        observed = rng.normal(size=(80, 4))
        mapping = rng.normal(size=(4, 6))
        target = observed @ mapping + 0.05 * rng.normal(size=(80, 6))
        imputer = ModalityImputer(4, 6, ImputerConfig(epochs=300, seed=1))
        imputer.fit(observed, target)
        predicted = imputer.impute(observed)
        relative_error = np.abs(predicted - target).mean() / np.abs(target).std()
        assert relative_error < 0.5

    def test_impute_before_fit_raises(self) -> None:
        imputer = ModalityImputer(3, 3)
        with pytest.raises(RuntimeError):
            imputer.impute(np.ones((2, 3)))

    def test_fit_validates_shapes(self) -> None:
        imputer = ModalityImputer(3, 2, ImputerConfig(epochs=5))
        with pytest.raises(ValueError):
            imputer.fit(np.ones((5, 3)), np.ones((4, 2)))
        with pytest.raises(ValueError):
            imputer.fit(np.ones((5, 2)), np.ones((5, 2)))

    def test_impute_missing_modalities_fills_all_nans(self, small_features) -> None:
        damaged = small_features.with_missing_modality(
            MODALITY_TABULAR, 0.4, rng=np.random.default_rng(0)
        )
        config = ImputerConfig(epochs=60, seed=0)
        repaired = impute_missing_modalities(damaged, config)
        assert not repaired.missing_mask(MODALITY_TABULAR).any()
        assert not repaired.missing_mask(MODALITY_GRAPH).any()
        # Rows that were present are untouched.
        present = ~damaged.missing_mask(MODALITY_TABULAR)
        np.testing.assert_array_equal(
            repaired.tabular[present], small_features.tabular[present]
        )

    def test_impute_missing_graph_modality(self, small_features) -> None:
        damaged = small_features.with_missing_modality(
            MODALITY_GRAPH, 0.3, rng=np.random.default_rng(1)
        )
        repaired = impute_missing_modalities(damaged, ImputerConfig(epochs=60, seed=0))
        assert not repaired.missing_mask(MODALITY_GRAPH).any()

    def test_imputed_values_plausible(self, small_features) -> None:
        """Imputed tabular rows stay within a broad envelope of the real data."""
        damaged = small_features.with_missing_modality(
            MODALITY_TABULAR, 0.4, rng=np.random.default_rng(2)
        )
        repaired = impute_missing_modalities(damaged, ImputerConfig(epochs=150, seed=0))
        missing = damaged.missing_mask(MODALITY_TABULAR)
        real = small_features.tabular
        span = real.max(axis=0) - real.min(axis=0) + 1.0
        lower = real.min(axis=0) - 3 * span
        upper = real.max(axis=0) + 3 * span
        imputed = repaired.tabular[missing]
        assert np.all(imputed >= lower) and np.all(imputed <= upper)
