"""Unit tests for the span/tracer primitives (``repro.obs.tracing``)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.tracing import Span, Tracer, trace_span


def test_trace_span_without_tracer_still_times():
    """tracer=None: the block is measured but nothing is recorded."""
    with trace_span(None, "bench") as span:
        sum(range(1000))
    assert span.duration_s >= 0.0
    assert span.name == "bench"
    assert span.span_id == ""  # never assigned — no tracer


def test_nested_spans_parent_implicitly():
    """The thread-local stack wires parent ids without explicit plumbing."""
    tracer = Tracer(trace_id="t")
    with trace_span(tracer, "outer") as outer:
        with trace_span(tracer, "inner") as inner:
            pass
        with trace_span(tracer, "sibling") as sibling:
            pass
    assert outer.parent_id is None
    assert inner.parent_id == outer.span_id
    assert sibling.parent_id == outer.span_id
    assert {s["name"] for s in tracer.export()} == {"outer", "inner", "sibling"}


def test_explicit_parent_id_wins():
    """An explicit parent_id overrides the thread-local stack."""
    tracer = Tracer(trace_id="t")
    with trace_span(tracer, "root") as root:
        with trace_span(tracer, "detached", parent_id="elsewhere") as detached:
            pass
    assert root.parent_id is None
    assert detached.parent_id == "elsewhere"


def test_span_ids_carry_the_prefix():
    """id_prefix namespaces ids so merged worker spans stay unique."""
    tracer = Tracer(trace_id="t", id_prefix="shard3-")
    with trace_span(tracer, "a"):
        pass
    with trace_span(tracer, "b"):
        pass
    ids = [s["span_id"] for s in tracer.export()]
    assert ids == ["shard3-0001", "shard3-0002"]


def test_exception_is_annotated_and_propagates():
    """A raising block records the error class and re-raises."""
    tracer = Tracer(trace_id="t")
    with pytest.raises(RuntimeError):
        with trace_span(tracer, "boom"):
            raise RuntimeError("x")
    (span,) = tracer.export()
    assert span["attrs"]["error"] == "RuntimeError"
    assert span["duration_s"] >= 0.0


def test_record_for_cross_thread_completion():
    """record() archives a pre-measured span with an explicit parent."""
    tracer = Tracer(trace_id="t")
    span = tracer.record("serve/scan", 0.125, parent_id="p1", model="champ")
    assert span.duration_s == 0.125
    assert span.parent_id == "p1"
    (exported,) = tracer.export()
    assert exported["attrs"] == {"model": "champ"}


def test_threads_have_independent_stacks():
    """Spans opened in another thread do not parent onto this thread's."""
    tracer = Tracer(trace_id="t")
    seen = {}

    def worker():
        with trace_span(tracer, "thread-root") as span:
            seen["parent"] = span.parent_id

    with trace_span(tracer, "main-root"):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert seen["parent"] is None


def test_adopt_rehomes_trace_id():
    """Worker spans merge onto the parent tracer's trace_id."""
    worker = Tracer(trace_id="worker", id_prefix="s0-")
    with trace_span(worker, "shard"):
        pass
    parent = Tracer(trace_id="scan")
    parent.adopt(worker.export())
    (span,) = parent.export()
    assert span["trace_id"] == "scan"
    assert span["span_id"] == "s0-0001"


def test_write_jsonl_round_trip(tmp_path):
    """write_jsonl() emits one parseable dict per span."""
    tracer = Tracer(trace_id="t")
    with trace_span(tracer, "a"):
        with trace_span(tracer, "b"):
            pass
    path = tmp_path / "trace.jsonl"
    assert tracer.write_jsonl(path) == 2
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert {line["name"] for line in lines} == {"a", "b"}
    assert all(
        set(line)
        == {
            "trace_id",
            "span_id",
            "parent_id",
            "name",
            "start_unix_s",
            "duration_s",
            "attrs",
        }
        for line in lines
    )


def test_flush_appends_and_drains(tmp_path):
    """flush() appends drained spans to jsonl_path; repeat flush is a no-op."""
    path = tmp_path / "serve.jsonl"
    tracer = Tracer(trace_id="serve", jsonl_path=path)
    with trace_span(tracer, "batch-1"):
        pass
    assert tracer.flush() == 1
    with trace_span(tracer, "batch-2"):
        pass
    assert tracer.flush() == 1
    assert tracer.flush() == 0  # drained — nothing left
    names = [json.loads(line)["name"] for line in path.read_text().splitlines()]
    assert names == ["batch-1", "batch-2"]
    assert tracer.export() == []


def test_flush_without_path_is_noop():
    """A tracer with no jsonl_path keeps its spans on flush()."""
    tracer = Tracer(trace_id="t")
    with trace_span(tracer, "kept"):
        pass
    assert tracer.flush() == 0
    assert len(tracer.export()) == 1


def test_span_as_dict_shape():
    """The JSONL schema is exactly the documented seven keys."""
    span = Span("x", trace_id="t", span_id="0001", attrs={"k": 1})
    payload = span.as_dict()
    assert payload == {
        "trace_id": "t",
        "span_id": "0001",
        "parent_id": None,
        "name": "x",
        "start_unix_s": 0.0,
        "duration_s": 0.0,
        "attrs": {"k": 1},
    }
