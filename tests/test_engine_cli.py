"""In-process smoke tests for the ``python -m repro`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.engine.cli import main


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """A tiny detector trained through the real ``train`` subcommand."""
    path = tmp_path_factory.mktemp("cli") / "artifact"
    code = main(
        [
            "train",
            "--artifact", str(path),
            "--strategy", "late",
            "--epochs", "3",
            "--trojan-free", "10",
            "--trojan-infected", "5",
        ]
    )
    assert code == 0
    return path


class TestCliWorkflow:
    def test_train_wrote_artifact(self, artifact):
        assert (artifact / "manifest.json").is_file()
        assert (artifact / "arrays.npz").is_file()

    def test_scan_generate_and_report(self, artifact, tmp_path, capsys):
        results = tmp_path / "results.json"
        code = main(
            [
                "scan",
                "--artifact", str(artifact),
                "--generate", "5",
                "--cache-dir", str(tmp_path / "cache"),
                "--output", str(results),
            ]
        )
        assert code == 0
        data = json.loads(results.read_text())
        assert data["n_designs"] == 5
        assert len(data["records"]) == 5

        code = main(["report", "--input", str(results)])
        assert code == 0
        output = capsys.readouterr().out
        assert "designs scanned : 5" in output

    def test_scan_files_uses_cache(self, artifact, tmp_path, capsys):
        from repro.engine.bench import build_scan_batch

        for source in build_scan_batch(3, seed=77):
            (tmp_path / f"{source.name}.v").write_text(source.source)
        args = [
            "scan",
            str(tmp_path),
            "--artifact", str(artifact),
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "3 cache hits" in capsys.readouterr().out

    def test_scan_without_inputs_errors(self, artifact, tmp_path):
        code = main(
            ["scan", "--artifact", str(artifact), "--cache-dir", str(tmp_path / "c")]
        )
        assert code == 2

    def test_calibrate_resaves_artifact(self, artifact, capsys):
        code = main(
            [
                "calibrate",
                "--artifact", str(artifact),
                "--trojan-free", "8",
                "--trojan-infected", "4",
                "--suite-seed", "9",
            ]
        )
        assert code == 0
        assert "recalibrated" in capsys.readouterr().out

    def test_noodle_training_records_report(self, tmp_path):
        path = tmp_path / "noodle"
        code = main(
            [
                "train",
                "--artifact", str(path),
                "--strategy", "noodle",
                "--epochs", "3",
                "--trojan-free", "10",
                "--trojan-infected", "5",
            ]
        )
        assert code == 0
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["noodle_report"]["winner"] in ("early_fusion", "late_fusion")

    def test_calibrate_preserves_noodle_report(self, tmp_path):
        path = tmp_path / "noodle2"
        assert main(
            [
                "train",
                "--artifact", str(path),
                "--strategy", "noodle",
                "--epochs", "3",
                "--trojan-free", "10",
                "--trojan-infected", "5",
            ]
        ) == 0
        before = json.loads((path / "manifest.json").read_text())["noodle_report"]
        assert main(
            [
                "calibrate",
                "--artifact", str(path),
                "--trojan-free", "8",
                "--trojan-infected", "4",
                "--suite-seed", "13",
            ]
        ) == 0
        after = json.loads((path / "manifest.json").read_text())["noodle_report"]
        assert after == before


class TestExitCodes:
    """Failures must exit non-zero with an ``error:`` line, not a traceback."""

    def test_scan_empty_directory_fails(self, artifact, tmp_path, capsys):
        empty = tmp_path / "empty_inbox"
        empty.mkdir()
        code = main(["scan", str(empty), "--artifact", str(artifact), "--no-cache"])
        assert code == 1
        assert "no scannable sources" in capsys.readouterr().err

    def test_scan_all_unparseable_sources_fails(self, artifact, tmp_path, capsys):
        inbox = tmp_path / "inbox"
        inbox.mkdir()
        for i in range(3):
            (inbox / f"bad_{i}.v").write_text("module broken (x; endmodule")
        code = main(["scan", str(inbox), "--artifact", str(artifact), "--no-cache"])
        assert code == 1
        err = capsys.readouterr().err
        assert "all 3 designs failed" in err

    def test_scan_missing_artifact_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["scan", "--artifact", str(tmp_path / "nope"), "--generate", "2", "--no-cache"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_report_missing_input_fails_cleanly(self, capsys):
        code = main(["report", "--input", "/definitely/not/here.json"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_report_corrupt_input_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = main(["report", "--input", str(bad)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_resume_without_cache_is_usage_error(self, artifact, capsys):
        code = main(
            ["scan", "--artifact", str(artifact), "--generate", "2", "--resume", "--no-cache"]
        )
        assert code == 2
        assert "--resume" in capsys.readouterr().err


class TestParallelScanCli:
    def test_jobs_2_matches_single_process_scan(self, artifact, tmp_path, capsys):
        serial_out = tmp_path / "serial.json"
        parallel_out = tmp_path / "parallel.json"
        common = ["scan", "--artifact", str(artifact), "--generate", "6", "--no-cache"]
        assert main(common + ["--output", str(serial_out)]) == 0
        assert main(
            common + ["--jobs", "2", "--shard-size", "2", "--output", str(parallel_out)]
        ) == 0
        serial = json.loads(serial_out.read_text())
        parallel = json.loads(parallel_out.read_text())
        assert parallel["records"] == serial["records"]

    def test_resume_reuses_cached_shards(self, artifact, tmp_path, capsys):
        args = [
            "scan",
            "--artifact", str(artifact),
            "--generate", "5",
            "--cache-dir", str(tmp_path / "cache"),
            "--jobs", "2",
            "--shard-size", "2",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        assert "5 cache hits" in capsys.readouterr().out


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out


class TestServeCli:
    def test_bad_batch_window_is_usage_error(self, artifact, capsys):
        code = main(
            ["serve", "--artifact", str(artifact), "--batch-window-ms", "-1"]
        )
        assert code == 2
        assert "--batch-window-ms" in capsys.readouterr().err

    def test_bad_max_batch_is_usage_error(self, artifact, capsys):
        code = main(["serve", "--artifact", str(artifact), "--max-batch", "0"])
        assert code == 2
        assert "--max-batch" in capsys.readouterr().err

    def test_missing_artifact_is_runtime_failure(self, tmp_path, capsys):
        code = main(
            ["serve", "--artifact", str(tmp_path / "missing"), "--no-cache"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_serve_runs_scans_and_drains_on_sigterm(self, artifact, tmp_path):
        # Signal-driven drain needs a real process: signal handlers only
        # install in a main thread, so the CLI is exercised end-to-end
        # via subprocess (the in-process serving paths are covered by
        # tests/test_serve_http.py).
        import os
        import signal
        import socket as socket_module
        import subprocess
        import sys
        import time
        from pathlib import Path

        from repro.serve.client import ScanServiceClient

        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        src_dir = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--artifact", str(artifact),
                "--port", str(port),
                "--cache-dir", str(tmp_path / "cache"),
                "--batch-window-ms", "5",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            client = ScanServiceClient(port=port, timeout=30.0)
            client.wait_until_ready(timeout=60.0)
            response = client.scan_texts([("m", "module m (a); input a; endmodule")])
            assert response["n_designs"] == 1
            client.close()
            server.send_signal(signal.SIGTERM)
            deadline = time.monotonic() + 60.0
            while server.poll() is None and time.monotonic() < deadline:
                time.sleep(0.1)
            assert server.poll() is not None, "serve did not exit after SIGTERM"
            output = server.stdout.read() if server.stdout else ""
            assert server.returncode == 0, output
            assert "shutdown clean" in output
            assert "served 1 scan requests" in output
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=10)


class TestFeatureCacheCli:
    def test_recalibrated_rescan_hits_the_feature_tier(self, artifact, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["scan", "--artifact", str(artifact), "--generate", "4", "--cache-dir", cache]
        assert main(args) == 0
        capsys.readouterr()
        # Recalibration rewrites the artifact under a new fingerprint: the
        # result tier goes cold, the feature tier must carry the rescan.
        assert main(
            [
                "calibrate",
                "--artifact", str(artifact),
                "--trojan-free", "8",
                "--trojan-infected", "4",
            ]
        ) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "4 feature hits" in capsys.readouterr().out

    def test_no_feature_cache_disables_the_tier(self, artifact, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = [
            "scan",
            "--artifact", str(artifact),
            "--generate", "3",
            "--cache-dir", cache,
            "--no-feature-cache",
        ]
        assert main(args) == 0
        assert not (tmp_path / "cache" / "features").exists()

    def test_feature_cache_survives_no_cache(self, artifact, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = [
            "scan",
            "--artifact", str(artifact),
            "--generate", "3",
            "--cache-dir", cache,
            "--no-cache",
            "--feature-cache",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert (tmp_path / "cache" / "features").is_dir()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 cache hits" in out and "3 feature hits" in out

    def test_parallel_scan_shares_the_feature_store(self, artifact, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        base = [
            "scan",
            "--artifact", str(artifact),
            "--generate", "6",
            "--jobs", "2",
            "--shard-size", "2",
            "--cache-dir", cache,
        ]
        assert main(base) == 0
        capsys.readouterr()
        assert main(
            [
                "calibrate",
                "--artifact", str(artifact),
                "--trojan-free", "9",
                "--trojan-infected", "4",
            ]
        ) == 0
        capsys.readouterr()
        assert main(base) == 0
        assert "6 feature hits" in capsys.readouterr().out


class TestScanTrace:
    """``scan --trace FILE``: the JSONL spans reconstruct the pipeline tree."""

    @staticmethod
    def _load_spans(path):
        return [json.loads(line) for line in path.read_text().splitlines()]

    @staticmethod
    def _assert_is_one_tree(spans):
        """Every span shares the trace id and parents onto a known span."""
        assert all(span["trace_id"] == "scan" for span in spans)
        ids = {span["span_id"] for span in spans}
        assert len(ids) == len(spans)  # unique, even across worker processes
        roots = [span for span in spans if span["parent_id"] is None]
        assert [root["name"] for root in roots] == ["scan"]
        for span in spans:
            if span["parent_id"] is not None:
                assert span["parent_id"] in ids
        return roots[0]

    def test_trace_reconstructs_single_process_pipeline(
        self, artifact, tmp_path, capsys
    ):
        trace = tmp_path / "trace.jsonl"
        code = main(
            [
                "scan",
                "--artifact", str(artifact),
                "--generate", "3",
                "--cache-dir", str(tmp_path / "cache"),
                "--trace", str(trace),
            ]
        )
        assert code == 0
        assert f"wrote trace: {trace}" in capsys.readouterr().out
        spans = self._load_spans(trace)
        root = self._assert_is_one_tree(spans)
        assert root["attrs"]["designs"] == 3
        names = {span["name"] for span in spans}
        for stage in (
            "scan/collect",
            "scan/cache_lookup",
            "scan/extract",
            "scan/infer",
            "scan/fuse",
            "scan/cache_flush",
        ):
            assert stage in names
        # Stage spans hang off the "scan" root (directly or transitively).
        by_id = {span["span_id"]: span for span in spans}
        for span in spans:
            walk = span
            while walk["parent_id"] is not None:
                walk = by_id[walk["parent_id"]]
            assert walk["name"] == "scan"

    def test_trace_merges_scheduler_worker_spans(self, artifact, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code = main(
            [
                "scan",
                "--artifact", str(artifact),
                "--generate", "4",
                "--cache-dir", str(tmp_path / "cache"),
                "--jobs", "2",
                "--shard-size", "2",
                "--trace", str(trace),
            ]
        )
        assert code == 0
        spans = self._load_spans(trace)
        self._assert_is_one_tree(spans)
        names = [span["name"] for span in spans]
        assert "scheduler/scan" in names
        assert names.count("scheduler/shard") == 2  # one per shard
        # The worker-side stage spans were adopted into the merged trace.
        assert "scan/extract" in names


class TestProfileAndCacheInfo:
    def test_scan_profile_prints_stage_breakdown(self, artifact, tmp_path, capsys):
        code = main(
            [
                "scan",
                "--artifact", str(artifact),
                "--generate", "3",
                "--cache-dir", str(tmp_path / "cache"),
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stage timings (numpy backend):" in out
        for stage in ("collect", "extract", "infer", "p_value", "cache_flush"):
            assert stage in out

    def test_profile_lands_in_results_json(self, artifact, tmp_path):
        results = tmp_path / "results.json"
        code = main(
            [
                "scan",
                "--artifact", str(artifact),
                "--generate", "3",
                "--cache-dir", str(tmp_path / "cache"),
                "--output", str(results),
            ]
        )
        assert code == 0
        profile = json.loads(results.read_text())["profile"]
        for stage in ("collect", "cache_lookup", "extract", "infer", "p_value", "cache_flush"):
            assert stage in profile
            assert profile[stage] >= 0.0

    def test_cache_info_reports_both_tiers(self, artifact, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(
            ["scan", "--artifact", str(artifact), "--generate", "4", "--cache-dir", cache]
        ) == 0
        capsys.readouterr()
        assert main(["cache-info", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "result tier" in out and "feature tier" in out
        assert "4 records" in out and "4 rows" in out

    def test_cache_info_json_mode(self, artifact, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(
            ["scan", "--artifact", str(artifact), "--generate", "2", "--cache-dir", cache]
        ) == 0
        capsys.readouterr()
        assert main(["cache-info", "--cache-dir", cache, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["result_tier"]["n_records"] == 2
        assert data["feature_tier"]["n_rows"] == 2

    def test_cache_info_empty_dir(self, tmp_path, capsys):
        assert main(["cache-info", "--cache-dir", str(tmp_path / "missing")]) == 0
        out = capsys.readouterr().out
        assert "0 records" in out and "0 rows" in out


class TestBackendCli:
    """--backend selection: validation, verdict parity, profile labelling."""

    def test_unknown_backend_scan_exits_2(self, artifact, capsys):
        code = main(
            [
                "scan",
                "--artifact", str(artifact),
                "--generate", "2",
                "--no-cache",
                "--backend", "nope",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown compute backend" in err and "nope" in err

    def test_unknown_backend_serve_exits_2(self, artifact, capsys):
        code = main(
            ["serve", "--artifact", str(artifact), "--port", "0", "--backend", "nope"]
        )
        assert code == 2
        assert "unknown compute backend" in capsys.readouterr().err

    def test_fused_backend_matches_numpy_verdicts(self, artifact, tmp_path):
        outputs = {}
        for backend in ("numpy", "fused_f32"):
            results = tmp_path / f"{backend}.json"
            code = main(
                [
                    "scan",
                    "--artifact", str(artifact),
                    "--generate", "6",
                    "--no-cache",
                    "--backend", backend,
                    "--output", str(results),
                ]
            )
            assert code == 0
            outputs[backend] = json.loads(results.read_text())
        golden, fused = outputs["numpy"], outputs["fused_f32"]
        assert fused["profile"]["backend"] == "fused_f32"
        for a, b in zip(golden["records"], fused["records"]):
            assert a["name"] == b["name"]
            assert a["decision"]["predicted_label"] == b["decision"]["predicted_label"]
            assert abs(
                a["decision"]["probability_infected"]
                - b["decision"]["probability_infected"]
            ) < 1e-4

    def test_int8_backend_caches_sidecar_and_scans(self, artifact, tmp_path):
        sidecar = artifact / "quantized_int8.npz"
        if sidecar.exists():
            sidecar.unlink()
        results = tmp_path / "int8.json"
        code = main(
            [
                "scan",
                "--artifact", str(artifact),
                "--generate", "4",
                "--no-cache",
                "--backend", "int8",
                "--output", str(results),
            ]
        )
        assert code == 0
        assert sidecar.is_file()  # per-channel scales cached beside the model
        data = json.loads(results.read_text())
        assert data["profile"]["backend"] == "int8"
        assert all(record["decision"] is not None for record in data["records"])

    def test_profile_names_active_backend_and_infer_stages(
        self, artifact, tmp_path, capsys
    ):
        code = main(
            [
                "scan",
                "--artifact", str(artifact),
                "--generate", "3",
                "--cache-dir", str(tmp_path / "cache"),
                "--backend", "fused_f32",
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stage timings (fused_f32 backend):" in out
        assert "    gemm" in out and "    activation" in out


class TestCacheGcCli:
    def test_gc_folds_segments_and_removes_retired_namespaces(
        self, artifact, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        assert main(
            ["scan", "--artifact", str(artifact), "--generate", "3", "--cache-dir", cache]
        ) == 0
        capsys.readouterr()
        retired = tmp_path / "cache" / "features" / "0123456789abcdef"
        retired.mkdir(parents=True)
        (retired / "stale.npz").write_bytes(b"x" * 128)
        assert main(["cache-gc", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "folded into base shards" in out
        assert "0123456789abcdef" in out
        assert not retired.exists()

    def test_gc_json_mode(self, artifact, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(
            ["scan", "--artifact", str(artifact), "--generate", "2", "--cache-dir", cache]
        ) == 0
        capsys.readouterr()
        assert main(["cache-gc", "--cache-dir", cache, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["retired_namespaces_removed"] == []
        assert data["n_segments_folded"] >= 1  # the scan's flush wrote segments
        assert data["bytes_reclaimed"] == 0

    def test_gc_on_missing_cache_dir_is_clean(self, tmp_path, capsys):
        assert main(["cache-gc", "--cache-dir", str(tmp_path / "absent")]) == 0
        out = capsys.readouterr().out
        assert "no retired schema namespaces" in out


class TestServeCliParsing:
    """serve's fleet/artifact flag resolution and misconfiguration exits."""

    def _namespace(self, **overrides):
        import argparse

        defaults = dict(fleet=None, artifact=None, default_model=None)
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def test_bare_directory_registers_as_default(self):
        from repro.engine.cli import _parse_serve_artifacts

        artifacts, default = _parse_serve_artifacts(
            self._namespace(artifact=["/models/a"])
        )
        assert artifacts == {"default": "/models/a"}
        assert default is None  # falls back to the first entry downstream

    def test_named_artifacts_and_default_model(self):
        from repro.engine.cli import _parse_serve_artifacts

        artifacts, default = _parse_serve_artifacts(
            self._namespace(
                artifact=["champ=/models/a", "chal=/models/b"],
                default_model="chal",
            )
        )
        assert artifacts == {"champ": "/models/a", "chal": "/models/b"}
        assert default == "chal"

    def test_fleet_manifest_seeds_and_artifact_overrides(self, artifact, tmp_path):
        from repro.engine.artifacts import save_fleet_manifest
        from repro.engine.cli import _parse_serve_artifacts

        manifest = save_fleet_manifest(
            tmp_path / "fleet.json",
            {"a": artifact, "b": artifact},
            default="a",
        )
        artifacts, default = _parse_serve_artifacts(
            self._namespace(fleet=str(manifest), artifact=["b=/override/b"])
        )
        assert artifacts["b"] == "/override/b"  # --artifact wins over fleet
        assert artifacts["a"] == str(artifact.resolve())
        assert default == "a"  # from the manifest

    def test_serve_without_artifacts_exits_2(self, capsys):
        assert main(["serve", "--port", "0"]) == 2
        assert "artifact" in capsys.readouterr().err

    def test_serve_unknown_default_model_exits_2(self, artifact, capsys):
        code = main(
            [
                "serve",
                "--artifact", f"a={artifact}",
                "--default-model", "nope",
                "--port", "0",
            ]
        )
        assert code == 2
        assert "nope" in capsys.readouterr().err

    def test_serve_unknown_shadow_exits_2(self, artifact, capsys):
        code = main(
            [
                "serve",
                "--artifact", f"a={artifact}",
                "--shadow", "ghost",
                "--port", "0",
            ]
        )
        assert code == 2
        assert "ghost" in capsys.readouterr().err

    def test_serve_shadow_equal_to_default_exits_2(self, artifact, capsys):
        code = main(
            [
                "serve",
                "--artifact", f"a={artifact}",
                "--shadow", "a",
                "--port", "0",
            ]
        )
        assert code == 2
