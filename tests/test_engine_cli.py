"""In-process smoke tests for the ``python -m repro`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.engine.cli import main


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """A tiny detector trained through the real ``train`` subcommand."""
    path = tmp_path_factory.mktemp("cli") / "artifact"
    code = main(
        [
            "train",
            "--artifact", str(path),
            "--strategy", "late",
            "--epochs", "3",
            "--trojan-free", "10",
            "--trojan-infected", "5",
        ]
    )
    assert code == 0
    return path


class TestCliWorkflow:
    def test_train_wrote_artifact(self, artifact):
        assert (artifact / "manifest.json").is_file()
        assert (artifact / "arrays.npz").is_file()

    def test_scan_generate_and_report(self, artifact, tmp_path, capsys):
        results = tmp_path / "results.json"
        code = main(
            [
                "scan",
                "--artifact", str(artifact),
                "--generate", "5",
                "--cache-dir", str(tmp_path / "cache"),
                "--output", str(results),
            ]
        )
        assert code == 0
        data = json.loads(results.read_text())
        assert data["n_designs"] == 5
        assert len(data["records"]) == 5

        code = main(["report", "--input", str(results)])
        assert code == 0
        output = capsys.readouterr().out
        assert "designs scanned : 5" in output

    def test_scan_files_uses_cache(self, artifact, tmp_path, capsys):
        from repro.engine.bench import build_scan_batch

        for source in build_scan_batch(3, seed=77):
            (tmp_path / f"{source.name}.v").write_text(source.source)
        args = [
            "scan",
            str(tmp_path),
            "--artifact", str(artifact),
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "3 cache hits" in capsys.readouterr().out

    def test_scan_without_inputs_errors(self, artifact, tmp_path):
        code = main(
            ["scan", "--artifact", str(artifact), "--cache-dir", str(tmp_path / "c")]
        )
        assert code == 2

    def test_calibrate_resaves_artifact(self, artifact, capsys):
        code = main(
            [
                "calibrate",
                "--artifact", str(artifact),
                "--trojan-free", "8",
                "--trojan-infected", "4",
                "--suite-seed", "9",
            ]
        )
        assert code == 0
        assert "recalibrated" in capsys.readouterr().out

    def test_noodle_training_records_report(self, tmp_path):
        path = tmp_path / "noodle"
        code = main(
            [
                "train",
                "--artifact", str(path),
                "--strategy", "noodle",
                "--epochs", "3",
                "--trojan-free", "10",
                "--trojan-infected", "5",
            ]
        )
        assert code == 0
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["noodle_report"]["winner"] in ("early_fusion", "late_fusion")

    def test_calibrate_preserves_noodle_report(self, tmp_path):
        path = tmp_path / "noodle2"
        assert main(
            [
                "train",
                "--artifact", str(path),
                "--strategy", "noodle",
                "--epochs", "3",
                "--trojan-free", "10",
                "--trojan-infected", "5",
            ]
        ) == 0
        before = json.loads((path / "manifest.json").read_text())["noodle_report"]
        assert main(
            [
                "calibrate",
                "--artifact", str(path),
                "--trojan-free", "8",
                "--trojan-infected", "4",
                "--suite-seed", "13",
            ]
        ) == 0
        after = json.loads((path / "manifest.json").read_text())["noodle_report"]
        assert after == before
