"""Tests for the repro-lint static-analysis gate (``tools.lint``).

Each rule is exercised through the real default configuration: the bad
fixture is copied into a temp tree at a path the rule's scoping matches
(e.g. ``.../serve/eventloop.py`` for the reactor rule), so these tests
cover the path-matching plumbing as well as the detection logic.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.lint.cli import (  # noqa: E402
    EXIT_FINDINGS,
    EXIT_OK,
    EXIT_USAGE,
    JSON_SCHEMA_VERSION,
    lint_paths,
    main,
)
from tools.lint.core import LintError  # noqa: E402
from tools.lint.registry import all_rules  # noqa: E402
from tools.lint.waivers import Waiver, load_waivers  # noqa: E402

#: fixture stem -> (placement path inside the temp tree, rule id, expected
#: finding count for the bad twin).  Placement paths are chosen so the
#: default LintConfig scoping applies to the copied file.
CASES = {
    "r1_reactor": ("src/repro/serve/eventloop.py", "R1", 1),
    "r2_locks": ("src/repro/serve/counter.py", "R2", 1),
    "r3_atomic": ("src/repro/engine/cache.py", "R3", 1),
    "r4_determinism": ("src/repro/engine/scheduler.py", "R4", 3),
    "r5_exceptions": ("src/repro/serve/handlers.py", "R5", 3),
    "r6_forksafety": ("src/repro/engine/workers.py", "R6", 2),
    "r7_metricnames": ("src/repro/serve/custom_metrics.py", "R7", 3),
    "r8_failpoints": ("src/repro/engine/guards.py", "R8", 3),
}


def _place(tmp_path: Path, stem: str, flavor: str) -> Path:
    """Copy one fixture into a temp tree at its rule-matching path."""
    rel, _, _ = CASES[stem]
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    shutil.copyfile(FIXTURES / f"{stem}_{flavor}.py", target)
    return tmp_path / "src" / "repro"


@pytest.mark.parametrize("stem", sorted(CASES))
def test_bad_fixture_produces_expected_findings(tmp_path, stem):
    """Each deliberately-broken fixture yields exactly its rule's findings."""
    tree = _place(tmp_path, stem, "bad")
    _, rule_id, expected = CASES[stem]
    result = lint_paths([str(tree)])
    assert len(result.findings) == expected, [f.render() for f in result.findings]
    assert all(f.rule == rule_id for f in result.findings), [
        f.render() for f in result.findings
    ]
    assert all(not f.waived for f in result.findings)


@pytest.mark.parametrize("stem", sorted(CASES))
def test_good_fixture_is_clean(tmp_path, stem):
    """Each known-good twin produces zero findings under the same scoping."""
    tree = _place(tmp_path, stem, "good")
    result = lint_paths([str(tree)])
    assert result.findings == [], [f.render() for f in result.findings]


def test_findings_carry_location_and_symbol(tmp_path):
    """Findings anchor to the offending function, not just the file."""
    tree = _place(tmp_path, "r1_reactor", "bad")
    result = lint_paths([str(tree)])
    (finding,) = result.findings
    assert finding.symbol == "EventLoopFrontend._pump"
    assert finding.file.endswith("serve/eventloop.py")
    assert finding.line > 0


# -- waiver round trip -------------------------------------------------------


def _write_waiver(tmp_path: Path, symbol: str) -> Path:
    """Write a one-entry waiver file for the R2 fixture."""
    waiver_file = tmp_path / "waivers.toml"
    waiver_file.write_text(
        "[[waiver]]\n"
        'rule = "R2"\n'
        'file = "serve/counter.py"\n'
        f'symbol = "{symbol}"\n'
        'reason = "fixture round trip"\n'
    )
    return waiver_file


def test_waiver_round_trip(tmp_path):
    """A matching waiver suppresses the finding and flips the exit to 0."""
    tree = _place(tmp_path, "r2_locks", "bad")
    waiver_file = _write_waiver(tmp_path, "Counter.reset")
    assert main([str(tree), "--waivers", str(waiver_file)]) == EXIT_OK
    waivers = load_waivers(waiver_file)
    result = lint_paths([str(tree)], waivers=waivers)
    (finding,) = result.findings
    assert finding.waived and finding.waiver_reason == "fixture round trip"
    assert result.unwaived == [] and result.unused_waivers == []


def test_stale_waiver_fails_the_run(tmp_path):
    """A waiver that matches nothing is itself a gate failure."""
    tree = _place(tmp_path, "r2_locks", "good")
    waiver_file = _write_waiver(tmp_path, "Counter.reset")
    assert main([str(tree), "--waivers", str(waiver_file)]) == EXIT_FINDINGS
    assert (
        main([str(tree), "--waivers", str(waiver_file), "--allow-unused-waivers"])
        == EXIT_OK
    )


def test_wrong_symbol_waiver_does_not_suppress(tmp_path):
    """Symbol narrowing is honored: a mismatched waiver leaves the finding."""
    tree = _place(tmp_path, "r2_locks", "bad")
    waiver_file = _write_waiver(tmp_path, "Counter.other_method")
    assert main([str(tree), "--waivers", str(waiver_file)]) == EXIT_FINDINGS


def test_malformed_waivers_are_a_usage_error(tmp_path):
    """A waiver entry without a reason must abort with exit 2."""
    tree = _place(tmp_path, "r2_locks", "bad")
    waiver_file = tmp_path / "waivers.toml"
    waiver_file.write_text('[[waiver]]\nrule = "R2"\nfile = "x.py"\n')
    assert main([str(tree), "--waivers", str(waiver_file)]) == EXIT_USAGE
    with pytest.raises(LintError):
        load_waivers(waiver_file)


def test_waiver_requires_matching_rule():
    """Waiver matching is rule-exact, file-suffix, symbol-optional."""
    waiver = Waiver(rule="R1", file="serve/eventloop.py", reason="r")
    from tools.lint.registry import Finding

    hit = Finding(rule="R1", file="src/repro/serve/eventloop.py", line=1, col=0, message="m")
    miss_rule = Finding(rule="R2", file="src/repro/serve/eventloop.py", line=1, col=0, message="m")
    miss_file = Finding(rule="R1", file="src/repro/serve/xeventloop.py", line=1, col=0, message="m")
    assert waiver.matches(hit)
    assert not waiver.matches(miss_rule)
    assert not waiver.matches(miss_file)


# -- CLI contract ------------------------------------------------------------


def test_json_output_schema(tmp_path):
    """``python -m tools.lint --json`` emits the documented document."""
    tree = _place(tmp_path, "r4_determinism", "bad")
    proc = subprocess.run(
        [sys.executable, "-m", "tools.lint", str(tree), "--json", "--no-waivers"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == EXIT_FINDINGS
    payload = json.loads(proc.stdout)
    assert payload["schema_version"] == JSON_SCHEMA_VERSION
    assert payload["n_findings"] == payload["n_unwaived"] == 3
    assert payload["n_waived"] == 0 and payload["unused_waivers"] == []
    assert {rule["id"] for rule in payload["rules"]} == {
        "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8",
    }
    for finding in payload["findings"]:
        assert set(finding) == {
            "rule", "file", "line", "col", "message", "symbol",
            "waived", "waiver_reason",
        }
        assert finding["rule"] == "R4"


def test_missing_path_is_a_usage_error():
    """Exit 2 for a path that does not exist (CLI convention)."""
    assert main(["definitely/not/a/path.py"]) == EXIT_USAGE


def test_rule_catalogue_is_complete():
    """Eight registered rules, R1..R8, each with a description."""
    rules = all_rules()
    assert [rule.rule_id for rule in rules] == [
        "R1",
        "R2",
        "R3",
        "R4",
        "R5",
        "R6",
        "R7",
        "R8",
    ]
    assert all(rule.name and rule.description for rule in rules)


def test_repository_head_is_clean():
    """The committed tree lints clean with the committed waivers (the gate)."""
    proc = subprocess.run(
        [sys.executable, "-m", "tools.lint", str(REPO_ROOT / "src" / "repro")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == EXIT_OK, proc.stdout + proc.stderr
