"""Tests for data-flow graph construction, graph features and adjacency images."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.features import (
    DEFAULT_IMAGE_SIZE,
    GRAPH_FEATURE_NAMES,
    adjacency_image,
    adjacency_image_batch,
    build_dataflow_graph,
    extract_graph_features,
    graph_feature_matrix,
    graph_feature_vector,
    graph_summary,
)
from repro.trojan import generate_host, insert_trojan


class TestGraphBuilder:
    def test_nodes_are_declared_signals(self, sample_verilog) -> None:
        graph = build_dataflow_graph(sample_verilog)
        for signal in ("clk", "rst", "data_in", "result", "state", "count", "timeout"):
            assert signal in graph

    def test_node_roles(self, sample_verilog) -> None:
        graph = build_dataflow_graph(sample_verilog)
        assert graph.nodes["clk"]["role"] == "input"
        assert graph.nodes["result"]["role"] == "output"
        assert graph.nodes["state"]["role"] == "reg"
        assert graph.nodes["timeout"]["role"] == "wire"

    def test_data_edges_from_assigns(self, sample_verilog) -> None:
        graph = build_dataflow_graph(sample_verilog)
        assert graph.has_edge("count", "timeout")
        assert graph.has_edge("data_in", "result")

    def test_control_edges_from_conditions(self, sample_verilog) -> None:
        graph = build_dataflow_graph(sample_verilog)
        # ``mode`` is the case subject steering ``result``.
        assert graph.has_edge("mode", "result")
        assert graph["mode"]["result"]["kind"] == "control"
        # ``start`` guards the state transition.
        assert graph.has_edge("start", "state")

    def test_clock_contributes_control_edges(self, sample_verilog) -> None:
        graph = build_dataflow_graph(sample_verilog)
        assert graph.has_edge("clk", "state")

    def test_sequential_annotation(self, sample_verilog) -> None:
        graph = build_dataflow_graph(sample_verilog)
        assert graph.nodes["state"].get("sequential") is True
        assert graph.nodes["timeout"].get("sequential") is None

    def test_ternary_condition_is_control_edge(self) -> None:
        graph = build_dataflow_graph(
            "module mux (input s, input [3:0] a, input [3:0] b, output [3:0] y);\n"
            "  assign y = s ? a : b;\nendmodule\n"
        )
        assert graph["s"]["y"]["kind"] == "control"
        assert graph["a"]["y"]["kind"] == "data"

    def test_edge_weights_accumulate(self) -> None:
        graph = build_dataflow_graph(
            "module w (input [3:0] a, output [3:0] y);\n  assign y = a + a;\nendmodule\n"
        )
        assert graph["a"]["y"]["weight"] == 2

    def test_instantiation_creates_instance_node(self) -> None:
        graph = build_dataflow_graph(
            "module top (input clk, output y);\n  wire w;\n"
            "  sub u1 (.c(clk), .o(w));\n  assign y = w;\nendmodule\n"
        )
        assert "sub.u1" in graph
        assert graph.nodes["sub.u1"]["role"] == "instance"

    def test_graph_summary(self, sample_verilog) -> None:
        summary = graph_summary(build_dataflow_graph(sample_verilog))
        assert summary["n_nodes"] > 0
        assert summary["n_inputs"] == 5
        assert summary["n_outputs"] == 2


class TestGraphFeatures:
    def test_feature_names_sorted_unique(self) -> None:
        assert GRAPH_FEATURE_NAMES == sorted(GRAPH_FEATURE_NAMES)
        assert len(GRAPH_FEATURE_NAMES) == len(set(GRAPH_FEATURE_NAMES))

    def test_vector_matches_names(self, sample_verilog) -> None:
        graph = build_dataflow_graph(sample_verilog)
        features = extract_graph_features(graph)
        vector = graph_feature_vector(graph)
        assert vector.shape == (len(GRAPH_FEATURE_NAMES),)
        for i, name in enumerate(GRAPH_FEATURE_NAMES):
            assert vector[i] == pytest.approx(features[name])

    def test_accepts_source_module_or_graph(self, sample_verilog) -> None:
        from_source = graph_feature_vector(sample_verilog)
        from_graph = graph_feature_vector(build_dataflow_graph(sample_verilog))
        np.testing.assert_allclose(from_source, from_graph)

    def test_all_finite_on_suite(self, small_features) -> None:
        assert np.all(np.isfinite(small_features.graph))

    def test_degree_histogram_normalised(self, sample_verilog) -> None:
        features = extract_graph_features(build_dataflow_graph(sample_verilog))
        in_hist = [features[f"in_degree_hist_{i}"] for i in range(6)]
        out_hist = [features[f"out_degree_hist_{i}"] for i in range(6)]
        assert sum(in_hist) == pytest.approx(1.0)
        assert sum(out_hist) == pytest.approx(1.0)

    def test_empty_graph_features(self) -> None:
        features = extract_graph_features(nx.DiGraph())
        assert features["n_nodes"] == 0.0
        assert features["density"] == 0.0
        assert np.isfinite(list(features.values())).all()

    def test_matrix_shape(self, small_dataset) -> None:
        matrix = graph_feature_matrix(small_dataset.sources[:4])
        assert matrix.shape == (4, len(GRAPH_FEATURE_NAMES))

    def test_control_only_signal_detection(self) -> None:
        rng = np.random.default_rng(3)
        host = generate_host("crypto", rng, name="h")
        infected = insert_trojan(host, rng, trigger_kind="comparator", payload_kind="dos")
        clean = extract_graph_features(build_dataflow_graph(host))
        dirty = extract_graph_features(build_dataflow_graph(infected.source))
        assert dirty["n_control_only_signals"] >= clean["n_control_only_signals"]
        assert dirty["n_nodes"] > clean["n_nodes"]


class TestAdjacencyImage:
    def test_shape_and_range(self, sample_verilog) -> None:
        image = adjacency_image(sample_verilog)
        assert image.shape == (1, DEFAULT_IMAGE_SIZE, DEFAULT_IMAGE_SIZE)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_custom_size_padding_and_pooling(self, sample_verilog) -> None:
        small = adjacency_image(sample_verilog, size=8)
        large = adjacency_image(sample_verilog, size=64)
        assert small.shape == (1, 8, 8)
        assert large.shape == (1, 64, 64)

    def test_empty_graph_image_is_zero(self) -> None:
        image = adjacency_image(nx.DiGraph(), size=8)
        assert image.shape == (1, 8, 8)
        assert np.all(image == 0.0)

    def test_batch_stacking(self, small_dataset) -> None:
        batch = adjacency_image_batch(small_dataset.sources[:3], size=12)
        assert batch.shape == (3, 1, 12, 12)

    def test_invalid_size_rejected(self, sample_verilog) -> None:
        with pytest.raises(ValueError):
            adjacency_image(sample_verilog, size=0)

    def test_deterministic(self, sample_verilog) -> None:
        np.testing.assert_array_equal(
            adjacency_image(sample_verilog), adjacency_image(sample_verilog)
        )


class TestVectorizedGraphFeaturesEquivalence:
    """The dense fast path must be bit-identical to the networkx reference."""

    def test_bit_identical_on_generated_suite(self) -> None:
        from repro.features.graph_features import (
            _extract_graph_features_reference,
            extract_graph_features,
        )
        from repro.trojan import SuiteConfig, TrojanDataset

        suite = TrojanDataset.generate(
            SuiteConfig(n_trojan_free=6, n_trojan_infected=3, seed=29)
        )
        for benchmark in suite.benchmarks:
            graph = build_dataflow_graph(benchmark.source)
            fast = extract_graph_features(graph)
            reference = _extract_graph_features_reference(graph)
            assert set(fast) == set(reference)
            for key in reference:
                assert fast[key] == reference[key], key

    def test_bit_identical_on_fixture(self, sample_verilog) -> None:
        from repro.features.graph_features import (
            _extract_graph_features_reference,
            extract_graph_features,
        )

        graph = build_dataflow_graph(sample_verilog)
        assert extract_graph_features(graph) == _extract_graph_features_reference(graph)
