"""Unit tests for the Verilog parser and AST construction."""

from __future__ import annotations

import pytest

from repro.hdl import ParseError, ast, parse_module, parse_source
from repro.hdl.visitor import collect


class TestModuleStructure:
    def test_module_name_and_ports(self, sample_verilog) -> None:
        module = parse_module(sample_verilog)
        assert module.name == "ctrl_unit"
        assert module.ports == ["clk", "rst", "start", "mode", "data_in", "done", "result"]

    def test_port_declarations(self, sample_verilog) -> None:
        module = parse_module(sample_verilog)
        directions = {}
        for decl in module.port_declarations():
            for name in decl.names:
                directions[name] = decl.direction
        assert directions["clk"] == "input"
        assert directions["result"] == "output"
        assert directions["data_in"] == "input"

    def test_output_reg_flag(self, sample_verilog) -> None:
        module = parse_module(sample_verilog)
        result_decl = next(d for d in module.port_declarations() if "result" in d.names)
        assert result_decl.is_reg

    def test_port_widths(self, sample_verilog) -> None:
        module = parse_module(sample_verilog)
        widths = {name: d.width() for d in module.port_declarations() for name in d.names}
        assert widths["data_in"] == 8
        assert widths["mode"] == 2
        assert widths["clk"] == 1

    def test_net_declarations(self, sample_verilog) -> None:
        module = parse_module(sample_verilog)
        nets = {name: d for d in module.net_declarations() for name in d.names}
        assert nets["state"].net_type == "reg"
        assert nets["timeout"].net_type == "wire"
        assert nets["count"].width() == 4

    def test_parameters(self, sample_verilog) -> None:
        module = parse_module(sample_verilog)
        params = {p.name: p for p in module.parameters()}
        assert set(params) == {"IDLE", "RUN"}
        assert params["RUN"].local is True
        assert params["IDLE"].local is False

    def test_always_blocks(self, sample_verilog) -> None:
        module = parse_module(sample_verilog)
        always = module.always_blocks()
        assert len(always) == 2
        assert sum(1 for a in always if a.is_sequential) == 1
        assert sum(1 for a in always if a.is_star) == 1

    def test_continuous_assigns(self, sample_verilog) -> None:
        module = parse_module(sample_verilog)
        targets = [a.target.name for a in module.continuous_assigns()]
        assert targets == ["timeout", "done"]

    def test_multiple_modules_in_source(self) -> None:
        source = "module a (); endmodule\nmodule b (); endmodule\n"
        parsed = parse_source(source)
        assert [m.name for m in parsed.modules] == ["a", "b"]
        assert parsed.module("b").name == "b"
        with pytest.raises(KeyError):
            parsed.module("c")

    def test_ansi_style_header(self) -> None:
        module = parse_module(
            "module ansi (input wire clk, input [3:0] data, output reg [3:0] q);\n"
            "  always @(posedge clk) q <= data;\nendmodule\n"
        )
        assert module.ports == ["clk", "data", "q"]
        q_decl = next(d for d in module.port_declarations() if "q" in d.names)
        assert q_decl.is_reg and q_decl.width() == 4

    def test_parameterised_header(self) -> None:
        module = parse_module(
            "module p #(parameter WIDTH = 8) (input [WIDTH-1:0] d, output [WIDTH-1:0] q);\n"
            "  assign q = d;\nendmodule\n"
        )
        assert [p.name for p in module.parameters()] == ["WIDTH"]

    def test_instantiation(self) -> None:
        module = parse_module(
            "module top (input clk, output y);\n"
            "  wire w;\n"
            "  sub #(.W(4)) u_sub (.clk(clk), .out(w));\n"
            "  assign y = w;\nendmodule\n"
        )
        inst = module.instantiations()[0]
        assert inst.module_name == "sub"
        assert inst.instance_name == "u_sub"
        assert [c.port for c in inst.connections] == ["clk", "out"]
        assert inst.parameter_overrides[0][0] == "W"


class TestStatements:
    def test_case_statement(self, sample_verilog) -> None:
        module = parse_module(sample_verilog)
        cases = collect(module, ast.Case)
        assert len(cases) == 1
        assert len(cases[0].items) == 4
        assert cases[0].items[-1].is_default

    def test_if_else_nesting(self, sample_verilog) -> None:
        module = parse_module(sample_verilog)
        ifs = collect(module, ast.If)
        assert len(ifs) >= 3

    def test_nonblocking_vs_blocking(self, sample_verilog) -> None:
        module = parse_module(sample_verilog)
        assert len(collect(module, ast.NonBlockingAssign)) >= 4
        # The always @(*) block uses blocking assignments.
        assert len(collect(module, ast.BlockingAssign)) == 4

    def test_for_loop(self) -> None:
        module = parse_module(
            "module loops (input clk, output reg [7:0] q);\n"
            "  integer i;\n"
            "  always @(posedge clk)\n"
            "    begin\n"
            "      for (i = 0; i < 8; i = i + 1)\n"
            "        q[i] <= 1'b0;\n"
            "    end\nendmodule\n"
        )
        loops = collect(module, ast.ForLoop)
        assert len(loops) == 1
        assert isinstance(loops[0].init, ast.BlockingAssign)

    def test_system_task(self) -> None:
        module = parse_module(
            'module t (input clk);\n  initial\n    $display("hello", 42);\nendmodule\n'
        )
        tasks = collect(module, ast.SystemTaskCall)
        assert tasks[0].name == "$display"
        assert len(tasks[0].args) == 2

    def test_sensitivity_list_edges(self) -> None:
        module = parse_module(
            "module s (input clk, input rst_n, output reg q);\n"
            "  always @(posedge clk or negedge rst_n)\n"
            "    if (!rst_n) q <= 1'b0; else q <= 1'b1;\nendmodule\n"
        )
        always = module.always_blocks()[0]
        assert [item.edge for item in always.sensitivity] == ["posedge", "negedge"]


class TestExpressions:
    @staticmethod
    def _rhs(expr_text: str) -> ast.Node:
        module = parse_module(
            f"module e (input [7:0] a, input [7:0] b, input c, output [7:0] y);\n"
            f"  assign y = {expr_text};\nendmodule\n"
        )
        return module.continuous_assigns()[0].value

    def test_precedence_mul_over_add(self) -> None:
        expr = self._rhs("a + b * a")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_precedence_comparison_over_logical(self) -> None:
        expr = self._rhs("a == b && c")
        assert expr.op == "&&"
        assert isinstance(expr.left, ast.BinaryOp) and expr.left.op == "=="

    def test_ternary(self) -> None:
        expr = self._rhs("c ? a : b")
        assert isinstance(expr, ast.Ternary)

    def test_nested_ternary(self) -> None:
        expr = self._rhs("c ? a : c ? b : a")
        assert isinstance(expr, ast.Ternary)
        assert isinstance(expr.if_false, ast.Ternary)

    def test_concat_and_replicate(self) -> None:
        concat = self._rhs("{a[3:0], b[3:0]}")
        assert isinstance(concat, ast.Concat) and len(concat.parts) == 2
        replicate = self._rhs("{4{c}}")
        assert isinstance(replicate, ast.Replicate)

    def test_bit_and_part_select(self) -> None:
        bit = self._rhs("a[3]")
        assert isinstance(bit, ast.BitSelect)
        part = self._rhs("a[7:4]")
        assert isinstance(part, ast.PartSelect)

    def test_unary_reduction(self) -> None:
        expr = self._rhs("&a ^ |b")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "^"
        assert isinstance(expr.left, ast.UnaryOp) and expr.left.op == "&"

    def test_number_parsing(self) -> None:
        number = ast.Number.parse("8'hff")
        assert number.value == 255 and number.width == 8
        assert ast.Number.parse("4'b1010").value == 10
        assert ast.Number.parse("42").value == 42
        assert ast.Number.parse("8'hxz").value is None

    def test_width_of_range(self) -> None:
        module = parse_module(
            "module w (input [15:8] hi, output y);\n  assign y = hi[8];\nendmodule\n"
        )
        decl = module.port_declarations()[0]
        assert decl.width() == 8


class TestParseErrors:
    def test_missing_semicolon(self) -> None:
        with pytest.raises(ParseError):
            parse_module("module m (input a)\nendmodule\n")

    def test_unterminated_module(self) -> None:
        with pytest.raises(ParseError, match="Unterminated module"):
            parse_module("module m (input a);\n  wire w;\n")

    def test_garbage_at_top_level(self) -> None:
        with pytest.raises(ParseError, match="top level"):
            parse_source("wire w;\n")

    def test_bad_expression(self) -> None:
        with pytest.raises(ParseError):
            parse_module("module m (output y);\n  assign y = + ;\nendmodule\n")

    def test_unterminated_case(self) -> None:
        with pytest.raises(ParseError):
            parse_module(
                "module m (input [1:0] s, output reg y);\n"
                "  always @(*)\n    case (s)\n      2'd0: y = 1'b0;\nendmodule\n"
            )

    def test_error_carries_position(self) -> None:
        with pytest.raises(ParseError) as excinfo:
            parse_module("module m (input a);\n  assign = 1;\nendmodule\n")
        assert excinfo.value.line == 2
