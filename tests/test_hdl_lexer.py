"""Unit tests for the Verilog lexer."""

from __future__ import annotations

import pytest

from repro.hdl import Lexer, LexerError, tokenize
from repro.hdl.tokens import TokenType


def _values(source: str):
    return [t.value for t in tokenize(source) if t.type is not TokenType.EOF]


class TestBasicTokens:
    def test_keywords_and_identifiers(self) -> None:
        tokens = tokenize("module foo; endmodule")
        kinds = [(t.type, t.value) for t in tokens[:-1]]
        assert kinds[0] == (TokenType.KEYWORD, "module")
        assert kinds[1] == (TokenType.IDENTIFIER, "foo")
        assert kinds[3] == (TokenType.KEYWORD, "endmodule")

    def test_eof_terminates_stream(self) -> None:
        assert tokenize("")[-1].type is TokenType.EOF
        assert tokenize("wire x;")[-1].type is TokenType.EOF

    def test_identifier_with_dollar_and_underscore(self) -> None:
        values = _values("$display _sig core$net")
        assert values == ["$display", "_sig", "core$net"]

    def test_simple_decimal_number(self) -> None:
        tokens = tokenize("42")
        assert tokens[0].type is TokenType.NUMBER and tokens[0].value == "42"

    def test_sized_hex_number(self) -> None:
        tokens = tokenize("8'hFF")
        assert tokens[0].value == "8'hFF"

    def test_sized_binary_with_underscores(self) -> None:
        tokens = tokenize("4'b10_10")
        assert tokens[0].value == "4'b10_10"

    def test_signed_literal(self) -> None:
        assert tokenize("8'sd5")[0].type is TokenType.NUMBER

    def test_string_literal(self) -> None:
        tokens = tokenize('"hello world"')
        assert tokens[0].type is TokenType.STRING and tokens[0].value == "hello world"


class TestOperators:
    @pytest.mark.parametrize(
        "op", ["<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "===", "!==", "<<<", ">>>"]
    )
    def test_multi_character_operators(self, op: str) -> None:
        tokens = tokenize(f"a {op} b")
        assert tokens[1].value == op and tokens[1].type is TokenType.OPERATOR

    def test_greedy_matching(self) -> None:
        # "<<<" must lex as one token, not "<<" then "<".
        assert _values("a <<< b") == ["a", "<<<", "b"]

    def test_single_char_operators_and_punctuation(self) -> None:
        values = _values("assign y = (a & b) | ~c;")
        assert values == ["assign", "y", "=", "(", "a", "&", "b", ")", "|", "~", "c", ";"]

    def test_reduction_operator_split(self) -> None:
        # ~& is a distinct token (reduction NAND).
        assert "~&" in _values("assign y = ~&a;")


class TestCommentsAndWhitespace:
    def test_line_comments_ignored(self) -> None:
        assert _values("wire x; // a comment\nwire y;") == ["wire", "x", ";", "wire", "y", ";"]

    def test_block_comments_ignored(self) -> None:
        assert _values("wire /* hidden */ x;") == ["wire", "x", ";"]

    def test_multiline_block_comment(self) -> None:
        assert _values("/* line1\nline2\n*/ reg r;") == ["reg", "r", ";"]

    def test_unterminated_block_comment_raises(self) -> None:
        with pytest.raises(LexerError, match="Unterminated block comment"):
            tokenize("wire x; /* never closed")

    def test_unterminated_string_raises(self) -> None:
        with pytest.raises(LexerError, match="Unterminated string"):
            tokenize('"no closing quote')


class TestPositionsAndErrors:
    def test_line_and_column_tracking(self) -> None:
        tokens = tokenize("wire a;\n  reg b;")
        reg_token = next(t for t in tokens if t.value == "reg")
        assert reg_token.line == 2
        assert reg_token.column == 3

    def test_unexpected_character_raises_with_position(self) -> None:
        with pytest.raises(LexerError) as excinfo:
            tokenize("wire a;\nwire `b;")
        assert excinfo.value.line == 2

    def test_invalid_base_raises(self) -> None:
        with pytest.raises(LexerError, match="Invalid numeric base"):
            tokenize("8'q12")

    def test_missing_digits_after_base_raises(self) -> None:
        with pytest.raises(LexerError, match="missing digits"):
            tokenize("8'h ;")

    def test_lexer_object_reusable_state(self) -> None:
        lexer = Lexer("wire x;")
        first = lexer.tokenize()
        assert [t.value for t in first[:-1]] == ["wire", "x", ";"]


class TestFastScannerEquivalence:
    """The master-regex ``tokenize`` must match the golden ``Lexer`` exactly."""

    def test_identical_token_stream_on_generated_suite(self) -> None:
        from repro.trojan import SuiteConfig, TrojanDataset

        suite = TrojanDataset.generate(
            SuiteConfig(n_trojan_free=6, n_trojan_infected=3, seed=19)
        )
        for benchmark in suite.benchmarks:
            assert tokenize(benchmark.source) == Lexer(benchmark.source).tokenize()

    def test_identical_token_stream_on_fixture(self, sample_verilog) -> None:
        assert tokenize(sample_verilog) == Lexer(sample_verilog).tokenize()

    @pytest.mark.parametrize(
        "source",
        [
            "module m; /* unterminated",
            '"unterminated string',
            "a = 8'h;",
            "y = 4'd3; z = 'b101; q = 16'shFF_F?;",
            's = "hi"; // c\n/* multi\nline */ module',
            "b = a / 2; c = a /* x */ * 2;",
        ],
    )
    def test_edge_cases_match_golden(self, source: str) -> None:
        try:
            expected = Lexer(source).tokenize()
            expected_error = None
        except LexerError as exc:
            expected, expected_error = None, str(exc)
        try:
            observed = tokenize(source)
            observed_error = None
        except LexerError as exc:
            observed, observed_error = None, str(exc)
        assert observed == expected
        assert observed_error == expected_error

    @pytest.mark.parametrize(
        "source",
        ["module m; /** unterminated", "a = b; /*** x", "c = d /**e"],
    )
    def test_unterminated_double_star_comment_matches_golden(self, source: str) -> None:
        with pytest.raises(LexerError, match="Unterminated block comment"):
            Lexer(source).tokenize()
        with pytest.raises(LexerError, match="Unterminated block comment"):
            tokenize(source)
