"""Unit tests for layer shapes, modes and error handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1d,
    Conv1d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePool1d,
    MaxPool1d,
    MaxPool2d,
    ReLU,
    get_activation,
)


@pytest.fixture
def generator() -> np.random.Generator:
    return np.random.default_rng(3)


class TestDense:
    def test_output_shape(self, generator) -> None:
        layer = Dense(7, 3, rng=generator)
        assert layer.forward(generator.normal(size=(5, 7))).shape == (5, 3)

    def test_rejects_wrong_input_width(self, generator) -> None:
        layer = Dense(4, 2, rng=generator)
        with pytest.raises(ValueError, match="expected input"):
            layer.forward(generator.normal(size=(5, 3)))

    def test_rejects_non_positive_dimensions(self) -> None:
        with pytest.raises(ValueError):
            Dense(0, 3)
        with pytest.raises(ValueError):
            Dense(3, -1)

    def test_backward_before_forward_raises(self, generator) -> None:
        layer = Dense(3, 2, rng=generator)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_parameter_count(self, generator) -> None:
        layer = Dense(10, 4, rng=generator)
        assert layer.n_parameters == 10 * 4 + 4

    def test_no_bias_parameter_count(self, generator) -> None:
        layer = Dense(10, 4, use_bias=False, rng=generator)
        assert layer.n_parameters == 40

    def test_zero_grad_clears_gradients(self, generator) -> None:
        layer = Dense(3, 2, rng=generator)
        out = layer.forward(generator.normal(size=(4, 3)))
        layer.backward(np.ones_like(out))
        assert np.any(layer.grad_weight != 0)
        layer.zero_grad()
        assert np.all(layer.grad_weight == 0)


class TestConvolutions:
    def test_conv1d_output_length(self, generator) -> None:
        layer = Conv1d(2, 4, kernel_size=3, rng=generator)
        assert layer.forward(generator.normal(size=(2, 2, 10))).shape == (2, 4, 8)

    def test_conv1d_padding_preserves_length(self, generator) -> None:
        layer = Conv1d(1, 2, kernel_size=3, padding=1, rng=generator)
        assert layer.forward(generator.normal(size=(2, 1, 9))).shape == (2, 2, 9)

    def test_conv1d_stride(self, generator) -> None:
        layer = Conv1d(1, 1, kernel_size=2, stride=2, rng=generator)
        assert layer.forward(generator.normal(size=(1, 1, 10))).shape == (1, 1, 5)

    def test_conv1d_rejects_wrong_channels(self, generator) -> None:
        layer = Conv1d(3, 2, kernel_size=3, rng=generator)
        with pytest.raises(ValueError):
            layer.forward(generator.normal(size=(1, 2, 10)))

    def test_conv1d_rejects_too_short_input(self, generator) -> None:
        layer = Conv1d(1, 1, kernel_size=5, rng=generator)
        with pytest.raises(ValueError):
            layer.forward(generator.normal(size=(1, 1, 3)))

    def test_conv2d_output_shape(self, generator) -> None:
        layer = Conv2d(1, 3, kernel_size=3, rng=generator)
        assert layer.forward(generator.normal(size=(2, 1, 8, 8))).shape == (2, 3, 6, 6)

    def test_conv2d_padding_preserves_shape(self, generator) -> None:
        layer = Conv2d(2, 2, kernel_size=3, padding=1, rng=generator)
        assert layer.forward(generator.normal(size=(1, 2, 5, 5))).shape == (1, 2, 5, 5)

    def test_conv2d_known_values(self) -> None:
        """A 1x1x2x2 all-ones kernel applied to a known image sums windows."""
        layer = Conv2d(1, 1, kernel_size=2)
        layer.weight[...] = 1.0
        layer.bias[...] = 0.0
        image = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        out = layer.forward(image)
        expected = np.array([[0 + 1 + 3 + 4, 1 + 2 + 4 + 5], [3 + 4 + 6 + 7, 4 + 5 + 7 + 8]])
        np.testing.assert_allclose(out[0, 0], expected)

    def test_conv1d_known_values(self) -> None:
        layer = Conv1d(1, 1, kernel_size=2)
        layer.weight[...] = 1.0
        layer.bias[...] = 0.5
        signal = np.array([[[1.0, 2.0, 3.0, 4.0]]])
        np.testing.assert_allclose(layer.forward(signal)[0, 0], [3.5, 5.5, 7.5])


class TestPooling:
    def test_maxpool1d_values(self) -> None:
        layer = MaxPool1d(2)
        x = np.array([[[1.0, 5.0, 2.0, 3.0, 7.0, 0.0]]])
        np.testing.assert_allclose(layer.forward(x)[0, 0], [5.0, 3.0, 7.0])

    def test_maxpool2d_values(self) -> None:
        layer = MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        np.testing.assert_allclose(layer.forward(x)[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_maxpool_backward_routes_to_argmax(self) -> None:
        layer = MaxPool1d(2)
        x = np.array([[[1.0, 5.0, 2.0, 3.0]]])
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_allclose(grad[0, 0], [0.0, 1.0, 0.0, 1.0])

    def test_global_average_pool(self) -> None:
        layer = GlobalAveragePool1d()
        x = np.array([[[2.0, 4.0], [1.0, 3.0]]])
        np.testing.assert_allclose(layer.forward(x), [[3.0, 2.0]])

    def test_maxpool_rejects_invalid_size(self) -> None:
        with pytest.raises(ValueError):
            MaxPool1d(0)
        with pytest.raises(ValueError):
            MaxPool2d((0, 2))


class TestDropoutAndBatchNorm:
    def test_dropout_inactive_in_inference(self, generator) -> None:
        layer = Dropout(0.5, rng=generator)
        x = generator.normal(size=(10, 10))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_dropout_zeroes_in_training(self, generator) -> None:
        layer = Dropout(0.5, rng=generator)
        x = np.ones((200, 50))
        out = layer.forward(x, training=True)
        dropped_fraction = np.mean(out == 0.0)
        assert 0.35 < dropped_fraction < 0.65

    def test_dropout_preserves_expectation(self, generator) -> None:
        layer = Dropout(0.3, rng=generator)
        x = np.ones((500, 100))
        out = layer.forward(x, training=True)
        assert abs(out.mean() - 1.0) < 0.05

    def test_dropout_rejects_invalid_rate(self) -> None:
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_batchnorm_normalises_training_batch(self, generator) -> None:
        layer = BatchNorm1d(4)
        x = generator.normal(loc=3.0, scale=2.0, size=(64, 4))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_batchnorm_uses_running_stats_in_inference(self, generator) -> None:
        layer = BatchNorm1d(3, momentum=0.0)  # running stats = last batch
        x = generator.normal(loc=5.0, size=(32, 3))
        layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-6)

    def test_batchnorm_rejects_wrong_width(self) -> None:
        layer = BatchNorm1d(3)
        with pytest.raises(ValueError):
            layer.forward(np.ones((4, 5)), training=True)


class TestFlattenAndActivations:
    def test_flatten_round_trip(self, generator) -> None:
        layer = Flatten()
        x = generator.normal(size=(3, 2, 4))
        out = layer.forward(x)
        assert out.shape == (3, 8)
        assert layer.backward(out).shape == x.shape

    def test_relu_clips_negative(self) -> None:
        out = ReLU().forward(np.array([-1.0, 0.5, 2.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 2.0])

    def test_get_activation_known_names(self) -> None:
        for name in ("relu", "sigmoid", "tanh", "softmax", "leaky_relu", "identity"):
            layer = get_activation(name)
            assert hasattr(layer, "forward")

    def test_get_activation_unknown_name(self) -> None:
        with pytest.raises(ValueError, match="Unknown activation"):
            get_activation("swishish")

    def test_softmax_rows_sum_to_one(self, generator) -> None:
        out = get_activation("softmax").forward(generator.normal(size=(6, 4)))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)
        assert np.all(out >= 0)

    def test_sigmoid_extreme_values_stable(self) -> None:
        out = get_activation("sigmoid").forward(np.array([-1000.0, 0.0, 1000.0]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-9)
