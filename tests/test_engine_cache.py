"""Sharded result-cache tests: atomicity, migration, quarantine, concurrency."""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.core.results import ScanRecord, TrojanDecision
from repro.engine.cache import (
    CACHE_SCHEMA_VERSION,
    CacheLockTimeout,
    LEGACY_SCHEMA_VERSION,
    ScanCache,
)
from repro.engine.scan import hash_source


def _record(name: str, label: int = 0) -> ScanRecord:
    """A minimal successful record keyed by its name's content hash."""
    p_infected = 0.9 if label else 0.1
    return ScanRecord(
        name=name,
        sha256=hash_source(name),
        decision=TrojanDecision(
            name=name,
            predicted_label=label,
            probability_infected=p_infected,
            p_value_trojan_free=1.0 - p_infected,
            p_value_trojan_infected=p_infected,
            region_labels=(label,),
            credibility=0.9,
            confidence=0.95,
        ),
    )


class TestShardedStore:
    def test_put_flush_reload_round_trip(self, tmp_path):
        cache = ScanCache(tmp_path, "fp-rt")
        records = [_record(f"design_{i}") for i in range(20)]
        cache.put_many(records)
        assert cache.flush() == cache.namespace_dir
        fresh = ScanCache(tmp_path, "fp-rt")
        assert len(fresh) == 20
        for record in records:
            hit = fresh.get(record.sha256)
            assert hit is not None and hit.cached
            assert hit.decision.p_value_trojan_infected == record.decision.p_value_trojan_infected

    def test_records_sharded_by_hash_prefix(self, tmp_path):
        cache = ScanCache(tmp_path, "fp-shard")
        cache.put_many(_record(f"d{i}") for i in range(40))
        cache.flush()
        shard_files = sorted((cache.namespace_dir / "shards").glob("*.json"))
        assert len(shard_files) > 1  # hash prefixes spread across files
        for path in shard_files:
            data = json.loads(path.read_text())
            assert data["schema_version"] == CACHE_SCHEMA_VERSION
            assert data["fingerprint"] == "fp-shard"
            for sha in data["records"]:
                assert sha.startswith(path.stem)

    def test_flush_leaves_no_temp_files(self, tmp_path):
        cache = ScanCache(tmp_path, "fp-tmp")
        cache.put(_record("a"))
        cache.flush()
        leftovers = [p for p in tmp_path.rglob("*") if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_flush_without_changes_is_noop(self, tmp_path):
        cache = ScanCache(tmp_path, "fp-noop")
        assert cache.flush() is None
        cache.put(_record("a"))
        cache.flush()
        assert cache.flush() is None

    def test_clear_removes_shard_files(self, tmp_path):
        cache = ScanCache(tmp_path, "fp-clear")
        cache.put_many(_record(f"d{i}") for i in range(10))
        cache.flush()
        cache.clear()
        cache.flush()
        assert len(ScanCache(tmp_path, "fp-clear")) == 0
        assert list((cache.namespace_dir / "shards").glob("*.json")) == []

    def test_error_records_not_cached(self, tmp_path):
        cache = ScanCache(tmp_path, "fp-err")
        cache.put(ScanRecord(name="bad", sha256=hash_source("bad"), error="boom"))
        assert len(cache) == 0

    def test_fingerprint_namespaces_are_isolated(self, tmp_path):
        a = ScanCache(tmp_path, "fp-one")
        a.put(_record("shared"))
        a.flush()
        assert ScanCache(tmp_path, "fp-two").get(hash_source("shared")) is None


class TestLegacyMigration:
    def _write_legacy(self, tmp_path, fingerprint: str, records) -> None:
        payload = {
            "schema_version": LEGACY_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "records": {
                r.sha256: dict(r.to_dict(), cached=False) for r in records
            },
        }
        path = tmp_path / f"scan_cache_{fingerprint[:16]}.json"
        path.write_text(json.dumps(payload))

    def test_legacy_single_file_read_transparently(self, tmp_path):
        records = [_record(f"old_{i}") for i in range(5)]
        self._write_legacy(tmp_path, "fp-legacy", records)
        cache = ScanCache(tmp_path, "fp-legacy")
        assert len(cache) == 5
        assert cache.get(records[0].sha256).cached

    def test_flush_migrates_legacy_into_shards(self, tmp_path):
        records = [_record(f"old_{i}") for i in range(5)]
        self._write_legacy(tmp_path, "fp-mig", records)
        cache = ScanCache(tmp_path, "fp-mig")
        cache.put(_record("new_one"))
        cache.flush()
        assert not (tmp_path / "scan_cache_fp-mig.json").exists()
        fresh = ScanCache(tmp_path, "fp-mig")
        assert len(fresh) == 6  # all legacy records plus the new one survived

    def test_wrong_fingerprint_legacy_ignored(self, tmp_path):
        self._write_legacy(tmp_path, "fp-other", [_record("x")])
        os.replace(
            tmp_path / "scan_cache_fp-other.json",
            tmp_path / "scan_cache_fp-mine.json",
        )
        assert len(ScanCache(tmp_path, "fp-mine")) == 0


class TestCorruptFiles:
    def test_corrupt_legacy_file_quarantined(self, tmp_path, caplog):
        path = tmp_path / "scan_cache_fp-corrupt.json"
        path.write_text('{"schema_version": 1, "records": {tru')
        with caplog.at_level("WARNING", logger="repro.engine.cache"):
            cache = ScanCache(tmp_path, "fp-corrupt")
        assert len(cache) == 0
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        assert any("quarantining" in message for message in caplog.messages)

    def test_corrupt_shard_file_quarantined_and_rest_kept(self, tmp_path):
        cache = ScanCache(tmp_path, "fp-half")
        records = [_record(f"d{i}") for i in range(20)]
        cache.put_many(records)
        cache.flush()
        shard_files = sorted((cache.namespace_dir / "shards").glob("*.json"))
        victim = shard_files[0]
        lost = set(json.loads(victim.read_text())["records"])
        victim.write_text("NOT JSON AT ALL")
        fresh = ScanCache(tmp_path, "fp-half")
        assert len(fresh) == 20 - len(lost)
        assert victim.with_name(victim.name + ".corrupt").exists()
        survivors = [r for r in records if r.sha256 not in lost]
        assert all(fresh.get(r.sha256) is not None for r in survivors)

    def test_non_object_json_quarantined(self, tmp_path):
        path = tmp_path / "scan_cache_fp-lst.json"
        path.write_text("[1, 2, 3]")
        assert len(ScanCache(tmp_path, "fp-lst")) == 0
        assert path.with_name(path.name + ".corrupt").exists()


class TestLocking:
    def test_leftover_lock_file_does_not_block(self, tmp_path):
        # A lockfile left behind by a SIGKILLed scan holds no kernel lock,
        # so a fresh flush proceeds immediately (no staleness dance).
        cache = ScanCache(tmp_path, "fp-stale")
        cache.namespace_dir.mkdir(parents=True, exist_ok=True)
        lock_path = cache.namespace_dir / ".lock"
        lock_path.write_text("99999\n")
        old = time.time() - 3600
        os.utime(lock_path, (old, old))
        cache.put(_record("a"))
        assert cache.flush() is not None  # did not deadlock on the dead lock

    def test_held_lock_times_out_then_works_after_release(self, tmp_path):
        import fcntl

        cache = ScanCache(tmp_path, "fp-held")
        cache.namespace_dir.mkdir(parents=True, exist_ok=True)
        lock_path = cache.namespace_dir / ".lock"
        # Hold the kernel lock through an independent file description —
        # flock conflicts between separate opens even in one process.
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR)
        fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            cache._lock.timeout = 0.2
            cache.put(_record("a"))
            with pytest.raises(CacheLockTimeout):
                cache.flush()
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        assert cache.flush() is not None  # holder released -> lock acquired


# ---------------------------------------------------------------------------
# Concurrency stress (two+ writer processes against one cache directory)
# ---------------------------------------------------------------------------


def _writer_process(directory: str, fingerprint: str, start: int, count: int) -> None:
    """Write ``count`` records with interleaved flushes (stress worker)."""
    cache = ScanCache(directory, fingerprint)
    for i in range(start, start + count):
        cache.put(_record(f"design_{i}", label=i % 2))
        if i % 3 == 0:
            cache.flush()
    cache.flush()


class TestConcurrentWriters:
    @pytest.mark.parametrize("overlap", [False, True])
    def test_parallel_writers_do_not_corrupt_the_store(self, tmp_path, overlap):
        n_procs, per_proc = 4, 25
        step = per_proc // 2 if overlap else per_proc
        processes = [
            multiprocessing.Process(
                target=_writer_process,
                args=(str(tmp_path), "fp-stress", p * step, per_proc),
            )
            for p in range(n_procs)
        ]
        for proc in processes:
            proc.start()
        for proc in processes:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        expected = {
            hash_source(f"design_{i}")
            for p in range(n_procs)
            for i in range(p * step, p * step + per_proc)
        }
        cache = ScanCache(tmp_path, "fp-stress")
        assert {sha for sha in expected if sha in cache} == expected
        # Every store file must be intact JSON with the right schema.
        for path in (cache.namespace_dir / "shards").glob("*.json"):
            data = json.loads(path.read_text())
            assert data["schema_version"] == CACHE_SCHEMA_VERSION
        assert not list(tmp_path.rglob("*.corrupt"))
        assert not list(tmp_path.rglob("*.tmp"))

    def test_flush_merges_concurrent_updates_between_handles(self, tmp_path):
        # Two names landing in the same shard file (same 2-hex-char prefix).
        seen: dict = {}
        pair = None
        for i in range(1000):
            prefix = hash_source(f"n{i}")[:2]
            if prefix in seen:
                pair = (seen[prefix], f"n{i}")
                break
            seen[prefix] = f"n{i}"
        assert pair is not None
        alpha, beta = pair
        first = ScanCache(tmp_path, "fp-merge")
        second = ScanCache(tmp_path, "fp-merge")  # opened before first flushes
        first.put(_record(alpha))
        first.flush()
        second.put(_record(beta))
        second.flush()  # must not clobber alpha, written meanwhile to the same shard
        merged = ScanCache(tmp_path, "fp-merge")
        assert merged.get(hash_source(alpha)) is not None
        assert merged.get(hash_source(beta)) is not None
        # The second handle also absorbed alpha during its merge-on-flush.
        assert hash_source(alpha) in second

    def test_reload_picks_up_other_writers(self, tmp_path):
        holder = ScanCache(tmp_path, "fp-reload")
        other = ScanCache(tmp_path, "fp-reload")
        other.put(_record("from_other"))
        other.flush()
        assert hash_source("from_other") not in holder
        holder.put(_record("local_unflushed"))
        holder.reload()
        assert hash_source("from_other") in holder
        assert hash_source("local_unflushed") in holder  # dirty records survive
