"""Event-loop front-end stress tests: churn, pipelining, slow loris, drain.

The ``selectors`` reactor holds every connection in one thread, so the
failure modes worth testing are the ones a thread-per-connection server
never sees: hundreds of short-lived connections arriving at once,
pipelined keep-alive requests that must come back in order, half-sent
requests squatting on the loop (slow loris), and a shutdown landing in
the middle of an open micro-batch window — which must drain, not drop,
every request already accepted.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.core.config import ClassifierConfig, NoodleConfig
from repro.engine import save_detector, train_detector
from repro.engine.bench import build_scan_batch
from repro.serve.client import ScanServiceClient
from repro.serve.server import ScanService


@pytest.fixture(scope="module")
def detector(small_features):
    config = NoodleConfig(classifier=ClassifierConfig(epochs=3, seed=0), seed=0)
    return train_detector(small_features, strategy="late", config=config).model


@pytest.fixture(scope="module")
def artifact(detector, tmp_path_factory):
    return save_detector(detector, tmp_path_factory.mktemp("eventloop") / "artifact")


@pytest.fixture(scope="module")
def corpus():
    return build_scan_batch(8, seed=171)


def _scan_payload(name: str, text: str) -> bytes:
    return json.dumps(
        {"sources": [{"name": name, "source": text}]}, separators=(",", ":")
    ).encode("utf-8")


def _raw_request(
    method: str, path: str, body: bytes = b"", keep_alive: bool = True
) -> bytes:
    head = f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
    if body:
        head += f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n"
    if not keep_alive:
        head += "Connection: close\r\n"
    return head.encode("ascii") + b"\r\n" + body


def _read_responses(sock: socket.socket, n: int, timeout: float = 30.0):
    """Read ``n`` Content-Length-framed responses; returns (status, json) pairs."""
    sock.settimeout(timeout)
    buffer = b""
    out = []
    for _ in range(n):
        while b"\r\n\r\n" not in buffer:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError(f"EOF after {len(out)}/{n} responses")
            buffer += chunk
        head, _, buffer = buffer.partition(b"\r\n\r\n")
        status = int(head.split(b"\r\n")[0].split()[1])
        length = 0
        for line in head.split(b"\r\n")[1:]:
            key, _, value = line.partition(b":")
            if key.strip().lower() == b"content-length":
                length = int(value.strip())
        while len(buffer) < length:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("EOF mid-body")
            buffer += chunk
        out.append((status, json.loads(buffer[:length])))
        buffer = buffer[length:]
    return out


class TestConnectionChurn:
    def test_hundreds_of_short_lived_connections(self, artifact, corpus):
        """~300 connect/request/close cycles mixing healthz and scans."""
        with ScanService(artifact, port=0, batch_window_s=0.005, max_batch=16) as svc:
            with ScanServiceClient(svc.host, svc.port) as probe:
                probe.wait_until_ready()

            def churn(worker: int) -> int:
                ok = 0
                for i in range(30):
                    with socket.create_connection(
                        (svc.host, svc.port), timeout=30.0
                    ) as sock:
                        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                        if i % 3 == 0:
                            source = corpus[(worker + i) % len(corpus)]
                            sock.sendall(
                                _raw_request(
                                    "POST",
                                    "/scan",
                                    _scan_payload(source.name, source.source),
                                    keep_alive=False,
                                )
                            )
                        else:
                            sock.sendall(
                                _raw_request("GET", "/healthz", keep_alive=False)
                            )
                        ((status, payload),) = _read_responses(sock, 1)
                        assert status == 200, payload
                        ok += 1
                        # Connection: close must actually close.
                        assert sock.recv(1) == b""
                return ok

            with ThreadPoolExecutor(10) as pool:
                done = list(pool.map(churn, range(10)))
            assert sum(done) == 300
            assert svc.metrics.snapshot()["scan_requests"] == 100

    def test_pipelined_keepalive_requests_answer_in_order(self, artifact, corpus):
        """Many requests in one write; responses must come back in order."""
        with ScanService(artifact, port=0, batch_window_s=0.02, max_batch=16) as svc:
            with ScanServiceClient(svc.host, svc.port) as probe:
                probe.wait_until_ready()
            with socket.create_connection((svc.host, svc.port), timeout=30.0) as sock:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                # healthz, scan, healthz, scan, healthz — one sendall.
                blob = b""
                expected = []
                for i in range(5):
                    if i % 2 == 1:
                        source = corpus[i % len(corpus)]
                        blob += _raw_request(
                            "POST", "/scan", _scan_payload(source.name, source.source)
                        )
                        expected.append(("scan", source.name))
                    else:
                        blob += _raw_request("GET", "/healthz")
                        expected.append(("healthz", None))
                sock.sendall(blob)
                responses = _read_responses(sock, 5)
            for (kind, name), (status, payload) in zip(expected, responses):
                assert status == 200
                if kind == "scan":
                    # The slow dispatched scan did not let the cheap
                    # healthz behind it jump the queue.
                    assert payload["records"][0]["name"] == name
                else:
                    assert payload["status"] == "ok"

    def test_keepalive_clients_interleaved_with_churn(self, artifact, corpus):
        """Persistent scanners and short-lived healthz probes coexist."""
        with ScanService(artifact, port=0, batch_window_s=0.005, max_batch=16) as svc:
            with ScanServiceClient(svc.host, svc.port) as probe:
                probe.wait_until_ready()
            stop = threading.Event()
            failures = []

            def prober() -> None:
                while not stop.is_set():
                    try:
                        with socket.create_connection(
                            (svc.host, svc.port), timeout=30.0
                        ) as sock:
                            sock.sendall(
                                _raw_request("GET", "/healthz", keep_alive=False)
                            )
                            ((status, _),) = _read_responses(sock, 1)
                            assert status == 200
                    except Exception as exc:  # surfaced after the join
                        failures.append(exc)
                        return

            probe_threads = [threading.Thread(target=prober) for _ in range(4)]
            for thread in probe_threads:
                thread.start()
            try:

                def persistent_scans(worker: int) -> int:
                    with ScanServiceClient(svc.host, svc.port) as client:
                        for i in range(6):
                            source = corpus[(worker + i) % len(corpus)]
                            response = client.scan_texts(
                                [(source.name, source.source)]
                            )
                            assert response["n_designs"] == 1
                    return 6

                with ThreadPoolExecutor(6) as pool:
                    counts = list(pool.map(persistent_scans, range(6)))
            finally:
                stop.set()
                for thread in probe_threads:
                    thread.join(timeout=30.0)
            assert not failures, failures[0]
            assert sum(counts) == 36


class TestSlowLoris:
    def test_partial_request_line_gets_408_and_close(self, artifact):
        with ScanService(artifact, port=0, request_timeout_s=0.3) as svc:
            with ScanServiceClient(svc.host, svc.port) as probe:
                probe.wait_until_ready()
            with socket.create_connection((svc.host, svc.port), timeout=30.0) as sock:
                sock.sendall(b"POST /scan HTT")  # never finishes the line
                ((status, payload),) = _read_responses(sock, 1)
                assert status == 408
                assert "timeout" in payload["error"]
                assert sock.recv(1) == b""  # and the squatter is evicted

    def test_partial_headers_get_408(self, artifact):
        with ScanService(artifact, port=0, request_timeout_s=0.3) as svc:
            with ScanServiceClient(svc.host, svc.port) as probe:
                probe.wait_until_ready()
            with socket.create_connection((svc.host, svc.port), timeout=30.0) as sock:
                sock.sendall(b"POST /scan HTTP/1.1\r\nHost: t\r\nContent-Len")
                ((status, _),) = _read_responses(sock, 1)
                assert status == 408

    def test_stalled_body_gets_408(self, artifact):
        with ScanService(artifact, port=0, request_timeout_s=0.3) as svc:
            with ScanServiceClient(svc.host, svc.port) as probe:
                probe.wait_until_ready()
            with socket.create_connection((svc.host, svc.port), timeout=30.0) as sock:
                head = (
                    b"POST /scan HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 1000\r\n\r\n"
                )
                sock.sendall(head + b'{"sources"')  # 990 bytes never arrive
                ((status, _),) = _read_responses(sock, 1)
                assert status == 408

    def test_idle_keepalive_outlives_the_request_timeout(self, artifact, corpus):
        """Between requests the 408 clock must not run (idle != slow)."""
        timeout_s = 0.3
        with ScanService(artifact, port=0, request_timeout_s=timeout_s) as svc:
            with ScanServiceClient(svc.host, svc.port) as probe:
                probe.wait_until_ready()
            with socket.create_connection((svc.host, svc.port), timeout=30.0) as sock:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                sock.sendall(_raw_request("GET", "/healthz"))
                ((status, _),) = _read_responses(sock, 1)
                assert status == 200
                time.sleep(timeout_s * 4)  # idle well past the request budget
                source = corpus[0]
                sock.sendall(
                    _raw_request(
                        "POST", "/scan", _scan_payload(source.name, source.source)
                    )
                )
                ((status, payload),) = _read_responses(sock, 1)
                assert status == 200, payload

    def test_in_flight_scan_is_exempt_from_the_request_timeout(
        self, artifact, corpus
    ):
        """A dispatched request waiting on its batch window is not slow."""
        with ScanService(
            artifact, port=0, request_timeout_s=0.2, batch_window_s=0.6, max_batch=64
        ) as svc:
            with ScanServiceClient(svc.host, svc.port) as probe:
                probe.wait_until_ready()
            source = corpus[0]
            with socket.create_connection((svc.host, svc.port), timeout=30.0) as sock:
                sock.sendall(
                    _raw_request(
                        "POST", "/scan", _scan_payload(source.name, source.source)
                    )
                )
                # The batch window (0.6s) exceeds the request timeout
                # (0.2s) threefold; the sweep must leave it alone.
                ((status, payload),) = _read_responses(sock, 1)
                assert status == 200, payload


class TestMidBatchDrain:
    def test_shutdown_mid_window_drains_every_accepted_request(
        self, artifact, corpus
    ):
        """Requests inside an open batch window finish with 200 on shutdown."""
        svc = ScanService(
            artifact, port=0, batch_window_s=1.0, max_batch=64
        ).start()
        with ScanServiceClient(svc.host, svc.port) as probe:
            probe.wait_until_ready()
        n_requests = 8
        outcomes = [None] * n_requests

        def scan_one(i: int) -> None:
            source = corpus[i % len(corpus)]
            with socket.create_connection((svc.host, svc.port), timeout=60.0) as sock:
                sock.sendall(
                    _raw_request(
                        "POST",
                        "/scan",
                        _scan_payload(f"drain_{i}_{source.name}", source.source),
                    )
                )
                outcomes[i] = _read_responses(sock, 1, timeout=60.0)[0]

        threads = [
            threading.Thread(target=scan_one, args=(i,)) for i in range(n_requests)
        ]
        for thread in threads:
            thread.start()
        # Wait until every request is inside the batcher's open window,
        # then yank the service out from under them.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if svc.batcher.in_flight_requests >= n_requests:
                break
            time.sleep(0.01)
        assert svc.batcher.in_flight_requests >= n_requests
        svc.shutdown()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(thread.is_alive() for thread in threads)
        for i, outcome in enumerate(outcomes):
            assert outcome is not None, f"request {i} got no response"
            status, payload = outcome
            assert status == 200, (i, payload)
            assert payload["records"][0]["decision"] is not None

    def test_requests_after_drain_are_refused_not_hung(self, artifact, corpus):
        svc = ScanService(artifact, port=0, batch_window_s=0.0).start()
        client = ScanServiceClient(svc.host, svc.port)
        client.wait_until_ready()
        svc.shutdown()
        t_start = time.monotonic()
        with pytest.raises(Exception):
            client.scan_texts([(corpus[0].name, corpus[0].source)])
        assert time.monotonic() - t_start < 30.0
        client.close()


class TestSigtermDrain:
    def test_sigterm_mid_batch_exits_clean_with_zero_drops(
        self, artifact, corpus, tmp_path
    ):
        """The subprocess variant: SIGTERM lands mid-window, nothing drops."""
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--artifact",
                str(artifact),
                "--port",
                "0",
                "--batch-window-ms",
                "800",
                "--max-batch",
                "64",
                "--cache-dir",
                str(tmp_path / "cache"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=dict(os.environ, PYTHONPATH=str(Path(__file__).parent.parent / "src")),
        )
        try:
            port = None
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline and port is None:
                line = proc.stdout.readline()
                if not line:
                    break
                if "http://" in line:
                    port = int(line.split("http://")[1].split()[0].split(":")[1])
            assert port is not None, "service never announced its port"

            n_requests = 6
            outcomes = [None] * n_requests

            def scan_one(i: int) -> None:
                source = corpus[i % len(corpus)]
                with socket.create_connection(
                    ("127.0.0.1", port), timeout=60.0
                ) as sock:
                    sock.sendall(
                        _raw_request(
                            "POST",
                            "/scan",
                            _scan_payload(f"term_{i}_{source.name}", source.source),
                        )
                    )
                    outcomes[i] = _read_responses(sock, 1, timeout=60.0)[0]

            threads = [
                threading.Thread(target=scan_one, args=(i,))
                for i in range(n_requests)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.3)  # inside the 800ms batch window
            proc.send_signal(signal.SIGTERM)
            for thread in threads:
                thread.join(timeout=60.0)
            output, _ = proc.communicate(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, output
        assert "shutdown clean" in output
        for i, outcome in enumerate(outcomes):
            assert outcome is not None, f"request {i} dropped: {output}"
            status, payload = outcome
            assert status == 200, (i, payload)
