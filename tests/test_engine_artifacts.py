"""Artifact round-trip tests: train -> save -> load -> identical p-values."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.conformal import InductiveConformalClassifier
from repro.core.config import ClassifierConfig, NoodleConfig
from repro.core.fusion import EarlyFusionModel, LateFusionModel, SingleModalityModel
from repro.core.noodle import NOODLE
from repro.engine import (
    ArtifactError,
    load_detector,
    recalibrate_detector,
    save_detector,
    train_detector,
)
from repro.engine.artifacts import load_manifest


def tiny_config(seed: int = 0, **overrides) -> NoodleConfig:
    config = NoodleConfig(
        classifier=ClassifierConfig(epochs=3, seed=seed), seed=seed, **overrides
    )
    config.validate()
    return config


@pytest.fixture(scope="module")
def late_model(small_features):
    return LateFusionModel(tiny_config()).fit(small_features)


class TestArtifactRoundTrip:
    def test_late_fusion_bit_identical(self, late_model, small_features, tmp_path):
        expected = late_model.p_values(small_features)
        save_detector(late_model, tmp_path / "artifact")
        loaded, manifest = load_detector(tmp_path / "artifact")
        assert manifest["kind"] == "late_fusion"
        assert np.array_equal(loaded.p_values(small_features), expected)

    def test_early_fusion_bit_identical(self, small_features, tmp_path):
        model = EarlyFusionModel(tiny_config(seed=1)).fit(small_features)
        expected = model.p_values(small_features)
        save_detector(model, tmp_path / "artifact")
        loaded, manifest = load_detector(tmp_path / "artifact")
        assert manifest["kind"] == "early_fusion"
        assert np.array_equal(loaded.p_values(small_features), expected)

    def test_single_modality_bit_identical(self, small_features, tmp_path):
        model = SingleModalityModel("tabular", tiny_config(seed=2)).fit(small_features)
        expected = model.p_values(small_features)
        save_detector(model, tmp_path / "artifact")
        loaded, manifest = load_detector(tmp_path / "artifact")
        assert manifest["kind"] == "single"
        assert manifest["modality"] == "tabular"
        assert np.array_equal(loaded.p_values(small_features), expected)

    def test_predictions_and_regions_survive(self, late_model, small_features, tmp_path):
        save_detector(late_model, tmp_path / "artifact")
        loaded, _ = load_detector(tmp_path / "artifact")
        assert np.array_equal(loaded.predict(small_features), late_model.predict(small_features))
        original_regions = late_model.prediction_regions(small_features)
        loaded_regions = loaded.prediction_regions(small_features)
        assert [r.labels for r in loaded_regions] == [r.labels for r in original_regions]

    def test_config_round_trips_through_manifest(self, late_model, small_features, tmp_path):
        save_detector(late_model, tmp_path / "artifact")
        _, manifest = load_detector(tmp_path / "artifact")
        assert NoodleConfig.from_dict(manifest["config"]).to_dict() == manifest["config"]

    def test_noodle_report_recorded(self, small_features, tmp_path):
        noodle = NOODLE(tiny_config(seed=3))
        noodle.fit(small_features)
        save_detector(noodle, tmp_path / "artifact")
        manifest = load_manifest(tmp_path / "artifact")
        assert manifest["noodle_report"]["winner"] in ("early_fusion", "late_fusion")
        loaded, _ = load_detector(tmp_path / "artifact")
        assert np.array_equal(
            loaded.p_values(small_features), noodle.p_values(small_features)
        )

    def test_fingerprint_changes_with_model(self, small_features, tmp_path):
        a = LateFusionModel(tiny_config(seed=4)).fit(small_features)
        b = LateFusionModel(tiny_config(seed=5)).fit(small_features)
        save_detector(a, tmp_path / "a")
        save_detector(b, tmp_path / "b")
        assert load_manifest(tmp_path / "a")["fingerprint"] != load_manifest(tmp_path / "b")[
            "fingerprint"
        ]


class TestArtifactErrors:
    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="unfitted"):
            save_detector(LateFusionModel(tiny_config()), tmp_path / "artifact")

    def test_missing_artifact(self, tmp_path):
        with pytest.raises(ArtifactError, match="manifest"):
            load_detector(tmp_path / "nope")

    def test_unsupported_schema_version(self, late_model, tmp_path):
        path = save_detector(late_model, tmp_path / "artifact")
        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="schema version"):
            load_detector(path)


class TestIcpCalibrationState:
    def _calibrated(self, mondrian: bool = True) -> InductiveConformalClassifier:
        rng = np.random.default_rng(0)
        probabilities = rng.random((60, 2))
        probabilities /= probabilities.sum(axis=1, keepdims=True)
        labels = rng.integers(0, 2, size=60)
        return InductiveConformalClassifier(mondrian=mondrian).calibrate(
            probabilities, labels
        )

    @pytest.mark.parametrize("mondrian", [True, False])
    def test_round_trip_bit_identical(self, mondrian):
        icp = self._calibrated(mondrian=mondrian)
        restored = InductiveConformalClassifier.from_calibration_state(
            icp.calibration_state()
        )
        rng = np.random.default_rng(1)
        test = rng.random((25, 2))
        test /= test.sum(axis=1, keepdims=True)
        assert np.array_equal(restored.p_values(test), icp.p_values(test))
        assert restored.mondrian == icp.mondrian
        assert restored.n_classes == icp.n_classes

    def test_uncalibrated_rejected(self):
        with pytest.raises(RuntimeError):
            InductiveConformalClassifier().calibration_state()

    def test_callable_nonconformity_rejected(self):
        icp = InductiveConformalClassifier(nonconformity=lambda p, y: 1.0 - p[np.arange(len(y)), y])
        probabilities = np.array([[0.3, 0.7], [0.8, 0.2]])
        icp.calibrate(probabilities, np.array([1, 0]))
        with pytest.raises(ValueError, match="callable"):
            icp.calibration_state()


class TestRecalibration:
    def test_recalibrate_then_round_trip(self, small_features, tmp_path):
        result = train_detector(small_features, strategy="late", config=tiny_config(seed=6))
        model = result.model
        recalibrate_detector(model, small_features)
        expected = model.p_values(small_features)
        save_detector(model, tmp_path / "artifact")
        loaded, _ = load_detector(tmp_path / "artifact")
        assert np.array_equal(loaded.p_values(small_features), expected)

    def test_recalibrate_unfitted_rejected(self, small_features):
        with pytest.raises(RuntimeError, match="unfitted"):
            recalibrate_detector(LateFusionModel(tiny_config()), small_features)


class TestFleetManifest:
    def test_round_trip_with_relative_paths(self, small_features, tmp_path):
        from repro.engine.artifacts import load_fleet_manifest, save_fleet_manifest

        model = train_detector(
            small_features, strategy="late", config=tiny_config(seed=7)
        ).model
        art_a = save_detector(model, tmp_path / "fleet" / "a")
        art_b = save_detector(model, tmp_path / "fleet" / "b")
        manifest = save_fleet_manifest(
            tmp_path / "fleet" / "fleet.json", {"a": art_a, "b": art_b}, default="b"
        )
        # Members inside the manifest's directory are stored relative, so
        # the whole fleet directory can be moved as one unit.
        raw = json.loads(manifest.read_text())
        assert raw["artifacts"] == {"a": "a", "b": "b"}
        artifacts, default = load_fleet_manifest(manifest)
        assert default == "b"
        assert artifacts == {"a": art_a.resolve(), "b": art_b.resolve()}

    def test_unknown_default_rejected_on_save(self, tmp_path):
        from repro.engine.artifacts import save_fleet_manifest

        with pytest.raises(ArtifactError, match="default"):
            save_fleet_manifest(
                tmp_path / "fleet.json", {"a": tmp_path / "a"}, default="nope"
            )

    def test_empty_fleet_rejected(self, tmp_path):
        from repro.engine.artifacts import save_fleet_manifest

        with pytest.raises(ArtifactError):
            save_fleet_manifest(tmp_path / "fleet.json", {})

    def test_broken_member_fails_fast_on_load(self, small_features, tmp_path):
        from repro.engine.artifacts import load_fleet_manifest, save_fleet_manifest

        model = train_detector(
            small_features, strategy="late", config=tiny_config(seed=7)
        ).model
        art = save_detector(model, tmp_path / "a")
        manifest = save_fleet_manifest(tmp_path / "fleet.json", {"a": art})
        (art / "manifest.json").unlink()
        with pytest.raises(ArtifactError):
            load_fleet_manifest(manifest)
