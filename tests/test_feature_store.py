"""Feature-store tests: round-trips, corruption, schema invalidation,
concurrent writers, byte-identical warm-feature rescans and legacy layouts."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import ClassifierConfig, NoodleConfig
from repro.engine import FeatureStore, ScanCache, ScanEngine, train_detector
from repro.engine.feature_store import (
    SEGMENT_COMPACT_THRESHOLD,
    SEGMENT_SUFFIX,
    describe_feature_tier,
    gc_feature_tier,
)
from repro.engine.scan import assemble_features, extract_feature_rows, sources_from_pairs
from repro.engine.scheduler import ScanScheduler
from repro.features.pipeline import feature_schema_fingerprint
from repro.trojan import SuiteConfig, TrojanDataset


@pytest.fixture(scope="module")
def detector(small_features):
    config = NoodleConfig(classifier=ClassifierConfig(epochs=3, seed=0), seed=0)
    return train_detector(small_features, strategy="late", config=config).model


@pytest.fixture(scope="module")
def scan_batch():
    suite = TrojanDataset.generate(
        SuiteConfig(n_trojan_free=6, n_trojan_infected=3, seed=41)
    )
    return sources_from_pairs((b.name, b.source) for b in suite.benchmarks)


def _shard_files(store: FeatureStore):
    return sorted(store.namespace_dir.glob("shards/*.npz"))


class TestRoundTrip:
    def test_put_flush_get_exact_arrays(self, scan_batch, tmp_path):
        store = FeatureStore(tmp_path / "features")
        rows, errors = extract_feature_rows(scan_batch, workers=1, store=store)
        assert not errors and len(rows) == len(scan_batch)
        assert store.flush() is not None
        reread = FeatureStore(tmp_path / "features")
        for i, src in enumerate(scan_batch):
            stored = reread.get(src.sha256)
            assert stored is not None
            for original, loaded in zip(rows[i], stored):
                assert original.dtype == loaded.dtype
                assert np.array_equal(original, loaded)

    def test_flush_without_dirty_rows_is_a_noop(self, tmp_path):
        store = FeatureStore(tmp_path / "features")
        assert store.flush() is None

    def test_extract_consults_store_before_frontend(self, scan_batch, tmp_path):
        store = FeatureStore(tmp_path / "features")
        extract_feature_rows(scan_batch, workers=1, store=store)
        store.flush()
        warm = FeatureStore(tmp_path / "features")
        rows, errors = extract_feature_rows(scan_batch, workers=1, store=warm)
        assert not errors
        assert warm.n_hits == len(scan_batch) and warm.n_misses == 0
        assert len(rows) == len(scan_batch)

    def test_shard_bytes_are_deterministic(self, scan_batch, tmp_path):
        for name in ("a", "b"):
            store = FeatureStore(tmp_path / name)
            extract_feature_rows(scan_batch, workers=1, store=store)
            store.flush()
        files_a = _shard_files(FeatureStore(tmp_path / "a"))
        files_b = _shard_files(FeatureStore(tmp_path / "b"))
        assert [p.name for p in files_a] == [p.name for p in files_b]
        for pa, pb in zip(files_a, files_b):
            assert pa.read_bytes() == pb.read_bytes()


class TestCorruptionQuarantine:
    def test_truncated_shard_is_quarantined_not_fatal(self, scan_batch, tmp_path):
        store = FeatureStore(tmp_path / "features")
        extract_feature_rows(scan_batch, workers=1, store=store)
        store.flush()
        victim = _shard_files(store)[0]
        victim.write_bytes(victim.read_bytes()[:40])
        reread = FeatureStore(tmp_path / "features")
        # Rows in the corrupt shard are simply misses; nothing raises.
        results = [reread.get(src.sha256) for src in scan_batch]
        assert any(r is None for r in results)
        assert victim.with_name(victim.name + ".corrupt").is_file()
        assert not victim.is_file()

    def test_non_npz_garbage_is_quarantined(self, scan_batch, tmp_path):
        store = FeatureStore(tmp_path / "features")
        extract_feature_rows(scan_batch, workers=1, store=store)
        store.flush()
        for shard in _shard_files(store):
            shard.write_text("this is not a zip archive")
        reread = FeatureStore(tmp_path / "features")
        assert all(reread.get(src.sha256) is None for src in scan_batch)
        corrupt = list(reread.namespace_dir.glob("shards/*.corrupt"))
        assert corrupt

    def test_quarantined_rows_are_reextracted_and_repersisted(
        self, scan_batch, tmp_path
    ):
        store = FeatureStore(tmp_path / "features")
        extract_feature_rows(scan_batch, workers=1, store=store)
        store.flush()
        for shard in _shard_files(store):
            shard.write_bytes(b"junk")
        healed = FeatureStore(tmp_path / "features")
        rows, errors = extract_feature_rows(scan_batch, workers=1, store=healed)
        assert not errors and len(rows) == len(scan_batch)
        healed.flush()
        final = FeatureStore(tmp_path / "features")
        assert all(final.get(src.sha256) is not None for src in scan_batch)


class TestSchemaInvalidation:
    def test_different_image_size_uses_a_disjoint_namespace(
        self, scan_batch, tmp_path
    ):
        store16 = FeatureStore(tmp_path / "features", image_size=16)
        extract_feature_rows(scan_batch, workers=1, store=store16)
        store16.flush()
        store8 = FeatureStore(tmp_path / "features", image_size=8)
        assert store8.namespace_dir != store16.namespace_dir
        assert all(store8.get(src.sha256) is None for src in scan_batch)

    def test_extraction_version_bump_invalidates(
        self, scan_batch, tmp_path, monkeypatch
    ):
        store = FeatureStore(tmp_path / "features")
        extract_feature_rows(scan_batch, workers=1, store=store)
        store.flush()
        import repro.features.pipeline as pipeline

        monkeypatch.setattr(pipeline, "FEATURE_EXTRACTION_VERSION", 999)
        assert feature_schema_fingerprint() != store.schema_fingerprint
        bumped = FeatureStore(tmp_path / "features")
        assert bumped.namespace_dir != store.namespace_dir
        assert all(bumped.get(src.sha256) is None for src in scan_batch)

    def test_foreign_schema_shard_is_ignored_not_served(self, scan_batch, tmp_path):
        store = FeatureStore(tmp_path / "features")
        extract_feature_rows(scan_batch, workers=1, store=store)
        store.flush()
        # Forge a namespace-dir collision: move the shards under a fake
        # namespace whose 16-char prefix another schema would claim.
        foreign = FeatureStore(tmp_path / "features", image_size=8)
        foreign_shards = foreign.namespace_dir / "shards"
        foreign_shards.mkdir(parents=True)
        for shard in _shard_files(store):
            (foreign_shards / shard.name).write_bytes(shard.read_bytes())
        # The embedded full fingerprint mismatches -> rows are not served.
        assert all(foreign.get(src.sha256) is None for src in scan_batch)


class TestConcurrentWriters:
    def test_two_handles_interleaved_flushes_keep_all_rows(
        self, scan_batch, tmp_path
    ):
        half = len(scan_batch) // 2
        first, second = scan_batch[:half], scan_batch[half:]
        store_a = FeatureStore(tmp_path / "features")
        store_b = FeatureStore(tmp_path / "features")
        extract_feature_rows(first, workers=1, store=store_a)
        extract_feature_rows(second, workers=1, store=store_b)
        store_a.flush()
        store_b.flush()  # read-merge-write must keep store_a's rows
        merged = FeatureStore(tmp_path / "features")
        assert all(merged.get(src.sha256) is not None for src in scan_batch)

    def test_two_schedulers_share_one_store(self, detector, scan_batch, tmp_path):
        # Two schedulers (fresh fingerprints = cold result tiers) sharing
        # one feature-store root: the first pays extraction, the second
        # serves every row from the store; records are identical.
        feature_dir = tmp_path / "features"
        reports = []
        for fingerprint in ("fp-one", "fp-two"):
            with ScanScheduler(
                model=detector,
                fingerprint=fingerprint,
                cache=ScanCache(tmp_path / "cache", fingerprint),
                feature_store_dir=feature_dir,
                jobs=1,
                shard_size=4,
            ) as scheduler:
                reports.append(scheduler.scan_sources(scan_batch))
        assert reports[0].n_feature_hits == 0
        assert reports[1].n_feature_hits == len(scan_batch)
        first = [r.to_dict() for r in reports[0].records]
        second = [r.to_dict() for r in reports[1].records]
        assert first == second


class TestByteIdenticalRecords:
    def test_warm_feature_cold_model_scan_matches_no_cache_serial(
        self, detector, scan_batch, tmp_path
    ):
        # The acceptance property: a scan under a fresh fingerprint that
        # serves every feature row from the store must produce records
        # byte-identical to an uncached serial scan.
        baseline = ScanEngine(detector).scan_sources(scan_batch, workers=1)
        seed_store = FeatureStore(tmp_path / "features")
        ScanEngine(detector, fingerprint="fp-a", feature_store=seed_store).scan_sources(
            scan_batch, workers=1
        )
        warm = ScanEngine(
            detector,
            fingerprint="fp-b",
            cache=ScanCache(tmp_path / "cache", "fp-b"),
            feature_store=FeatureStore(tmp_path / "features"),
        ).scan_sources(scan_batch, workers=1)
        assert warm.n_feature_hits == len(scan_batch)
        assert warm.n_cache_hits == 0
        expected = json.dumps([r.to_dict() for r in baseline.records], sort_keys=True)
        observed = json.dumps([r.to_dict() for r in warm.records], sort_keys=True)
        assert expected == observed

    def test_preallocated_assembly_matches_stacking(self, scan_batch):
        rows_map, errors = extract_feature_rows(scan_batch, workers=1)
        assert not errors
        rows = [rows_map[i] for i in range(len(scan_batch))]
        names = [s.name for s in scan_batch]
        batch = assemble_features(rows, names)
        assert np.array_equal(batch.tabular, np.vstack([r[0] for r in rows]))
        assert np.array_equal(batch.graph, np.vstack([r[1] for r in rows]))
        assert np.array_equal(
            batch.graph_images, np.stack([r[2] for r in rows], axis=0)
        )
        assert batch.tabular.dtype == rows[0][0].dtype
        assert batch.graph_images.dtype == rows[0][2].dtype

    def test_empty_assembly_shapes(self):
        batch = assemble_features([], [], image_size=16)
        assert batch.tabular.shape[0] == 0
        assert batch.graph_images.shape == (0, 1, 16, 16)


class TestEngineIntegration:
    def test_result_tier_takes_precedence_over_feature_tier(
        self, detector, scan_batch, tmp_path
    ):
        engine = ScanEngine(
            detector,
            fingerprint="fp-hot",
            cache=ScanCache(tmp_path / "cache", "fp-hot"),
            feature_store=FeatureStore(tmp_path / "features"),
        )
        engine.scan_sources(scan_batch, workers=1)
        again = engine.scan_sources(scan_batch, workers=1)
        assert again.n_cache_hits == len(scan_batch)
        assert again.n_feature_hits == 0  # never reached the feature tier

    def test_legacy_cache_dir_without_feature_tier_still_works(
        self, detector, scan_batch, tmp_path
    ):
        # A pre-feature-tier cache directory: legacy v1 single-file result
        # store, no features/ subdir.  Attaching both tiers must serve the
        # legacy records, migrate them, and start the feature tier fresh.
        legacy_cache = ScanCache(tmp_path / "cache", "fp-legacy")
        seeded = ScanEngine(
            detector, fingerprint="fp-legacy", cache=legacy_cache
        ).scan_sources(scan_batch, workers=1)
        # Rewrite the store as the legacy v1 single-file blob.
        for shard in (tmp_path / "cache" / "fp-legacy"[:16] / "shards").glob("*.json"):
            shard.unlink()
        legacy_blob = tmp_path / "cache" / f"scan_cache_{'fp-legacy'[:16]}.json"
        legacy_blob.write_text(
            json.dumps(
                {
                    "schema_version": 1,
                    "fingerprint": "fp-legacy",
                    "records": {
                        r.sha256: dict(r.to_dict(), cached=False)
                        for r in seeded.records
                    },
                }
            )
        )
        engine = ScanEngine(
            detector,
            fingerprint="fp-legacy",
            cache=ScanCache(tmp_path / "cache", "fp-legacy"),
            feature_store=FeatureStore(tmp_path / "cache" / "features"),
        )
        report = engine.scan_sources(scan_batch, workers=1)
        assert report.n_cache_hits == len(scan_batch)
        assert not legacy_blob.is_file()  # migrated on flush

    def test_feature_store_flush_deferred_with_flush_cache_false(
        self, detector, scan_batch, tmp_path
    ):
        store = FeatureStore(tmp_path / "features")
        engine = ScanEngine(detector, feature_store=store)
        engine.scan_sources(scan_batch, workers=1, flush_cache=False)
        assert not _shard_files(store)  # nothing on disk yet
        store.flush()
        assert _shard_files(store)


class TestDescribe:
    def test_describe_feature_tier_counts_rows(self, scan_batch, tmp_path):
        store = FeatureStore(tmp_path / "features")
        extract_feature_rows(scan_batch, workers=1, store=store)
        store.flush()
        info = describe_feature_tier(tmp_path / "features")
        assert info["n_rows"] == len(scan_batch)
        assert len(info["namespaces"]) == 1
        assert info["namespaces"][0]["schema"] == store.schema_fingerprint[:16]
        assert info["bytes"] > 0

    def test_describe_missing_dir_is_empty(self, tmp_path):
        info = describe_feature_tier(tmp_path / "nope")
        assert info["n_rows"] == 0 and info["namespaces"] == []


class TestAppendOnlySegments:
    """Flush appends segments; compaction folds them into base shards."""

    def _store_with_rows(self, scan_batch, directory):
        store = FeatureStore(directory)
        extract_feature_rows(scan_batch, workers=1, store=store)
        store.flush()
        return store

    def test_flush_writes_numbered_segments_not_base_shards(
        self, scan_batch, tmp_path
    ):
        store = self._store_with_rows(scan_batch, tmp_path / "features")
        segments = sorted(store.namespace_dir.glob(f"shards/*{SEGMENT_SUFFIX}"))
        assert segments, "flush should write append-only segment files"
        for path in segments:
            # <prefix>.<seq:08d>.seg.npz
            seq = path.name[: -len(SEGMENT_SUFFIX)].rsplit(".", 1)[1]
            assert len(seq) == 8 and seq.isdigit()

    def test_merge_on_read_newest_segment_wins(self, scan_batch, tmp_path):
        store = self._store_with_rows(scan_batch, tmp_path / "features")
        target = scan_batch[0]
        original = store.get(target.sha256)
        # Re-put the same hash with different arrays: the second flush
        # writes a newer segment that must shadow the first on re-read.
        replacement = tuple(arr + 1.0 for arr in original)
        store.put(target.sha256, replacement)
        store.flush()
        reread = FeatureStore(tmp_path / "features")
        loaded = reread.get(target.sha256)
        for new, got in zip(replacement, loaded):
            assert np.array_equal(new, got)

    def test_compact_folds_segments_and_preserves_rows(self, scan_batch, tmp_path):
        store = self._store_with_rows(scan_batch, tmp_path / "features")
        store.put(scan_batch[0].sha256, store.get(scan_batch[0].sha256))
        store.flush()
        compacting = FeatureStore(tmp_path / "features")
        folded = compacting.compact()
        assert folded >= 2
        assert not list(compacting.namespace_dir.glob(f"shards/*{SEGMENT_SUFFIX}"))
        reread = FeatureStore(tmp_path / "features")
        for src in scan_batch:
            assert reread.get(src.sha256) is not None

    def test_flush_auto_compacts_at_threshold(self, scan_batch, tmp_path):
        store = self._store_with_rows(scan_batch, tmp_path / "features")
        target = scan_batch[0]
        row = store.get(target.sha256)
        for _ in range(SEGMENT_COMPACT_THRESHOLD):
            store.put(target.sha256, row)
            store.flush()
        # The threshold-th flush triggers an inline fold: no segment
        # backlog survives unbounded growth.
        prefix_segments = [
            p
            for p in store.namespace_dir.glob(f"shards/*{SEGMENT_SUFFIX}")
            if p.name.startswith(target.sha256[:2])
        ]
        assert len(prefix_segments) < SEGMENT_COMPACT_THRESHOLD

    def test_describe_reports_segment_counts(self, scan_batch, tmp_path):
        store = self._store_with_rows(scan_batch, tmp_path / "features")
        info = describe_feature_tier(tmp_path / "features")
        assert info["namespaces"][0]["n_segments"] >= 1
        compacted = FeatureStore(tmp_path / "features")
        compacted.compact()
        info = describe_feature_tier(tmp_path / "features")
        assert info["namespaces"][0]["n_segments"] == 0


class TestGcFeatureTier:
    def test_gc_removes_retired_namespaces_and_folds_segments(
        self, scan_batch, tmp_path
    ):
        directory = tmp_path / "features"
        store = FeatureStore(directory)
        extract_feature_rows(scan_batch, workers=1, store=store)
        store.flush()
        retired = directory / "feedfacefeedface"
        (retired / "shards").mkdir(parents=True)
        (retired / "shards" / "old.npz").write_bytes(b"y" * 256)
        summary = gc_feature_tier(directory)
        assert summary["current_schema"] == store.namespace_dir.name
        assert summary["n_segments_folded"] >= 1
        assert summary["retired_namespaces_removed"] == ["feedfacefeedface"]
        assert summary["bytes_reclaimed"] >= 256
        assert not retired.exists()
        # The surviving namespace still serves every row.
        reread = FeatureStore(directory)
        for src in scan_batch:
            assert reread.get(src.sha256) is not None

    def test_gc_on_empty_directory(self, tmp_path):
        summary = gc_feature_tier(tmp_path / "nothing")
        assert summary["n_segments_folded"] == 0
        assert summary["retired_namespaces_removed"] == []
        assert summary["bytes_reclaimed"] == 0
