"""Finite-difference gradient checks for every layer and loss.

These are the load-bearing tests of the ``repro.nn`` substrate: a layer with
a subtly wrong backward pass can still "train" yet silently degrade every
model built on top of it, so each backward implementation is compared
against a central-difference numerical gradient.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1d,
    Conv1d,
    Conv2d,
    Dense,
    Flatten,
    GlobalAveragePool1d,
    LeakyReLU,
    MaxPool1d,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn.losses import (
    BinaryCrossEntropy,
    BinaryCrossEntropyWithLogits,
    CategoricalCrossEntropy,
    HingeLoss,
    MeanSquaredError,
    SoftmaxCrossEntropy,
)

_EPS = 1e-6
_TOL = 1e-5


def _numerical_gradient(func, array: np.ndarray) -> np.ndarray:
    """Central-difference gradient of a scalar function w.r.t. ``array``."""
    gradient = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + _EPS
        plus = func()
        flat[i] = original - _EPS
        minus = func()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * _EPS)
    return gradient


def _check_layer_gradients(layer, x: np.ndarray, training: bool = True) -> None:
    """Compare analytic input/parameter gradients with numerical ones.

    The scalar objective is ``sum(forward(x))`` so the upstream gradient is a
    tensor of ones.
    """
    def objective() -> float:
        return float(np.sum(layer.forward(x, training=training)))

    output = layer.forward(x, training=training)
    layer.zero_grad()
    grad_input = layer.backward(np.ones_like(output))

    numerical_input = _numerical_gradient(objective, x)
    np.testing.assert_allclose(grad_input, numerical_input, atol=_TOL, rtol=1e-4)

    for param, grad in zip(layer.parameters(), layer.gradients()):
        numerical_param = _numerical_gradient(objective, param)
        np.testing.assert_allclose(grad, numerical_param, atol=_TOL, rtol=1e-4)


@pytest.fixture
def generator() -> np.random.Generator:
    return np.random.default_rng(0)


class TestLayerGradients:
    def test_dense(self, generator) -> None:
        layer = Dense(5, 4, rng=generator)
        _check_layer_gradients(layer, generator.normal(size=(3, 5)))

    def test_dense_without_bias(self, generator) -> None:
        layer = Dense(4, 3, use_bias=False, rng=generator)
        _check_layer_gradients(layer, generator.normal(size=(2, 4)))

    def test_conv1d(self, generator) -> None:
        layer = Conv1d(2, 3, kernel_size=3, rng=generator)
        _check_layer_gradients(layer, generator.normal(size=(2, 2, 7)))

    def test_conv1d_with_padding_and_stride(self, generator) -> None:
        layer = Conv1d(2, 2, kernel_size=3, stride=2, padding=1, rng=generator)
        _check_layer_gradients(layer, generator.normal(size=(2, 2, 8)))

    def test_conv2d(self, generator) -> None:
        layer = Conv2d(2, 3, kernel_size=3, rng=generator)
        _check_layer_gradients(layer, generator.normal(size=(2, 2, 5, 5)))

    def test_conv2d_with_padding(self, generator) -> None:
        layer = Conv2d(1, 2, kernel_size=3, padding=1, rng=generator)
        _check_layer_gradients(layer, generator.normal(size=(2, 1, 4, 4)))

    def test_maxpool1d(self, generator) -> None:
        # Distinct values avoid ties, which a numerical gradient cannot resolve.
        x = generator.permutation(np.linspace(-1.0, 1.0, 2 * 2 * 8)).reshape(2, 2, 8)
        _check_layer_gradients(MaxPool1d(2), x)

    def test_maxpool2d(self, generator) -> None:
        x = generator.permutation(np.linspace(-1.0, 1.0, 2 * 1 * 6 * 6)).reshape(2, 1, 6, 6)
        _check_layer_gradients(MaxPool2d(2), x)

    def test_global_average_pool(self, generator) -> None:
        _check_layer_gradients(GlobalAveragePool1d(), generator.normal(size=(3, 4, 6)))

    def test_flatten(self, generator) -> None:
        _check_layer_gradients(Flatten(), generator.normal(size=(2, 3, 4)))

    def test_relu(self, generator) -> None:
        x = generator.normal(size=(4, 5))
        x[np.abs(x) < 0.05] = 0.2  # keep away from the kink
        _check_layer_gradients(ReLU(), x)

    def test_leaky_relu(self, generator) -> None:
        x = generator.normal(size=(4, 5))
        x[np.abs(x) < 0.05] = -0.3
        _check_layer_gradients(LeakyReLU(0.1), x)

    def test_sigmoid(self, generator) -> None:
        _check_layer_gradients(Sigmoid(), generator.normal(size=(4, 5)))

    def test_tanh(self, generator) -> None:
        _check_layer_gradients(Tanh(), generator.normal(size=(4, 5)))

    def test_softmax(self, generator) -> None:
        _check_layer_gradients(Softmax(), generator.normal(size=(4, 5)))

    def test_batchnorm(self, generator) -> None:
        layer = BatchNorm1d(5)
        _check_layer_gradients(layer, generator.normal(size=(8, 5)), training=True)


class TestLossGradients:
    def _check(self, loss, pred: np.ndarray, target: np.ndarray) -> None:
        analytic = loss.gradient(pred, target)

        def objective() -> float:
            return float(loss.loss(pred, target))

        numerical = _numerical_gradient(objective, pred)
        np.testing.assert_allclose(analytic, numerical, atol=1e-5, rtol=1e-4)

    def test_mse(self, generator) -> None:
        self._check(
            MeanSquaredError(),
            generator.normal(size=(6, 3)),
            generator.normal(size=(6, 3)),
        )

    def test_binary_crossentropy(self, generator) -> None:
        pred = generator.uniform(0.1, 0.9, size=(8, 1))
        target = generator.integers(0, 2, size=(8, 1)).astype(float)
        self._check(BinaryCrossEntropy(), pred, target)

    def test_binary_crossentropy_logits(self, generator) -> None:
        pred = generator.normal(size=(8,))
        target = generator.integers(0, 2, size=(8,)).astype(float)
        self._check(BinaryCrossEntropyWithLogits(), pred, target)

    def test_categorical_crossentropy(self, generator) -> None:
        raw = generator.uniform(0.1, 1.0, size=(5, 3))
        pred = raw / raw.sum(axis=1, keepdims=True)
        target = np.eye(3)[generator.integers(0, 3, size=5)]
        self._check(CategoricalCrossEntropy(), pred, target)

    def test_softmax_crossentropy(self, generator) -> None:
        pred = generator.normal(size=(5, 4))
        target = generator.integers(0, 4, size=5)
        self._check(SoftmaxCrossEntropy(), pred, target)

    def test_hinge(self, generator) -> None:
        pred = generator.normal(size=(10,)) * 2
        pred[np.abs(np.abs(pred) - 1.0) < 0.05] = 0.5  # keep away from the hinge point
        target = generator.integers(0, 2, size=10)
        self._check(HingeLoss(), pred, target)
