"""Chaos suite: injected faults must degrade the system, never corrupt it.

Every scenario drives a *public* surface (engine scan, scheduler pool,
serve HTTP) with failpoints activated underneath, and asserts the two
robustness invariants from ``docs/ROBUSTNESS.md``:

* every accepted request is answered and every scan completes with
  verdicts byte-identical to a fault-free serial scan;
* the degradation is observable (``repro_engine_degraded_total`` /
  ``rejected_by_reason`` move, ``/healthz`` reports active faults).
"""

from __future__ import annotations

import http.client
import json
import re
import socket
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import faults
from repro.core.config import ClassifierConfig, NoodleConfig
from repro.engine import ScanEngine, ScanScheduler, save_detector, train_detector
from repro.engine.artifacts import (
    QUANT_CACHE_NAME,
    load_quantized_state,
    prepare_quantized_state,
)
from repro.engine.bench import build_scan_batch
from repro.obs.metrics import REGISTRY
from repro.serve.client import ScanServiceClient, ScanServiceError
from repro.serve.server import ScanService


@pytest.fixture(autouse=True)
def _clean_failpoints(monkeypatch):
    """Never leak an activation table (or env spec) into the next test."""
    monkeypatch.delenv(faults.FAILPOINTS_ENV, raising=False)
    faults.configure(None)
    yield
    faults.configure(None)


@pytest.fixture(scope="module")
def detector(small_features):
    config = NoodleConfig(classifier=ClassifierConfig(epochs=3, seed=0), seed=0)
    return train_detector(small_features, strategy="late", config=config).model


@pytest.fixture(scope="module")
def artifact(detector, tmp_path_factory):
    return save_detector(detector, tmp_path_factory.mktemp("chaos") / "artifact")


@pytest.fixture(scope="module")
def corpus():
    return build_scan_batch(10, seed=91)


@pytest.fixture(scope="module")
def serial_records(detector, corpus):
    """Fault-free reference verdicts every chaos scan must reproduce."""
    return ScanEngine(detector).scan_sources(corpus, workers=1).records


def _dicts(records):
    return [r.to_dict() for r in records]


def _degraded(tier: str) -> float:
    return REGISTRY.value("repro_engine_degraded_total", tier=tier)


# -- storage-tier chaos ------------------------------------------------------


class TestStorageChaos:
    def test_cache_flush_enospc_degrades_not_fails(
        self, artifact, corpus, serial_records, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        engine = ScanEngine.from_artifact(artifact, cache_dir=cache_dir)
        before = _degraded("cache")
        faults.configure("cache.flush.io=error:OSError")
        report = engine.scan_sources(corpus, workers=1)
        assert _dicts(report.records) == _dicts(serial_records)
        assert _degraded("cache") > before
        # No partial shard may survive the failed flush.
        assert list(cache_dir.rglob("*.tmp")) == []

    def test_feature_store_flush_enospc_degrades_not_fails(
        self, artifact, corpus, serial_records, tmp_path
    ):
        store_dir = tmp_path / "features"
        engine = ScanEngine.from_artifact(artifact, feature_store_dir=store_dir)
        before = _degraded("features")
        faults.configure("features.flush.io=error:OSError")
        report = engine.scan_sources(corpus, workers=1)
        assert _dicts(report.records) == _dicts(serial_records)
        assert _degraded("features") > before
        assert list(store_dir.rglob("*.tmp")) == []

    def test_corrupt_cache_shard_is_quarantined_and_recomputed(
        self, artifact, corpus, serial_records, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        warm = ScanEngine.from_artifact(artifact, cache_dir=cache_dir)
        warm.scan_sources(corpus, workers=1)  # seed the shard on disk
        faults.configure("cache.shard.read=corrupt")
        engine = ScanEngine.from_artifact(artifact, cache_dir=cache_dir)
        report = engine.scan_sources(corpus, workers=1)
        assert _dicts(report.records) == _dicts(serial_records)
        assert list(cache_dir.rglob("*.corrupt")), "corrupt shard not quarantined"

    def test_corrupt_feature_shard_is_quarantined_and_recomputed(
        self, artifact, corpus, serial_records, tmp_path
    ):
        store_dir = tmp_path / "features"
        warm = ScanEngine.from_artifact(artifact, feature_store_dir=store_dir)
        warm.scan_sources(corpus, workers=1)
        faults.configure("features.shard.read=corrupt")
        engine = ScanEngine.from_artifact(artifact, feature_store_dir=store_dir)
        report = engine.scan_sources(corpus, workers=1)
        assert _dicts(report.records) == _dicts(serial_records)
        assert list(store_dir.rglob("*.corrupt")), "corrupt segment not quarantined"

    def test_corrupt_quantized_sidecar_is_quarantined_and_recomputed(
        self, detector, tmp_path
    ):
        """Regression: a mangled ``quantized_int8.npz`` must not crash loads."""
        art = save_detector(detector, tmp_path / "artifact")
        fingerprint = json.loads((art / "manifest.json").read_text())["fingerprint"]
        reference = prepare_quantized_state(detector, art, fingerprint)
        sidecar = art / QUANT_CACHE_NAME
        assert sidecar.is_file()
        sidecar.write_bytes(b"\x00not an npz archive")
        state = prepare_quantized_state(detector, art, fingerprint)
        assert (art / f"{QUANT_CACHE_NAME}.corrupt").is_file()
        for component, entries in reference.items():
            for key, array in entries.items():
                np.testing.assert_array_equal(state[component][key], array)
        # The recompute rewrote a valid sidecar in place.
        assert load_quantized_state(art, fingerprint) is not None

    def test_corrupt_sidecar_via_failpoint(self, detector, tmp_path):
        """Same recovery when the bytes are mangled in flight, not on disk."""
        art = save_detector(detector, tmp_path / "artifact")
        fingerprint = json.loads((art / "manifest.json").read_text())["fingerprint"]
        prepare_quantized_state(detector, art, fingerprint)
        faults.configure("artifact.quantized.read=corrupt,n=1")
        state = prepare_quantized_state(detector, art, fingerprint)
        assert set(state)  # recomputed, non-empty
        assert (art / f"{QUANT_CACHE_NAME}.corrupt").is_file()


# -- worker-pool chaos -------------------------------------------------------


class TestWorkerChaos:
    def test_killed_workers_fall_back_to_serial(
        self, detector, corpus, serial_records, monkeypatch
    ):
        """SIGKILL-grade worker loss (os._exit) must not lose the scan."""
        monkeypatch.setenv(faults.FAILPOINTS_ENV, "scheduler.worker.body=kill")
        faults.configure_from_env()  # fork-started workers inherit this table
        before = _degraded("pool")
        with ScanScheduler(
            model=detector, jobs=2, shard_size=5, shard_timeout=3.0
        ) as scheduler:
            report = scheduler.scan_sources(corpus)
        assert _dicts(report.records) == _dicts(serial_records)
        assert report.n_worker_deaths > 0
        assert _degraded("pool") > before


# -- serve chaos -------------------------------------------------------------


def _post_scan(host, port, payload, headers=None):
    """One raw POST /scan; returns (status, headers dict, body dict)."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        body = json.dumps(payload).encode("utf-8")
        all_headers = {"Content-Type": "application/json"}
        all_headers.update(headers or {})
        conn.request("POST", "/scan", body=body, headers=all_headers)
        response = conn.getresponse()
        raw = response.read()
        return (
            response.status,
            {k.lower(): v for k, v in response.getheaders()},
            json.loads(raw) if raw else {},
        )
    finally:
        conn.close()


class TestServeOverload:
    def test_admission_gate_sheds_with_429_and_retry_after(self, artifact, corpus):
        payload = {"sources": [{"name": corpus[0].name, "source": corpus[0].source}]}
        with ScanService(
            artifact,
            port=0,
            batch_window_s=0.25,
            max_batch=1,
            max_queue_depth=1,
        ) as service:
            with ScanServiceClient(service.host, service.port) as client:
                client.wait_until_ready()
            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(
                    pool.map(
                        lambda _: _post_scan(service.host, service.port, payload),
                        range(8),
                    )
                )
            statuses = [status for status, _, _ in results]
            # Every request was answered: accepted ones scanned, the rest shed.
            assert set(statuses) <= {200, 429}
            assert 200 in statuses
            shed = [
                (status, headers) for status, headers, _ in results if status == 429
            ]
            assert shed, f"no overload shedding across {statuses}"
            assert all("retry-after" in headers for _, headers in shed)
            snapshot = service.metrics.snapshot()
            assert snapshot["rejected_by_reason"].get("overload", 0) >= len(shed)

    def test_expired_deadline_returns_504(self, artifact, corpus):
        payload = {"sources": [{"name": corpus[0].name, "source": corpus[0].source}]}
        with ScanService(
            artifact, port=0, batch_window_s=0.3, max_batch=8
        ) as service:
            with ScanServiceClient(service.host, service.port) as client:
                client.wait_until_ready()
            status, _, body = _post_scan(
                service.host,
                service.port,
                payload,
                headers={"X-Repro-Deadline-Ms": "1"},
            )
            assert status == 504
            assert "deadline" in body["error"]
            # A generous deadline is honored normally.
            status, _, body = _post_scan(
                service.host,
                service.port,
                payload,
                headers={"X-Repro-Deadline-Ms": "30000"},
            )
            assert status == 200 and len(body["records"]) == 1
            snapshot = service.metrics.snapshot()
            assert snapshot["rejected_by_reason"].get("deadline", 0) >= 1

    def test_malformed_deadline_header_is_a_request_error(self, artifact, corpus):
        payload = {"sources": [{"name": corpus[0].name, "source": corpus[0].source}]}
        with ScanService(artifact, port=0, batch_window_s=0.01) as service:
            with ScanServiceClient(service.host, service.port) as client:
                client.wait_until_ready()
            for bad in ("soon", "-5", "0"):
                status, _, _ = _post_scan(
                    service.host,
                    service.port,
                    payload,
                    headers={"X-Repro-Deadline-Ms": bad},
                )
                assert status == 400

    def test_pipelining_budget_closes_greedy_connections(self, artifact, corpus):
        with ScanService(
            artifact,
            port=0,
            batch_window_s=0.2,
            max_batch=16,
            max_pipelined_requests=2,
        ) as service:
            with ScanServiceClient(service.host, service.port) as client:
                client.wait_until_ready()
            body = json.dumps(
                {"sources": [{"name": corpus[0].name, "source": corpus[0].source}]}
            ).encode("utf-8")
            scan = (
                b"POST /scan HTTP/1.1\r\nHost: t\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
            )
            healthz = b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
            with socket.create_connection(
                (service.host, service.port), timeout=30
            ) as sock:
                # One slow in-flight scan, then more pipelined requests than
                # the per-connection budget allows.
                sock.sendall(scan + healthz * 4)
                chunks = []
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
            stream = b"".join(chunks)
            # Bodies are not CRLF-terminated, so scan for status lines anywhere.
            statuses = [int(m) for m in re.findall(rb"HTTP/1\.1 (\d{3}) ", stream)]
            # scan + the two budgeted healthz answered, then the shed + close.
            assert statuses == [200, 200, 200, 429]
            assert b"Retry-After" in stream
            snapshot = service.metrics.snapshot()
            assert snapshot["rejected_by_reason"].get("connection_budget", 0) >= 1

    def test_healthz_reports_active_faults_as_degraded(self, artifact):
        with ScanService(artifact, port=0, batch_window_s=0.01) as service:
            with ScanServiceClient(service.host, service.port) as client:
                client.wait_until_ready()
                faults.configure("chaos.test.marker=delay:0")
                payload = client.healthz()
                assert payload["status"] == "degraded"
                assert [fp["name"] for fp in payload["faults"]] == [
                    "chaos.test.marker"
                ]
                faults.configure(None)
                payload = client.healthz()
                assert payload["status"] == "ok" and payload["faults"] == []

    def test_dispatch_failpoint_injects_500_then_recovers(self, artifact):
        with ScanService(artifact, port=0, batch_window_s=0.01) as service:
            with ScanServiceClient(service.host, service.port) as client:
                client.wait_until_ready()
                faults.configure("serve.dispatch=error,n=1")
                with pytest.raises(ScanServiceError) as excinfo:
                    client.healthz()
                assert excinfo.value.status == 500
            # The injected failure is bounded (n=1): service stays up and
            # keeps reporting the (now spent) failpoint until it is cleared.
            with ScanServiceClient(service.host, service.port) as client:
                payload = client.healthz()
                assert payload["status"] == "degraded"
                assert payload["faults"][0]["fired"] == 1
                faults.configure(None)
                assert client.healthz()["status"] == "ok"

    def test_overloaded_service_drains_cleanly(self, artifact, corpus):
        """Shutdown under load: accepted requests answered, no hang."""
        payload = {"sources": [{"name": s.name, "source": s.source} for s in corpus]}
        start = time.monotonic()
        with ScanService(
            artifact, port=0, batch_window_s=0.1, max_batch=4, max_queue_depth=2
        ) as service:
            with ScanServiceClient(service.host, service.port) as client:
                client.wait_until_ready()
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(_post_scan, service.host, service.port, payload)
                    for _ in range(4)
                ]
                statuses = [f.result()[0] for f in futures]
            assert all(status in (200, 429) for status in statuses)
        assert time.monotonic() - start < 60.0
