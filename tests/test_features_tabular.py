"""Tests for the tabular (code-branching) feature extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features import (
    TABULAR_FEATURE_NAMES,
    extract_tabular_features,
    tabular_feature_matrix,
    tabular_feature_vector,
)
from repro.hdl import parse_module
from repro.trojan import generate_host, insert_trojan


class TestFeatureValues:
    def test_fixture_counts(self, sample_verilog) -> None:
        features = extract_tabular_features(sample_verilog)
        assert features["n_always"] == 2
        assert features["n_sequential_always"] == 1
        assert features["n_combinational_always"] == 1
        assert features["n_case"] == 1
        assert features["n_case_items"] == 4
        assert features["n_default_items"] == 1
        assert features["n_continuous_assigns"] == 2
        assert features["n_parameters"] == 2
        assert features["n_inputs"] == 5
        assert features["n_outputs"] == 2

    def test_width_features(self, sample_verilog) -> None:
        features = extract_tabular_features(sample_verilog)
        assert features["total_input_width"] == 1 + 1 + 1 + 2 + 8
        assert features["total_output_width"] == 1 + 8
        assert features["max_reg_width"] >= 4

    def test_counter_increment_detection(self, sample_verilog) -> None:
        features = extract_tabular_features(sample_verilog)
        assert features["n_counter_increments"] == 1

    def test_accepts_parsed_module(self, sample_verilog) -> None:
        module = parse_module(sample_verilog)
        assert extract_tabular_features(module) == extract_tabular_features(sample_verilog)

    def test_minimal_module(self) -> None:
        features = extract_tabular_features(
            "module tiny (input a, output y);\n  assign y = a;\nendmodule\n"
        )
        assert features["n_always"] == 0
        assert features["branch_density"] == 0.0
        assert features["n_continuous_assigns"] == 1

    def test_all_values_finite(self, small_dataset) -> None:
        for benchmark in small_dataset:
            vector = tabular_feature_vector(benchmark.source)
            assert np.all(np.isfinite(vector))

    def test_densities_bounded(self, small_dataset) -> None:
        for benchmark in small_dataset:
            features = extract_tabular_features(benchmark.source)
            assert 0.0 <= features["comparison_density"] <= 1.0
            assert 0.0 <= features["constant_density"] <= 1.0
            assert features["xor_density"] >= 0.0


class TestVectorisation:
    def test_feature_names_sorted_and_stable(self) -> None:
        assert TABULAR_FEATURE_NAMES == sorted(TABULAR_FEATURE_NAMES)
        assert len(TABULAR_FEATURE_NAMES) == len(set(TABULAR_FEATURE_NAMES))

    def test_vector_matches_names(self, sample_verilog) -> None:
        features = extract_tabular_features(sample_verilog)
        vector = tabular_feature_vector(sample_verilog)
        assert vector.shape == (len(TABULAR_FEATURE_NAMES),)
        for i, name in enumerate(TABULAR_FEATURE_NAMES):
            assert vector[i] == pytest.approx(features[name])

    def test_matrix_shape(self, small_dataset) -> None:
        matrix = tabular_feature_matrix(small_dataset.sources[:5])
        assert matrix.shape == (5, len(TABULAR_FEATURE_NAMES))

    def test_empty_matrix(self) -> None:
        assert tabular_feature_matrix([]).shape == (0, len(TABULAR_FEATURE_NAMES))

    def test_deterministic(self, sample_verilog) -> None:
        np.testing.assert_array_equal(
            tabular_feature_vector(sample_verilog), tabular_feature_vector(sample_verilog)
        )


class TestTrojanSensitivity:
    """Inserting a Trojan must move the features in the expected direction."""

    def test_trojan_increases_structure_counts(self) -> None:
        rng = np.random.default_rng(5)
        host = generate_host("crypto", rng, name="h")
        infected = insert_trojan(host, rng, trigger_kind="counter", payload_kind="corrupt")
        clean_features = extract_tabular_features(host)
        infected_features = extract_tabular_features(infected.source)
        assert infected_features["ast_node_count"] > clean_features["ast_node_count"]
        assert infected_features["n_ternary"] >= clean_features["n_ternary"]

    def test_comparator_trigger_adds_constant_comparison(self) -> None:
        rng = np.random.default_rng(6)
        host = generate_host("uart", rng, name="h")
        infected = insert_trojan(host, rng, trigger_kind="comparator", payload_kind="dos")
        clean = extract_tabular_features(host)
        dirty = extract_tabular_features(infected.source)
        assert dirty["n_constant_comparisons"] > clean["n_constant_comparisons"]

    def test_population_separability(self, small_features) -> None:
        """Class means must differ on at least a few features (weak check)."""
        x = small_features.tabular
        y = small_features.labels
        scale = x.std(axis=0)
        scale[scale < 1e-9] = 1.0
        gap = np.abs(x[y == 1].mean(axis=0) - x[y == 0].mean(axis=0)) / scale
        assert (gap > 0.5).sum() >= 3
