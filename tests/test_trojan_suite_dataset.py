"""Tests for the benchmark suite builder and the TrojanDataset container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hdl import parse_module
from repro.trojan import (
    TROJAN_FREE,
    TROJAN_INFECTED,
    SuiteConfig,
    TrojanDataset,
    build_suite,
    suite_summary,
)


class TestSuiteBuilder:
    def test_counts_match_config(self, small_dataset, small_suite_config) -> None:
        summary = small_dataset.summary()
        assert summary["trojan_free"] == small_suite_config.n_trojan_free
        assert summary["trojan_infected"] == small_suite_config.n_trojan_infected
        assert summary["total"] == len(small_dataset)

    def test_every_design_parses(self, small_dataset) -> None:
        for benchmark in small_dataset:
            module = parse_module(benchmark.source)
            assert module.name

    def test_names_follow_trusthub_convention(self, small_dataset) -> None:
        infected_names = [b.name for b in small_dataset if b.is_infected]
        clean_names = [b.name for b in small_dataset if not b.is_infected]
        assert all("-T" in name for name in infected_names)
        assert all("-free" in name for name in clean_names)
        assert len(set(infected_names + clean_names)) == len(small_dataset)

    def test_infected_designs_record_trojan_metadata(self, small_dataset) -> None:
        for benchmark in small_dataset.infected():
            assert benchmark.trigger_kind is not None
            assert benchmark.payload_kind is not None
            assert benchmark.description

    def test_clean_designs_have_no_trojan_metadata(self, small_dataset) -> None:
        for benchmark in small_dataset.clean():
            assert benchmark.trigger_kind is None
            assert benchmark.payload_kind is None

    def test_deterministic_for_same_seed(self) -> None:
        config = SuiteConfig(n_trojan_free=4, n_trojan_infected=3, seed=3)
        first = build_suite(config)
        second = build_suite(config)
        assert [b.source for b in first] == [b.source for b in second]

    def test_different_seed_changes_designs(self) -> None:
        first = build_suite(SuiteConfig(n_trojan_free=4, n_trojan_infected=2, seed=1))
        second = build_suite(SuiteConfig(n_trojan_free=4, n_trojan_infected=2, seed=2))
        assert [b.source for b in first] != [b.source for b in second]

    def test_restricted_trigger_and_payload_kinds(self) -> None:
        config = SuiteConfig(
            n_trojan_free=3,
            n_trojan_infected=4,
            trigger_kinds=["counter"],
            payload_kinds=["dos"],
            seed=5,
        )
        suite = build_suite(config)
        infected = [b for b in suite if b.is_infected]
        assert all(b.trigger_kind == "counter" for b in infected)
        assert all(b.payload_kind == "dos" for b in infected)

    def test_invalid_config_rejected(self) -> None:
        with pytest.raises(ValueError):
            SuiteConfig(n_trojan_free=0, n_trojan_infected=1).validate()
        with pytest.raises(ValueError):
            SuiteConfig(families=["gpu"]).validate()
        with pytest.raises(ValueError):
            SuiteConfig(instrumentation_probability=1.5).validate()

    def test_suite_summary_family_counts(self, small_dataset) -> None:
        summary = suite_summary(small_dataset.benchmarks)
        family_total = sum(v for k, v in summary.items() if k.startswith("family_"))
        assert family_total == summary["total"]


class TestTrojanDataset:
    def test_labels_and_constants(self, small_dataset) -> None:
        labels = small_dataset.labels
        assert set(np.unique(labels)) == {TROJAN_FREE, TROJAN_INFECTED}
        assert labels.sum() == small_dataset.summary()["trojan_infected"]

    def test_filtering_views(self, small_dataset) -> None:
        assert len(small_dataset.infected()) + len(small_dataset.clean()) == len(small_dataset)
        for family in {b.family for b in small_dataset}:
            subset = small_dataset.by_family(family)
            assert all(b.family == family for b in subset)

    def test_subset_preserves_order(self, small_dataset) -> None:
        subset = small_dataset.subset([2, 0, 5])
        assert subset.names == [
            small_dataset[2].name,
            small_dataset[0].name,
            small_dataset[5].name,
        ]

    def test_imbalance_ratio(self, small_dataset, small_suite_config) -> None:
        expected = small_suite_config.n_trojan_free / small_suite_config.n_trojan_infected
        assert small_dataset.imbalance_ratio == pytest.approx(expected)

    def test_imbalance_ratio_without_infected(self, small_dataset) -> None:
        assert small_dataset.clean().imbalance_ratio == float("inf")

    def test_stratified_split_keeps_both_classes(self, small_dataset) -> None:
        rng = np.random.default_rng(0)
        train, test = small_dataset.stratified_split(0.25, rng)
        assert set(np.unique(train.labels)) == {0, 1}
        assert set(np.unique(test.labels)) == {0, 1}
        assert len(train) + len(test) == len(small_dataset)

    def test_stratified_split_disjoint(self, small_dataset) -> None:
        rng = np.random.default_rng(0)
        train, test = small_dataset.stratified_split(0.3, rng)
        assert set(train.names).isdisjoint(test.names)

    def test_split_rejects_bad_fraction(self, small_dataset) -> None:
        with pytest.raises(ValueError):
            small_dataset.stratified_split(0.0)

    def test_iteration_and_indexing(self, small_dataset) -> None:
        assert small_dataset[0].name == next(iter(small_dataset)).name
        assert len(list(small_dataset)) == len(small_dataset)
