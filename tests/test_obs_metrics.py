"""Unit tests for the metrics registry (``repro.obs.metrics``).

Every test builds a private :class:`MetricsRegistry` rather than touching
the process-wide ``REGISTRY`` — the singleton accumulates families from
whichever modules other tests happened to import, so asserting on its
contents would make these tests order-dependent.
"""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    REGISTRY,
    parse_prometheus_text,
)


# -- registration ------------------------------------------------------------


def test_name_convention_is_enforced():
    """Names must match repro_<subsystem>_<name>."""
    registry = MetricsRegistry()
    for bad in ("requests_total", "repro_Serve_x", "reproServeX", "repro__x", "repro_serve_"):
        with pytest.raises(ValueError):
            registry.counter(bad, "nope")


def test_label_names_are_validated():
    """Label identifiers must be Prometheus-legal."""
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("repro_test_bad_label", "x", labels=("1bad",))


def test_reregistration_is_idempotent_for_identical_shape():
    """Get-or-create: same name + type + labels returns the same family."""
    registry = MetricsRegistry()
    first = registry.counter("repro_test_hits_total", "x", labels=("model",))
    again = registry.counter("repro_test_hits_total", "y", labels=("model",))
    assert again is first


def test_reregistration_with_different_shape_raises():
    """A conflicting redefinition is an error, not a silent fork."""
    registry = MetricsRegistry()
    registry.counter("repro_test_hits_total", "x")
    with pytest.raises(ValueError):
        registry.gauge("repro_test_hits_total", "x")
    with pytest.raises(ValueError):
        registry.counter("repro_test_hits_total", "x", labels=("model",))


# -- counters / gauges / histograms ------------------------------------------


def test_counter_increments_and_rejects_decrease():
    """Counters go up; negative increments raise."""
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_scans_total", "x")
    counter.inc()
    counter.inc(2.5)
    assert counter.value() == pytest.approx(3.5)
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_labeled_family_children_are_independent():
    """Each label-value tuple owns its own time series."""
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_scans_total", "x", labels=("model",))
    counter.labels(model="a").inc()
    counter.labels(model="a").inc()
    counter.labels(model="b").inc(5)
    assert counter.value(model="a") == 2
    assert counter.value(model="b") == 5
    with pytest.raises(ValueError):
        counter.labels(wrong="a")
    with pytest.raises(ValueError):
        counter.inc()  # labeled family has no bare child


def test_gauge_moves_both_ways():
    """Gauges support set() and signed inc()."""
    registry = MetricsRegistry()
    gauge = registry.gauge("repro_test_queue_depth", "x")
    gauge.set(10)
    gauge.inc(-3)
    assert gauge.value() == 7


def test_histogram_buckets_are_cumulative():
    """Observations land in the first bucket whose bound contains them."""
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "repro_test_latency_seconds", "x", buckets=(0.1, 1.0)
    )
    for value in (0.05, 0.5, 5.0):
        histogram.observe(value)
    child = histogram.labels()
    cumulative, total, count = child.snapshot()
    assert cumulative == [1, 2, 3]  # <=0.1, <=1.0, +Inf
    assert total == pytest.approx(5.55)
    assert count == 3


def test_histogram_rejects_unsorted_buckets():
    """Bucket bounds must be strictly increasing."""
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("repro_test_bad_seconds", "x", buckets=(1.0, 0.5))


def test_value_accessor_contract():
    """registry.value(): KeyError unknown, TypeError for histograms, 0 default."""
    registry = MetricsRegistry()
    registry.counter("repro_test_cold_total", "x")
    registry.histogram("repro_test_latency_seconds", "x")
    assert registry.value("repro_test_cold_total") == 0.0
    with pytest.raises(KeyError):
        registry.value("repro_test_never_registered")
    with pytest.raises(TypeError):
        registry.value("repro_test_latency_seconds")


def test_concurrent_increments_do_not_lose_updates():
    """The per-child lock makes inc() safe from many threads."""
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_races_total", "x")

    def spin():
        for _ in range(1000):
            counter.inc()

    threads = [threading.Thread(target=spin) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value() == 8000


# -- exposition --------------------------------------------------------------


def test_render_parse_round_trip():
    """render_prometheus() output parses back to the written values."""
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_scans_total", "Scans.", labels=("model",))
    counter.labels(model="champ").inc(3)
    gauge = registry.gauge("repro_test_alarm", "Alarm flag.")
    gauge.set(1)
    histogram = registry.histogram(
        "repro_test_latency_seconds", "Latency.", buckets=(0.5,)
    )
    histogram.observe(0.25)
    histogram.observe(2.0)

    text = registry.render_prometheus()
    assert "# HELP repro_test_scans_total Scans." in text
    assert "# TYPE repro_test_scans_total counter" in text
    assert "# TYPE repro_test_latency_seconds histogram" in text

    samples = parse_prometheus_text(text)
    assert samples[("repro_test_scans_total", (("model", "champ"),))] == 3
    assert samples[("repro_test_alarm", ())] == 1
    assert samples[("repro_test_latency_seconds_bucket", (("le", "0.5"),))] == 1
    assert samples[("repro_test_latency_seconds_bucket", (("le", "+Inf"),))] == 2
    assert samples[("repro_test_latency_seconds_sum", ())] == pytest.approx(2.25)
    assert samples[("repro_test_latency_seconds_count", ())] == 2


def test_label_values_are_escaped():
    """Quotes, backslashes and newlines survive the exposition format."""
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_weird_total", "x", labels=("name",))
    counter.labels(name='a"b\\c').inc()
    text = registry.render_prometheus()
    samples = parse_prometheus_text(text)
    ((key, _labels),) = [k for k in samples if k[0] == "repro_test_weird_total"]
    assert key == "repro_test_weird_total"


def test_parse_rejects_malformed_lines():
    """The parser is strict — CI uses it to validate the endpoint output."""
    with pytest.raises(ValueError):
        parse_prometheus_text("not a sample line at all!\n")
    with pytest.raises(ValueError):
        parse_prometheus_text("repro_x_y{unclosed 1\n")
    with pytest.raises(ValueError):
        parse_prometheus_text("repro_x_y notanumber\n")


def test_parse_handles_infinities_and_comments():
    """+Inf/-Inf values and #-comments are part of the format."""
    samples = parse_prometheus_text(
        "# HELP repro_x_y help\n# TYPE repro_x_y gauge\nrepro_x_y +Inf\n"
    )
    assert samples[("repro_x_y", ())] == math.inf


# -- the process-wide registry ------------------------------------------------


def test_default_buckets_are_increasing():
    """Sanity: the shared latency buckets are strictly sorted."""
    assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


def test_process_registry_exposition_parses():
    """Whatever the imported modules registered renders to valid text."""
    text = REGISTRY.render_prometheus()
    parse_prometheus_text(text)  # must not raise
