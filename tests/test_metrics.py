"""Tests for the evaluation metrics: Brier family, calibration, ROC, radar."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    RADAR_AXES,
    accuracy,
    balanced_accuracy,
    brier_decomposition,
    brier_score,
    brier_skill_score,
    calibration_curve,
    classification_report,
    confusion_matrix,
    consolidated_metrics,
    expected_calibration_error,
    f1_score,
    format_comparison,
    format_curve,
    format_metric_block,
    format_radar,
    format_table,
    maximum_calibration_error,
    precision,
    probability_histogram,
    radar_axes,
    radar_polygon,
    rank_auc,
    recall,
    roc_auc,
    roc_curve,
    sharpness,
    specificity,
)


class TestBrier:
    def test_perfect_and_worst_scores(self) -> None:
        outcomes = np.array([1, 0, 1, 0])
        assert brier_score(outcomes.astype(float), outcomes) == 0.0
        assert brier_score(1.0 - outcomes, outcomes) == 1.0

    def test_known_value(self) -> None:
        assert brier_score(np.array([0.7, 0.3]), np.array([1, 0])) == pytest.approx(0.09)

    def test_base_rate_forecast_has_zero_skill(self) -> None:
        outcomes = np.array([1, 1, 0, 0, 0, 0, 1, 0])
        base = np.full_like(outcomes, outcomes.mean(), dtype=float)
        assert brier_skill_score(base, outcomes) == pytest.approx(0.0, abs=1e-12)

    def test_good_forecast_has_positive_skill(self) -> None:
        outcomes = np.array([1, 0, 1, 0, 1, 0])
        good = np.array([0.9, 0.1, 0.8, 0.2, 0.95, 0.05])
        assert brier_skill_score(good, outcomes) > 0.5

    def test_decomposition_consistency(self) -> None:
        rng = np.random.default_rng(0)
        probabilities = rng.uniform(size=500)
        outcomes = (rng.uniform(size=500) < probabilities).astype(int)
        decomposition = brier_decomposition(probabilities, outcomes, n_bins=10)
        reconstructed = (
            decomposition.reliability - decomposition.resolution + decomposition.uncertainty
        )
        assert reconstructed == pytest.approx(decomposition.brier, abs=0.01)
        assert decomposition.refinement_loss == pytest.approx(
            decomposition.uncertainty - decomposition.resolution
        )

    def test_calibrated_forecast_low_reliability(self) -> None:
        rng = np.random.default_rng(1)
        probabilities = rng.uniform(size=2000)
        outcomes = (rng.uniform(size=2000) < probabilities).astype(int)
        assert brier_decomposition(probabilities, outcomes).reliability < 0.01

    def test_sharpness(self) -> None:
        assert sharpness(np.array([0.0, 1.0, 0.0, 1.0])) == pytest.approx(0.25)
        assert sharpness(np.full(10, 0.5)) == 0.0

    def test_input_validation(self) -> None:
        with pytest.raises(ValueError):
            brier_score(np.array([0.5]), np.array([2]))
        with pytest.raises(ValueError):
            brier_score(np.array([1.5]), np.array([1]))
        with pytest.raises(ValueError):
            brier_score(np.array([]), np.array([]))

    @given(
        st.lists(
            st.tuples(st.floats(0.0, 1.0), st.integers(0, 1)), min_size=2, max_size=100
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_brier_bounds_property(self, pairs) -> None:
        probabilities = np.array([p for p, _ in pairs])
        outcomes = np.array([o for _, o in pairs])
        assert 0.0 <= brier_score(probabilities, outcomes) <= 1.0


class TestCalibration:
    def test_curve_bins_and_counts(self) -> None:
        probabilities = np.array([0.05, 0.15, 0.95, 0.85, 0.5])
        outcomes = np.array([0, 0, 1, 1, 1])
        curve = calibration_curve(probabilities, outcomes, n_bins=10)
        assert sum(curve.counts) == 5
        assert len(curve.bin_centers) == len(curve.observed_frequency)

    def test_perfectly_calibrated_low_ece(self) -> None:
        rng = np.random.default_rng(2)
        probabilities = rng.uniform(size=5000)
        outcomes = (rng.uniform(size=5000) < probabilities).astype(int)
        assert expected_calibration_error(probabilities, outcomes) < 0.05

    def test_miscalibrated_high_ece(self) -> None:
        probabilities = np.full(100, 0.9)
        outcomes = np.zeros(100, dtype=int)
        assert expected_calibration_error(probabilities, outcomes) > 0.8
        assert maximum_calibration_error(probabilities, outcomes) > 0.8

    def test_histogram(self) -> None:
        histogram = probability_histogram(np.array([0.05, 0.06, 0.95]), n_bins=10)
        assert sum(histogram["counts"]) == 3
        assert histogram["counts"][0] == 2

    def test_invalid_inputs(self) -> None:
        with pytest.raises(ValueError):
            calibration_curve(np.array([0.5]), np.array([1, 0]))
        with pytest.raises(ValueError):
            probability_histogram(np.array([0.5]), n_bins=0)


class TestROC:
    def test_perfect_separation(self) -> None:
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == 1.0

    def test_inverted_scores(self) -> None:
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == 0.0

    def test_random_scores_near_half(self) -> None:
        rng = np.random.default_rng(3)
        scores = rng.uniform(size=2000)
        labels = rng.integers(0, 2, size=2000)
        assert abs(roc_auc(scores, labels) - 0.5) < 0.05

    def test_curve_endpoints_and_monotonicity(self) -> None:
        rng = np.random.default_rng(4)
        scores = rng.uniform(size=50)
        labels = rng.integers(0, 2, size=50)
        curve = roc_curve(scores, labels)
        assert curve.false_positive_rate[0] == 0.0 and curve.true_positive_rate[0] == 0.0
        assert curve.false_positive_rate[-1] == 1.0 and curve.true_positive_rate[-1] == 1.0
        assert np.all(np.diff(curve.false_positive_rate) >= 0)
        assert np.all(np.diff(curve.true_positive_rate) >= 0)

    def test_requires_both_classes(self) -> None:
        with pytest.raises(ValueError):
            roc_auc(np.array([0.1, 0.9]), np.array([1, 1]))

    def test_trapezoid_matches_rank_formulation(self) -> None:
        rng = np.random.default_rng(5)
        for _ in range(10):
            scores = rng.normal(size=60)
            labels = rng.integers(0, 2, size=60)
            if labels.sum() in (0, 60):
                continue
            assert roc_auc(scores, labels) == pytest.approx(rank_auc(scores, labels))

    @given(
        st.lists(st.tuples(st.floats(-5, 5), st.integers(0, 1)), min_size=4, max_size=80)
    )
    @settings(max_examples=50, deadline=None)
    def test_auc_implementations_agree_property(self, pairs) -> None:
        scores = np.array([s for s, _ in pairs])
        labels = np.array([l for _, l in pairs])
        if labels.sum() == 0 or labels.sum() == len(labels):
            return
        assert roc_auc(scores, labels) == pytest.approx(rank_auc(scores, labels), abs=1e-9)


class TestClassification:
    def test_confusion_matrix_counts(self) -> None:
        predictions = np.array([1, 0, 1, 0, 1])
        labels = np.array([1, 0, 0, 1, 1])
        cm = confusion_matrix(predictions, labels)
        assert (cm.true_positive, cm.true_negative, cm.false_positive, cm.false_negative) == (
            2,
            1,
            1,
            1,
        )
        assert cm.total == 5

    def test_metric_values(self) -> None:
        predictions = np.array([1, 0, 1, 0, 1])
        labels = np.array([1, 0, 0, 1, 1])
        assert accuracy(predictions, labels) == pytest.approx(0.6)
        assert precision(predictions, labels) == pytest.approx(2 / 3)
        assert recall(predictions, labels) == pytest.approx(2 / 3)
        assert specificity(predictions, labels) == pytest.approx(1 / 2)
        assert f1_score(predictions, labels) == pytest.approx(2 / 3)
        assert balanced_accuracy(predictions, labels) == pytest.approx((2 / 3 + 0.5) / 2)

    def test_degenerate_cases(self) -> None:
        assert precision(np.zeros(4, dtype=int), np.array([0, 0, 1, 1])) == 0.0
        assert f1_score(np.zeros(4, dtype=int), np.array([0, 0, 1, 1])) == 0.0

    def test_report_keys(self) -> None:
        report = classification_report(np.array([1, 0]), np.array([1, 1]))
        assert {"accuracy", "precision", "recall", "f1", "true_positive"} <= set(report)

    def test_input_validation(self) -> None:
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 0]))
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestRadarAndReport:
    def test_consolidated_metrics_keys(self) -> None:
        rng = np.random.default_rng(6)
        labels = rng.integers(0, 2, size=200)
        probabilities = np.clip(labels * 0.7 + rng.uniform(size=200) * 0.3, 0, 1)
        metrics = consolidated_metrics(probabilities, labels)
        for axis, _ in RADAR_AXES:
            assert axis in metrics

    def test_radar_axes_normalised_and_inverted(self) -> None:
        rng = np.random.default_rng(7)
        labels = rng.integers(0, 2, size=300)
        probabilities = np.clip(labels * 0.8 + rng.uniform(size=300) * 0.2, 0, 1)
        metrics = consolidated_metrics(probabilities, labels)
        axes = radar_axes(metrics)
        assert all(0.0 <= value <= 1.0 for value in axes.values())
        # Lower-is-better metrics are inverted: a small Brier gives a large axis value.
        assert axes["brier_score"] == pytest.approx(1.0 - min(metrics["brier_score"], 1.0))

    def test_radar_polygon_order(self) -> None:
        rng = np.random.default_rng(8)
        labels = rng.integers(0, 2, size=100)
        probabilities = np.clip(labels + rng.normal(0, 0.2, 100), 0, 1)
        polygon = radar_polygon(consolidated_metrics(probabilities, labels))
        assert [name for name, _ in polygon] == [name for name, _ in RADAR_AXES]

    def test_radar_axes_missing_metric(self) -> None:
        with pytest.raises(KeyError):
            radar_axes({"auc": 0.9})

    def test_format_table(self) -> None:
        text = format_table(
            [{"name": "a", "value": 1.2345}, {"name": "bb", "value": 2.0}],
            columns=["name", "value"],
            title="T",
        )
        assert "T" in text and "1.2345" in text and "bb" in text

    def test_format_table_empty(self) -> None:
        assert "(no rows)" in format_table([], columns=["a"], title="x")

    def test_format_metric_block_and_curve(self) -> None:
        block = format_metric_block({"auc": 0.9, "n": 5}, title="metrics")
        assert "auc" in block and "0.9000" in block
        curve = format_curve([0.0, 0.5, 1.0], [0.0, 0.7, 1.0], "fpr", "tpr")
        assert "tpr vs fpr" in curve

    def test_format_radar_and_comparison(self) -> None:
        radar = format_radar([("auc", 0.9), ("acc", 0.5)])
        assert "auc" in radar and "#" in radar
        comparison = format_comparison({"auc": 0.928}, {"auc": 0.95})
        assert "0.9280" in comparison and "0.9500" in comparison

    def test_format_curve_validates(self) -> None:
        with pytest.raises(ValueError):
            format_curve([1.0], [1.0, 2.0])
