"""Exact-match tests for the searchsorted ICP p-values and vectorized fusion.

The fast ``p_values`` (sorted calibration scores + ``np.searchsorted``) must
reproduce the golden quadratic loop (``p_values_reference``) *exactly* —
same rank counts, same smoothing draws — for every variant: smoothed and
unsmoothed, Mondrian and plain, with and without score ties.  Degenerate
calibration sets (empty, or Mondrian with an absent class) are rejected at
``calibrate()`` time with a clear error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.conformal import InductiveConformalClassifier
from repro.conformal.combination import (
    available_combiners,
    combine_p_value_matrices,
    get_combiner,
)


def _random_probabilities(rng, n, n_classes=3):
    raw = rng.random((n, n_classes))
    return raw / raw.sum(axis=1, keepdims=True)


@pytest.mark.parametrize("mondrian", [True, False])
@pytest.mark.parametrize("nonconformity", ["inverse_probability", "margin"])
def test_unsmoothed_p_values_match_loop_exactly(mondrian, nonconformity):
    rng = np.random.default_rng(0)
    icp = InductiveConformalClassifier(
        nonconformity=nonconformity, mondrian=mondrian, smoothing=False
    )
    icp.calibrate(_random_probabilities(rng, 200), rng.integers(0, 3, size=200))
    test_probs = _random_probabilities(rng, 150)
    np.testing.assert_array_equal(
        icp.p_values(test_probs), icp.p_values_reference(test_probs)
    )


@pytest.mark.parametrize("mondrian", [True, False])
def test_smoothed_p_values_match_loop_exactly(mondrian):
    rng = np.random.default_rng(1)
    cal_probs = _random_probabilities(rng, 120)
    cal_labels = rng.integers(0, 3, size=120)
    test_probs = _random_probabilities(rng, 80)
    # Two identically-seeded predictors: the fast and reference paths draw
    # the smoothing tau in the same order, so outputs must be bit-identical.
    fast = InductiveConformalClassifier(
        mondrian=mondrian, smoothing=True, rng=np.random.default_rng(42)
    ).calibrate(cal_probs, cal_labels)
    loop = InductiveConformalClassifier(
        mondrian=mondrian, smoothing=True, rng=np.random.default_rng(42)
    ).calibrate(cal_probs, cal_labels)
    np.testing.assert_array_equal(
        fast.p_values(test_probs), loop.p_values_reference(test_probs)
    )


def test_p_values_with_ties_match_loop_exactly():
    # Duplicate probability rows create exact score ties, exercising the
    # equal-count (searchsorted window) logic.
    rng = np.random.default_rng(2)
    base = _random_probabilities(rng, 30)
    cal_probs = np.concatenate([base, base, base])
    cal_labels = np.concatenate([rng.integers(0, 3, size=30)] * 3)
    icp = InductiveConformalClassifier(mondrian=True, smoothing=False)
    icp.calibrate(cal_probs, cal_labels)
    test_probs = np.concatenate([base[:10], _random_probabilities(rng, 10)])
    np.testing.assert_array_equal(
        icp.p_values(test_probs), icp.p_values_reference(test_probs)
    )


def test_missing_class_rejected_at_calibrate_time():
    # No calibration examples of class 2: the Mondrian path used to fall
    # back silently to the marginal scores (losing per-class validity);
    # calibrate() now rejects the set up front with a clear error.
    rng = np.random.default_rng(3)
    cal_probs = _random_probabilities(rng, 60)
    cal_labels = rng.integers(0, 2, size=60)  # only classes 0 and 1
    icp = InductiveConformalClassifier(mondrian=True, smoothing=False)
    with pytest.raises(ValueError, match="every class"):
        icp.calibrate(cal_probs, cal_labels)
    # Non-Mondrian predictors have no per-class requirement.
    InductiveConformalClassifier(mondrian=False).calibrate(cal_probs, cal_labels)


def test_p_values_still_valid_uniformly():
    # Coverage sanity: under exchangeability the true-label p-value is
    # (super-)uniform, so P(p <= eps) <= eps up to finite-sample noise.
    rng = np.random.default_rng(4)
    n = 400
    probs = _random_probabilities(rng, n, n_classes=2)
    labels = (rng.random(n) < probs[:, 1]).astype(int)
    icp = InductiveConformalClassifier(mondrian=False, smoothing=False)
    icp.calibrate(probs[: n // 2], labels[: n // 2])
    p = icp.p_values(probs[n // 2 :])
    true_p = p[np.arange(n // 2), labels[n // 2 :]]
    for eps in (0.1, 0.2, 0.5):
        assert (true_p <= eps).mean() <= eps + 0.1


@pytest.mark.parametrize("method", available_combiners())
def test_combine_matrices_matches_per_class_loop(method):
    rng = np.random.default_rng(5)
    matrices = [np.clip(rng.random((40, 4)), 1e-9, 1.0) for _ in range(3)]
    combined = combine_p_value_matrices(matrices, method)
    combiner = get_combiner(method)
    stacked = np.stack(matrices, axis=2)
    for class_index in range(4):
        np.testing.assert_allclose(
            combined[:, class_index],
            combiner(stacked[:, class_index, :]),
            atol=0,
            rtol=0,
        )
