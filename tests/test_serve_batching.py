"""Micro-batcher tests: coalescing, caps, grouping, errors, drain."""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional

import pytest

from repro.core.results import ScanRecord, TrojanDecision
from repro.engine.scan import ScanReport, ScanSource
from repro.serve.batching import BatcherClosed, MicroBatchError, MicroBatcher
from repro.serve.metrics import ServiceMetrics


def _decision(name: str, level: float) -> TrojanDecision:
    return TrojanDecision(
        name=name,
        predicted_label=0,
        probability_infected=0.1,
        p_value_trojan_free=0.8,
        p_value_trojan_infected=0.05,
        region_labels=(0,),
        credibility=0.8,
        confidence=level,
    )


class FakeScanner:
    """A scan_fn standing in for the engine: records calls, echoes sources."""

    def __init__(self, delay_s: float = 0.0, fail: bool = False) -> None:
        self.delay_s = delay_s
        self.fail = fail
        self.calls: List[tuple] = []
        self.lock = threading.Lock()
        self.release = threading.Event()
        self.release.set()

    def __call__(self, sources, confidence):
        self.release.wait(5.0)
        with self.lock:
            self.calls.append(([s.name for s in sources], confidence))
        if self.fail:
            raise RuntimeError("model exploded")
        if self.delay_s:
            time.sleep(self.delay_s)
        level = confidence if confidence is not None else 0.9
        return ScanReport(
            records=[
                ScanRecord(name=s.name, sha256=s.sha256, decision=_decision(s.name, level))
                for s in sources
            ],
            n_designs=len(sources),
            confidence_level=level,
        )


def _sources(*names: str) -> List[ScanSource]:
    return [ScanSource(name=n, source=f"module {n}; endmodule") for n in names]


class TestSubmission:
    def test_single_submit_returns_own_records(self):
        scanner = FakeScanner()
        batcher = MicroBatcher(scanner, batch_window_s=0.0)
        try:
            result = batcher.submit(_sources("a", "b"))
            assert [r.name for r in result.records] == ["a", "b"]
            assert result.batch_requests == 1
            assert result.batch_designs == 2
        finally:
            batcher.close()

    def test_empty_submit_rejected(self):
        batcher = MicroBatcher(FakeScanner(), batch_window_s=0.0)
        try:
            with pytest.raises(MicroBatchError, match="at least one source"):
                batcher.submit([])
        finally:
            batcher.close()

    def test_records_are_sliced_per_request(self):
        scanner = FakeScanner()
        scanner.release.clear()  # hold the worker so submissions queue up
        batcher = MicroBatcher(scanner, batch_window_s=0.5, max_batch=16)
        try:
            with ThreadPoolExecutor(3) as pool:
                futures = [
                    pool.submit(batcher.submit, _sources(*names))
                    for names in (("a",), ("b", "c"), ("d",))
                ]
                time.sleep(0.05)  # let every request enqueue
                scanner.release.set()
                results = [f.result(timeout=10) for f in futures]
            assert [r.name for r in results[0].records] == ["a"]
            assert [r.name for r in results[1].records] == ["b", "c"]
            assert [r.name for r in results[2].records] == ["d"]
        finally:
            batcher.close()


class TestCoalescing:
    def test_queued_requests_share_one_scan_call(self):
        scanner = FakeScanner()
        scanner.release.clear()
        batcher = MicroBatcher(scanner, batch_window_s=0.5, max_batch=16)
        try:
            with ThreadPoolExecutor(4) as pool:
                futures = [
                    pool.submit(batcher.submit, _sources(f"d{i}")) for i in range(4)
                ]
                time.sleep(0.05)
                scanner.release.set()
                results = [f.result(timeout=10) for f in futures]
            # The first request may run alone (it was dequeued before the
            # others arrived), but the queued remainder must coalesce.
            assert max(r.batch_requests for r in results) >= 3
            assert len(scanner.calls) <= 2
        finally:
            batcher.close()

    def test_max_batch_caps_designs_per_call(self):
        scanner = FakeScanner()
        scanner.release.clear()
        batcher = MicroBatcher(scanner, batch_window_s=0.5, max_batch=2)
        try:
            with ThreadPoolExecutor(4) as pool:
                futures = [
                    pool.submit(batcher.submit, _sources(f"d{i}")) for i in range(4)
                ]
                time.sleep(0.05)
                scanner.release.set()
                for f in futures:
                    f.result(timeout=10)
            assert all(len(names) <= 2 for names, _ in scanner.calls)
        finally:
            batcher.close()

    def test_oversized_request_still_runs_whole(self):
        scanner = FakeScanner()
        batcher = MicroBatcher(scanner, batch_window_s=0.0, max_batch=2)
        try:
            result = batcher.submit(_sources("a", "b", "c", "d"))
            assert len(result.records) == 4
            assert scanner.calls[0][0] == ["a", "b", "c", "d"]
        finally:
            batcher.close()

    def test_confidence_levels_never_mix_in_one_call(self):
        scanner = FakeScanner()
        scanner.release.clear()
        batcher = MicroBatcher(scanner, batch_window_s=0.5, max_batch=16)
        try:
            with ThreadPoolExecutor(4) as pool:
                futures = [
                    pool.submit(batcher.submit, _sources(f"d{i}"), 0.9 if i % 2 else 0.99)
                    for i in range(4)
                ]
                time.sleep(0.05)
                scanner.release.set()
                results = [f.result(timeout=10) for f in futures]
            for (names, confidence) in scanner.calls:
                assert confidence in (0.9, 0.99)
            for i, result in enumerate(results):
                assert result.confidence_level == (0.9 if i % 2 else 0.99)
        finally:
            batcher.close()

    def test_batch_metrics_observed(self):
        metrics = ServiceMetrics()
        batcher = MicroBatcher(FakeScanner(), batch_window_s=0.0, metrics=metrics)
        try:
            batcher.submit(_sources("a", "b", "c"))
            snapshot = metrics.snapshot()
            assert snapshot["batches_total"] == 1
            assert snapshot["batched_designs_total"] == 3
            assert snapshot["max_batch_designs"] == 3
        finally:
            batcher.close()


class TestFailuresAndLifecycle:
    def test_scan_failure_propagates_to_every_member(self):
        scanner = FakeScanner(fail=True)
        scanner.release.clear()
        batcher = MicroBatcher(scanner, batch_window_s=0.5, max_batch=16)
        try:
            with ThreadPoolExecutor(2) as pool:
                futures = [
                    pool.submit(batcher.submit, _sources(f"d{i}")) for i in range(2)
                ]
                time.sleep(0.05)
                scanner.release.set()
                for f in futures:
                    with pytest.raises(MicroBatchError, match="model exploded"):
                        f.result(timeout=10)
        finally:
            batcher.close()

    def test_failure_does_not_kill_the_worker(self):
        scanner = FakeScanner()
        batcher = MicroBatcher(scanner, batch_window_s=0.0)
        try:
            scanner.fail = True
            with pytest.raises(MicroBatchError):
                batcher.submit(_sources("a"))
            scanner.fail = False
            assert [r.name for r in batcher.submit(_sources("b")).records] == ["b"]
        finally:
            batcher.close()

    def test_close_drains_queued_requests(self):
        scanner = FakeScanner(delay_s=0.05)
        batcher = MicroBatcher(scanner, batch_window_s=0.0, max_batch=1)
        results: List[Optional[object]] = [None, None]

        def submit(i: int) -> None:
            results[i] = batcher.submit(_sources(f"d{i}"))

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        time.sleep(0.02)  # both requests in flight/queued
        batcher.close()
        for t in threads:
            t.join(timeout=10)
        assert all(r is not None for r in results)

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(FakeScanner(), batch_window_s=0.0)
        batcher.close()
        with pytest.raises(BatcherClosed):
            batcher.submit(_sources("a"))

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(FakeScanner(), batch_window_s=0.0)
        batcher.close()
        batcher.close()

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="batch_window_s"):
            MicroBatcher(FakeScanner(), batch_window_s=-1.0)
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(FakeScanner(), max_batch=0)
