"""Integration tests: the end-to-end experiment runners on a small configuration.

These exercise the full pipeline — RTL generation, Trojan insertion, feature
extraction, GAN amplification, CNN training, conformal calibration, fusion
and metric computation — with the `quick_config` settings so the whole file
stays within a couple of minutes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    PAPER_TABLE1,
    STRATEGIES,
    ExperimentConfig,
    prepare_experiment_data,
    quick_config,
    run_amplification_ablation,
    run_baseline_comparison,
    run_combination_ablation,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_missing_modality_ablation,
    run_scenario,
    run_table1,
    scenario_seeds,
)


@pytest.fixture(scope="module")
def config() -> ExperimentConfig:
    return quick_config(seed=3)


class TestCommonInfrastructure:
    def test_prepare_experiment_data_cached(self, config) -> None:
        real_1, amplified_1 = prepare_experiment_data(config)
        real_2, amplified_2 = prepare_experiment_data(config)
        assert real_1 is real_2 and amplified_1 is amplified_2
        assert len(amplified_1) == config.amplification.target_total
        assert len(real_1) == config.suite.n_trojan_free + config.suite.n_trojan_infected

    def test_scenario_seeds_deterministic(self, config) -> None:
        assert scenario_seeds(config) == scenario_seeds(config)
        assert len(scenario_seeds(config)) == config.n_scenarios

    def test_run_scenario_returns_all_strategies(self, config) -> None:
        results = run_scenario(config, scenario_seed=11)
        assert set(results) == set(STRATEGIES)
        for evaluation in results.values():
            assert 0.0 <= evaluation.brier_score <= 1.0
            assert 0.0 <= evaluation.auc <= 1.0

    def test_quick_config_is_valid_and_small(self) -> None:
        config = quick_config()
        config.validate()
        assert config.amplification.target_total <= 100

    def test_paper_reference_values_present(self) -> None:
        assert set(PAPER_TABLE1) == set(STRATEGIES)
        assert PAPER_TABLE1["late_fusion"] < PAPER_TABLE1["tabular"]


class TestTable1:
    def test_structure_and_plausibility(self, config) -> None:
        result = run_table1(config)
        assert set(result.brier_scores) == set(STRATEGIES)
        for value in result.brier_scores.values():
            assert 0.0 <= value <= 1.0
        assert len(result.ranking) == 4
        text = result.format()
        assert "Table I" in text and "Late Fusion" in text

    def test_detection_quality_reasonable(self, config) -> None:
        """Even the quick configuration must detect Trojans well above chance."""
        result = run_table1(config)
        assert max(result.auc_scores.values()) > 0.7
        assert min(result.brier_scores.values()) < 0.3


class TestFigures:
    def test_fig2_distributions(self, config) -> None:
        result = run_fig2(config)
        assert len(result.early_fusion.scores) == config.n_scenarios
        assert len(result.late_fusion.scores) == config.n_scenarios
        summary = result.late_fusion.summary()
        assert summary["mean_low"] <= summary["mean"] <= summary["mean_high"]
        assert "Fig. 2" in result.format()

    def test_fig3_calibration(self, config) -> None:
        result = run_fig3(config)
        assert result.n_test > 0
        assert 0.0 <= result.expected_calibration_error <= 1.0
        assert 0.0 <= result.maximum_calibration_error <= 1.0
        assert sum(result.histogram["counts"]) == result.n_test
        assert "calibration" in result.format()

    def test_fig4_roc(self, config) -> None:
        result = run_fig4(config)
        assert 0.5 <= result.auc <= 1.0
        assert result.paper_auc == pytest.approx(0.928)
        assert result.curve.false_positive_rate[0] == 0.0
        assert "ROC-AUC" in result.format()

    def test_fig4_unknown_strategy(self, config) -> None:
        with pytest.raises(ValueError):
            run_fig4(config, strategy="mid_fusion")

    def test_fig5_radar(self, config) -> None:
        result = run_fig5(config)
        assert len(result.polygon) == 7
        assert all(0.0 <= value <= 1.0 for _, value in result.polygon)
        assert "radar" in result.format().lower()


class TestAblationsAndBaselines:
    def test_combination_ablation(self, config) -> None:
        result = run_combination_ablation(config, methods=["fisher", "minimum"])
        assert set(result.scores) == {"fisher", "minimum"}
        assert result.best_method() in result.scores
        assert "combination" in result.format()

    def test_amplification_ablation(self, config) -> None:
        result = run_amplification_ablation(config, target_sizes=[60])
        assert "no_amplification" in result.scores
        assert "gan_to_60" in result.scores
        assert result.scores["gan_to_60"]["train_size"] >= result.scores[
            "no_amplification"
        ]["train_size"]

    def test_missing_modality_ablation(self, config) -> None:
        result = run_missing_modality_ablation(config, missing_fraction=0.3)
        assert set(result.scores) == {"complete_data", "zero_fill", "gan_imputation"}
        for metrics in result.scores.values():
            assert 0.0 <= metrics["brier"] <= 1.0

    def test_baseline_comparison(self, config) -> None:
        result = run_baseline_comparison(
            config,
            baseline_names=["logistic_regression", "random_forest"],
            feature_sets=["tabular"],
        )
        assert "noodle_late_fusion" in result.scores
        assert "logistic_regression[tabular]" in result.scores
        assert 1 <= result.noodle_rank <= len(result.scores)


class TestEndToEndPublicAPI:
    def test_readme_quickstart_flow(self) -> None:
        """The flow advertised in the README works end to end."""
        from repro import NOODLE, SuiteConfig, TrojanDataset, default_config, extract_modalities
        from repro.gan import AmplificationConfig, GANConfig

        dataset = TrojanDataset.generate(
            SuiteConfig(n_trojan_free=20, n_trojan_infected=10, seed=2)
        )
        features = extract_modalities(dataset)
        train, test = features.stratified_split(0.25, np.random.default_rng(0))
        config = default_config(seed=0)
        config.classifier.epochs = 25
        config.amplify = True
        config.amplification = AmplificationConfig(target_total=100, gan=GANConfig(epochs=80))
        detector = NOODLE(config)
        report = detector.fit(train)
        assert report.winner in ("early_fusion", "late_fusion")
        decisions = detector.decide(test)
        assert len(decisions) == len(test)
        # Every decision carries the risk-aware fields the README advertises;
        # with this tiny training population only a weak accuracy floor is
        # asserted (the paper-scale configuration is tested in benchmarks).
        correct = sum(d.predicted_label == d.true_label for d in decisions)
        assert correct / len(decisions) >= 0.5
