"""Scheduler tests: parallel == serial, resume after kill, bounded retry."""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.core.config import ClassifierConfig, NoodleConfig
from repro.engine import (
    ScanCache,
    ScanEngine,
    ScanScheduler,
    save_detector,
    train_detector,
)
from repro.engine.bench import build_scan_batch
from repro.engine.scan import ScanSource
from repro.engine import scheduler as scheduler_module


@pytest.fixture(scope="module")
def detector(small_features):
    config = NoodleConfig(classifier=ClassifierConfig(epochs=3, seed=0), seed=0)
    return train_detector(small_features, strategy="late", config=config).model


@pytest.fixture(scope="module")
def scan_batch():
    return build_scan_batch(14, seed=55)


@pytest.fixture(scope="module")
def serial_records(detector, scan_batch):
    """Reference records from a plain single-process engine scan."""
    return ScanEngine(detector).scan_sources(scan_batch, workers=1).records


class TestParallelEqualsSerial:
    def test_pooled_scan_is_byte_identical(self, detector, scan_batch, serial_records):
        with ScanScheduler(model=detector, jobs=2, shard_size=4) as scheduler:
            report = scheduler.scan_sources(scan_batch)
        assert [r.to_dict() for r in report.records] == [
            r.to_dict() for r in serial_records
        ]

    def test_serial_scheduler_path_is_byte_identical(
        self, detector, scan_batch, serial_records
    ):
        with ScanScheduler(model=detector, jobs=1, shard_size=3) as scheduler:
            report = scheduler.scan_sources(scan_batch)
        assert [r.to_dict() for r in report.records] == [
            r.to_dict() for r in serial_records
        ]

    def test_shard_size_does_not_change_results(self, detector, scan_batch, serial_records):
        for shard_size in (1, 5, 100):
            with ScanScheduler(model=detector, jobs=2, shard_size=shard_size) as s:
                report = s.scan_sources(scan_batch)
            assert [r.to_dict() for r in report.records] == [
                r.to_dict() for r in serial_records
            ]

    def test_from_artifact_workers_load_the_detector(
        self, detector, scan_batch, serial_records, tmp_path
    ):
        artifact = save_detector(detector, tmp_path / "artifact")
        with ScanScheduler.from_artifact(artifact, jobs=2, shard_size=4) as scheduler:
            report = scheduler.scan_sources(scan_batch)
        observed = [
            (r.decision.p_value_trojan_free, r.decision.p_value_trojan_infected)
            for r in report.records
        ]
        expected = [
            (r.decision.p_value_trojan_free, r.decision.p_value_trojan_infected)
            for r in serial_records
        ]
        assert observed == expected

    def test_front_end_errors_become_records_not_failures(self, detector, scan_batch):
        mixed = list(scan_batch[:3]) + [
            ScanSource(name="broken", source="module broken (x; endmodule")
        ]
        with ScanScheduler(model=detector, jobs=2, shard_size=2) as scheduler:
            report = scheduler.scan_sources(mixed)
        assert report.n_errors == 1
        assert report.records[3].error is not None
        assert all(r.ok for r in report.records[:3])


class TestResume:
    def test_partial_results_are_reused(self, detector, scan_batch, tmp_path):
        cache_dir = tmp_path / "cache"
        half = scan_batch[: len(scan_batch) // 2]
        with ScanScheduler(
            model=detector,
            fingerprint="fp-res",
            cache=ScanCache(cache_dir, "fp-res"),
            jobs=1,
            shard_size=3,
        ) as first:
            first.scan_sources(half)
        with ScanScheduler(
            model=detector,
            fingerprint="fp-res",
            cache=ScanCache(cache_dir, "fp-res"),
            jobs=1,
            shard_size=3,
        ) as second:
            report = second.scan_sources(scan_batch, resume=True)
        assert report.n_cache_hits == len(half)
        fresh = ScanEngine(detector).scan_sources(scan_batch, workers=1)
        observed = [
            (r.decision.p_value_trojan_free, r.decision.p_value_trojan_infected)
            for r in report.records
        ]
        expected = [
            (r.decision.p_value_trojan_free, r.decision.p_value_trojan_infected)
            for r in fresh.records
        ]
        assert observed == expected

    def test_journal_records_progress(self, detector, scan_batch, tmp_path):
        cache = ScanCache(tmp_path, "fp-journal")
        with ScanScheduler(
            model=detector, fingerprint="fp-journal", cache=cache, jobs=1, shard_size=5
        ) as scheduler:
            scheduler.scan_sources(scan_batch)
        journal_path = next(cache.namespace_dir.glob("scan_state_*.json"))
        state = json.loads(journal_path.read_text())
        assert state["status"] == "complete"
        assert state["runs"] == 1
        assert len(state["shards"]) == (len(scan_batch) + 4) // 5
        assert all(s["status"] == "done" for s in state["shards"].values())
        # A resumed run of the same corpus continues the same journal.
        with ScanScheduler(
            model=detector, fingerprint="fp-journal", cache=ScanCache(tmp_path, "fp-journal"),
            jobs=1, shard_size=5,
        ) as again:
            again.scan_sources(scan_batch, resume=True)
        assert json.loads(journal_path.read_text())["runs"] == 2

    def test_resume_requires_cache(self, detector, scan_batch):
        with ScanScheduler(model=detector, jobs=1) as scheduler:
            with pytest.raises(ValueError, match="cache"):
                scheduler.scan_sources(scan_batch, resume=True)


def _interruptible_scan(cache_dir: str, ready) -> None:
    """Child process: slow sharded scan that flushes per shard (kill target)."""
    model = _interruptible_scan.model  # attached by the parent before fork
    batch = _interruptible_scan.batch
    original = scheduler_module._scan_shard_serial

    state = {"count": 0}

    def slow(engine, task, workers=None):
        if state["count"] >= 1:
            # The previous shard has been absorbed AND flushed by now.
            ready.set()
            time.sleep(0.3)  # widen the kill window mid-shard
        state["count"] += 1
        return original(engine, task, workers=workers)

    scheduler_module._scan_shard_serial = slow
    with ScanScheduler(
        model=model,
        fingerprint="fp-kill",
        cache=ScanCache(cache_dir, "fp-kill"),
        jobs=1,
        shard_size=1,
    ) as scheduler:
        scheduler.scan_sources(batch)


class TestResumeAfterKill:
    def test_sigkill_mid_scan_then_resume_completes_cleanly(
        self, detector, scan_batch, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        ready = multiprocessing.Event()
        _interruptible_scan.model = detector
        _interruptible_scan.batch = scan_batch
        child = multiprocessing.Process(
            target=_interruptible_scan, args=(str(cache_dir), ready)
        )
        child.start()
        assert ready.wait(timeout=120), "child never completed a shard"
        time.sleep(0.05)  # let the first shard's flush land, then kill mid-run
        os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=30)
        assert child.exitcode == -signal.SIGKILL

        # No corrupt or half-written cache state may survive the kill ...
        survivors = ScanCache(cache_dir, "fp-kill")
        assert not list(cache_dir.rglob("*.corrupt"))
        assert len(survivors) >= 1  # at least the flushed first shard

        # ... and the resumed scan serves the survivors and finishes the rest.
        with ScanScheduler(
            model=detector,
            fingerprint="fp-kill",
            cache=survivors,
            jobs=1,
            shard_size=1,
        ) as scheduler:
            report = scheduler.scan_sources(scan_batch, resume=True)
        assert report.n_errors == 0
        assert report.n_cache_hits >= 1
        fresh = ScanEngine(detector).scan_sources(scan_batch, workers=1)
        observed = [
            (r.decision.p_value_trojan_free, r.decision.p_value_trojan_infected)
            for r in report.records
        ]
        expected = [
            (r.decision.p_value_trojan_free, r.decision.p_value_trojan_infected)
            for r in fresh.records
        ]
        assert observed == expected
        assert not list(cache_dir.rglob("*.corrupt"))
        assert not list(cache_dir.rglob("*.tmp"))


class TestBoundedRetry:
    def test_transient_shard_failure_is_retried(
        self, detector, scan_batch, serial_records, monkeypatch
    ):
        original = scheduler_module._scan_shard_serial
        failures = {"remaining": 2}

        def flaky(engine, task, workers=None):
            if failures["remaining"] > 0:
                failures["remaining"] -= 1
                return task[0], None, 0.0, 0.0, 0, "RuntimeError: transient blip"
            return original(engine, task, workers=workers)

        monkeypatch.setattr(scheduler_module, "_scan_shard_serial", flaky)
        with ScanScheduler(
            model=detector, jobs=1, shard_size=5, max_retries=2
        ) as scheduler:
            report = scheduler.scan_sources(scan_batch)
        assert report.n_errors == 0
        assert [r.to_dict() for r in report.records] == [
            r.to_dict() for r in serial_records
        ]

    def test_exhausted_retries_yield_error_records(
        self, detector, scan_batch, monkeypatch
    ):
        def always_fails(engine, task, workers=None):
            return task[0], None, 0.0, 0.0, 0, "RuntimeError: worker keeps dying"

        monkeypatch.setattr(scheduler_module, "_scan_shard_serial", always_fails)
        with ScanScheduler(
            model=detector, jobs=1, shard_size=4, max_retries=1
        ) as scheduler:
            report = scheduler.scan_sources(scan_batch)
        assert report.n_errors == len(scan_batch)
        assert all(
            r.error is not None and "failed after 2 attempts" in r.error
            for r in report.records
        )

    def test_shard_timeout_becomes_a_retryable_failure(self, detector, scan_batch):
        # A deadline of ~0 means no pool result can ever arrive in time —
        # the stand-in for a worker that died hard and will never reply.
        with ScanScheduler(
            model=detector, jobs=2, shard_size=4, max_retries=0, shard_timeout=0.001
        ) as scheduler:
            report = scheduler.scan_sources(scan_batch)
        assert report.n_errors == len(scan_batch)
        assert all(
            r.error is not None and "no result within" in r.error
            for r in report.records
        )

    def test_failed_designs_are_not_cached(self, detector, scan_batch, tmp_path, monkeypatch):
        def always_fails(engine, task, workers=None):
            return task[0], None, 0.0, 0.0, 0, "RuntimeError: nope"

        monkeypatch.setattr(scheduler_module, "_scan_shard_serial", always_fails)
        cache = ScanCache(tmp_path, "fp-fail")
        with ScanScheduler(
            model=detector, fingerprint="fp-fail", cache=cache, jobs=1, max_retries=0
        ) as scheduler:
            scheduler.scan_sources(scan_batch)
        assert len(cache) == 0


class TestValidation:
    def test_needs_model_or_artifact(self):
        with pytest.raises(ValueError, match="model or an artifact_path"):
            ScanScheduler()

    def test_rejects_bad_shard_size(self, detector):
        with pytest.raises(ValueError, match="shard_size"):
            ScanScheduler(model=detector, shard_size=0)

    def test_rejects_negative_retries(self, detector):
        with pytest.raises(ValueError, match="max_retries"):
            ScanScheduler(model=detector, max_retries=-1)


class TestReportRoundTripWithErrors:
    """ScanReport JSON round-trips must preserve retry-exhaustion errors."""

    def _exhausted_report(self, detector, scan_batch, monkeypatch):
        def always_fails(engine, task, workers=None):
            return task[0], None, 0.0, 0.0, 0, "RuntimeError: worker keeps dying"

        monkeypatch.setattr(scheduler_module, "_scan_shard_serial", always_fails)
        with ScanScheduler(
            model=detector, jobs=1, shard_size=4, max_retries=1
        ) as scheduler:
            return scheduler.scan_sources(scan_batch)

    def test_round_trip_preserves_error_records(
        self, detector, scan_batch, monkeypatch
    ):
        from repro.engine.scan import ScanReport

        report = self._exhausted_report(detector, scan_batch, monkeypatch)
        assert report.n_errors == len(scan_batch)
        restored = ScanReport.from_dict(
            json.loads(json.dumps(report.to_dict(), sort_keys=True))
        )
        assert restored.n_errors == report.n_errors
        assert restored.n_designs == report.n_designs
        assert restored.confidence_level == report.confidence_level
        assert [r.to_dict() for r in restored.records] == [
            r.to_dict() for r in report.records
        ]
        for record in restored.records:
            assert record.decision is None
            assert "failed after 2 attempts" in record.error
            assert not record.ok and record.verdict == "error"

    def test_round_trip_preserves_mixed_success_and_errors(
        self, detector, scan_batch, monkeypatch
    ):
        from repro.engine.scan import ScanReport

        original = scheduler_module._scan_shard_serial
        failures = {"remaining": 1}

        def first_shard_fails(engine, task, workers=None):
            if failures["remaining"] > 0:
                failures["remaining"] -= 1
                return task[0], None, 0.0, 0.0, 0, "RuntimeError: one bad shard"
            return original(engine, task, workers=workers)

        monkeypatch.setattr(scheduler_module, "_scan_shard_serial", first_shard_fails)
        with ScanScheduler(
            model=detector, jobs=1, shard_size=4, max_retries=0
        ) as scheduler:
            report = scheduler.scan_sources(scan_batch)
        assert 0 < report.n_errors < len(scan_batch)
        restored = ScanReport.from_dict(
            json.loads(json.dumps(report.to_dict(), sort_keys=True))
        )
        assert restored.to_dict() == report.to_dict()
        queues = restored.triage()
        assert len(queues["error"]) == report.n_errors
