"""Tests for host generation, trigger/payload construction and Trojan insertion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hdl import ast, emit_module, parse_module
from repro.hdl.visitor import collect
from repro.trojan import (
    HOST_FAMILIES,
    INSTRUMENTATION_BUILDERS,
    PAYLOAD_BUILDERS,
    TRIGGER_BUILDERS,
    InsertionError,
    add_benign_instrumentation,
    apply_payload,
    available_trojan_kinds,
    build_trigger,
    generate_host,
    insert_trojan,
)
from repro.trojan.payloads import PayloadError
from repro.trojan.triggers import TriggerError
from repro.trojan import primitives as prim


@pytest.fixture
def generator() -> np.random.Generator:
    return np.random.default_rng(21)


class TestHostGeneration:
    @pytest.mark.parametrize("family", sorted(HOST_FAMILIES))
    def test_every_family_parses(self, family: str, generator) -> None:
        module = parse_module(generate_host(family, generator, name=f"{family}_u"))
        assert module.name == f"{family}_u"
        assert len(module.ports) >= 4

    @pytest.mark.parametrize("family", sorted(HOST_FAMILIES))
    def test_every_family_is_clocked_with_reset(self, family: str, generator) -> None:
        module = parse_module(generate_host(family, generator, name="h"))
        assert prim.find_clock(module) == "clk"
        assert prim.find_reset(module) == "rst"

    @pytest.mark.parametrize("family", sorted(HOST_FAMILIES))
    def test_every_family_has_data_inputs_and_outputs(self, family: str, generator) -> None:
        module = parse_module(generate_host(family, generator, name="h"))
        assert prim.data_inputs(module), "comparator triggers need multi-bit inputs"
        assert prim.output_ports(module)
        assert prim.output_continuous_assigns(module)

    def test_variants_differ(self, generator) -> None:
        first = generate_host("crypto", generator, name="c")
        second = generate_host("crypto", generator, name="c")
        assert first != second

    def test_unknown_family_raises(self, generator) -> None:
        with pytest.raises(ValueError, match="Unknown host family"):
            generate_host("gpu", generator)


class TestTriggers:
    @pytest.mark.parametrize("kind", sorted(TRIGGER_BUILDERS))
    @pytest.mark.parametrize("family", sorted(HOST_FAMILIES))
    def test_triggers_build_on_every_family(self, kind: str, family: str, generator) -> None:
        module = parse_module(generate_host(family, generator, name="h"))
        trigger = build_trigger(kind, module, generator)
        assert trigger.trigger_wire
        assert trigger.declarations and trigger.logic

    def test_trigger_wire_name_is_fresh(self, generator) -> None:
        module = parse_module(generate_host("uart", generator, name="h"))
        trigger = build_trigger("counter", module, generator)
        assert trigger.trigger_wire not in prim.declared_names(module)

    def test_counter_trigger_requires_clock(self, generator) -> None:
        module = parse_module(
            "module comb (input [7:0] a, output y);\n  assign y = a[0];\nendmodule\n"
        )
        with pytest.raises(TriggerError):
            build_trigger("counter", module, generator)

    def test_comparator_trigger_requires_wide_input(self, generator) -> None:
        module = parse_module(
            "module narrow (input clk, input a, output reg y);\n"
            "  always @(posedge clk) y <= a;\nendmodule\n"
        )
        with pytest.raises(TriggerError):
            build_trigger("comparator", module, generator)

    def test_unknown_trigger_kind(self, generator) -> None:
        module = parse_module(generate_host("dsp", generator, name="h"))
        with pytest.raises(ValueError, match="Unknown trigger kind"):
            build_trigger("thermal", module, generator)


class TestPayloads:
    @pytest.mark.parametrize("kind", sorted(PAYLOAD_BUILDERS))
    def test_payloads_modify_the_module(self, kind: str, generator) -> None:
        module = parse_module(generate_host("crypto", generator, name="h"))
        before = emit_module(module)
        effect = apply_payload(kind, module, "troj_trig", generator)
        after = emit_module(module)
        assert before != after
        assert effect.kind == kind
        assert "troj_trig" in after

    def test_leak_payload_requires_internal_register(self, generator) -> None:
        module = parse_module(
            "module tiny (input [7:0] a, output y);\n  assign y = a[0];\nendmodule\n"
        )
        with pytest.raises(PayloadError):
            apply_payload("leak", module, "trig", generator)

    def test_unknown_payload_kind(self, generator) -> None:
        module = parse_module(generate_host("bus", generator, name="h"))
        with pytest.raises(ValueError, match="Unknown payload kind"):
            apply_payload("ransom", module, "trig", generator)


class TestInsertion:
    @pytest.mark.parametrize("family", sorted(HOST_FAMILIES))
    def test_insertion_produces_parseable_verilog(self, family: str, generator) -> None:
        host = generate_host(family, generator, name="h")
        result = insert_trojan(host, generator)
        infected = parse_module(result.source)
        assert infected.name == "h"

    def test_insertion_matrix(self, generator) -> None:
        """Every (trigger, payload) combination works on the crypto host."""
        triggers, payloads = available_trojan_kinds()
        for trigger in triggers:
            for payload in payloads:
                host = generate_host("crypto", generator, name="h")
                result = insert_trojan(
                    host, generator, trigger_kind=trigger, payload_kind=payload
                )
                assert result.spec.trigger_kind == trigger
                assert result.spec.payload_kind == payload

    def test_infected_design_is_larger(self, generator) -> None:
        host = generate_host("uart", generator, name="h")
        result = insert_trojan(host, generator)
        clean_nodes = len(list(collect(parse_module(host), ast.Node)))
        infected_nodes = len(list(collect(parse_module(result.source), ast.Node)))
        assert infected_nodes > clean_nodes

    def test_infected_design_keeps_interface(self, generator) -> None:
        """Trojans must not add or remove ports (that would be conspicuous)."""
        host = generate_host("mcu", generator, name="h")
        result = insert_trojan(host, generator)
        assert parse_module(result.source).ports == parse_module(host).ports

    def test_trigger_wire_present_in_source(self, generator) -> None:
        host = generate_host("dsp", generator, name="h")
        result = insert_trojan(host, generator, trigger_kind="comparator")
        assert "troj_trig" in result.source

    def test_insertion_fails_gracefully_on_unsuitable_design(self, generator) -> None:
        source = "module empty (input a, output y);\n  assign y = a;\nendmodule\n"
        with pytest.raises(InsertionError):
            insert_trojan(source, generator)

    def test_spec_label(self, generator) -> None:
        host = generate_host("bus", generator, name="h")
        result = insert_trojan(host, generator, trigger_kind="counter", payload_kind="dos")
        assert result.spec.label == "counter+dos"


class TestInstrumentation:
    @pytest.mark.parametrize("kind", sorted(INSTRUMENTATION_BUILDERS))
    @pytest.mark.parametrize("family", ["crypto", "uart", "mcu"])
    def test_builders_apply(self, kind: str, family: str, generator) -> None:
        module = parse_module(generate_host(family, generator, name="h"))
        applied = INSTRUMENTATION_BUILDERS[kind](module, generator)
        if applied:
            emit_module(module)  # must still be emittable
            assert len(module.ports) >= 5

    def test_instrumented_source_parses(self, generator) -> None:
        host = generate_host("crypto", generator, name="h")
        instrumented = add_benign_instrumentation(host, generator, max_features=2)
        module = parse_module(instrumented)
        assert module.name == "h"

    def test_instrumentation_adds_ports(self, generator) -> None:
        host = generate_host("uart", generator, name="h")
        instrumented = add_benign_instrumentation(host, generator, max_features=2)
        assert len(parse_module(instrumented).ports) > len(parse_module(host).ports)

    def test_zero_features_is_identity(self, generator) -> None:
        host = generate_host("dsp", generator, name="h")
        assert add_benign_instrumentation(host, generator, max_features=0) == host
