"""Tests for the classical-ML baseline classifiers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_REGISTRY,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    LinearSVM,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
)
from repro.metrics import roc_auc


@pytest.fixture(scope="module")
def xor_free_data():
    """A linearly separable dataset every baseline should master."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(240, 5))
    weights = np.array([2.0, -1.5, 0.5, 0.0, 1.0])
    y = (x @ weights + 0.3 * rng.normal(size=240) > 0).astype(int)
    return x[:180], y[:180], x[180:], y[180:]


@pytest.fixture(scope="module")
def nonlinear_data():
    """A dataset with an interaction term linear models cannot capture."""
    rng = np.random.default_rng(1)
    x = rng.uniform(-1, 1, size=(300, 4))
    y = ((x[:, 0] * x[:, 1]) > 0).astype(int)
    return x[:220], y[:220], x[220:], y[220:]


class TestCommonInterface:
    @pytest.mark.parametrize("name", sorted(BASELINE_REGISTRY))
    def test_fit_predict_proba_contract(self, name, xor_free_data) -> None:
        x_train, y_train, x_test, _ = xor_free_data
        model = BASELINE_REGISTRY[name]()
        assert model.fit(x_train, y_train) is model
        proba = model.predict_proba(x_test)
        assert proba.shape == (len(x_test), 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(proba >= 0) and np.all(proba <= 1)
        predictions = model.predict(x_test)
        assert set(np.unique(predictions)) <= {0, 1}

    @pytest.mark.parametrize("name", sorted(BASELINE_REGISTRY))
    def test_learns_separable_problem(self, name, xor_free_data) -> None:
        x_train, y_train, x_test, y_test = xor_free_data
        model = BASELINE_REGISTRY[name]()
        model.fit(x_train, y_train)
        # Tree ensembles with axis-aligned splits need more data to nail an
        # oblique linear boundary, hence the slightly lower bar.
        minimum_accuracy = 0.75 if name in ("gradient_boosting", "decision_tree") else 0.8
        assert np.mean(model.predict(x_test) == y_test) > minimum_accuracy

    @pytest.mark.parametrize("name", sorted(BASELINE_REGISTRY))
    def test_predict_before_fit_raises(self, name) -> None:
        model = BASELINE_REGISTRY[name]()
        with pytest.raises(RuntimeError):
            model.predict_proba(np.ones((2, 3)))

    @pytest.mark.parametrize("name", sorted(BASELINE_REGISTRY))
    def test_rejects_non_binary_labels(self, name) -> None:
        model = BASELINE_REGISTRY[name]()
        with pytest.raises(ValueError):
            model.fit(np.ones((4, 2)), np.array([0, 1, 2, 1]))

    @pytest.mark.parametrize("name", sorted(BASELINE_REGISTRY))
    def test_rejects_wrong_feature_count_at_predict(self, name, xor_free_data) -> None:
        x_train, y_train, _, _ = xor_free_data
        model = BASELINE_REGISTRY[name]()
        model.fit(x_train, y_train)
        with pytest.raises(ValueError):
            model.predict_proba(np.ones((3, x_train.shape[1] + 1)))


class TestTreeModels:
    def test_tree_handles_nonlinear_interaction(self, nonlinear_data) -> None:
        x_train, y_train, x_test, y_test = nonlinear_data
        tree = DecisionTreeClassifier(max_depth=6)
        tree.fit(x_train, y_train)
        assert np.mean(tree.predict(x_test) == y_test) > 0.8

    def test_forest_beats_single_tree_auc(self, nonlinear_data) -> None:
        x_train, y_train, x_test, y_test = nonlinear_data
        tree = DecisionTreeClassifier(max_depth=3, seed=0).fit(x_train, y_train)
        forest = RandomForestClassifier(n_estimators=30, max_depth=3, seed=0).fit(
            x_train, y_train
        )
        tree_auc = roc_auc(tree.predict_proba(x_test)[:, 1], y_test)
        forest_auc = roc_auc(forest.predict_proba(x_test)[:, 1], y_test)
        assert forest_auc >= tree_auc - 0.02

    def test_tree_depth_limit_respected(self, nonlinear_data) -> None:
        x_train, y_train, _, _ = nonlinear_data
        tree = DecisionTreeClassifier(max_depth=2)
        tree.fit(x_train, y_train)
        assert tree.depth <= 2

    def test_pure_node_stops_splitting(self) -> None:
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 0, 0])
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.depth == 0
        np.testing.assert_allclose(tree.predict_proba(x)[:, 1], 0.0)

    def test_regression_tree_fits_step_function(self) -> None:
        x = np.linspace(0, 1, 60).reshape(-1, 1)
        y = (x[:, 0] > 0.5).astype(float) * 3.0
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        predictions = tree.predict(x)
        assert np.abs(predictions - y).mean() < 0.1

    def test_regression_tree_validates_input(self) -> None:
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.ones((3, 2)), np.ones(4))
        tree = DecisionTreeRegressor().fit(np.ones((3, 2)), np.ones(3))
        with pytest.raises(ValueError):
            tree.predict(np.ones((2, 3)))

    def test_boosting_improves_with_more_estimators(self, nonlinear_data) -> None:
        x_train, y_train, x_test, y_test = nonlinear_data
        weak = GradientBoostingClassifier(n_estimators=3, max_depth=2, seed=0).fit(
            x_train, y_train
        )
        strong = GradientBoostingClassifier(n_estimators=80, max_depth=2, seed=0).fit(
            x_train, y_train
        )
        weak_auc = roc_auc(weak.predict_proba(x_test)[:, 1], y_test)
        strong_auc = roc_auc(strong.predict_proba(x_test)[:, 1], y_test)
        assert strong_auc > weak_auc

    def test_invalid_hyperparameters(self) -> None:
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=0.0)


class TestLinearAndMLPModels:
    def test_logistic_weights_reflect_feature_importance(self, xor_free_data) -> None:
        x_train, y_train, _, _ = xor_free_data
        model = LogisticRegression(n_iterations=800).fit(x_train, y_train)
        # Feature 0 (weight 2.0) matters more than feature 3 (weight 0.0).
        assert abs(model.weights[0]) > abs(model.weights[3])

    def test_logistic_probabilities_calibrated_direction(self, xor_free_data) -> None:
        x_train, y_train, x_test, y_test = xor_free_data
        model = LogisticRegression().fit(x_train, y_train)
        proba = model.predict_proba(x_test)[:, 1]
        assert proba[y_test == 1].mean() > proba[y_test == 0].mean()

    def test_svm_decision_function_sign(self, xor_free_data) -> None:
        x_train, y_train, x_test, y_test = xor_free_data
        model = LinearSVM(seed=0).fit(x_train, y_train)
        scores = model.decision_function(x_test)
        assert np.mean((scores > 0).astype(int) == y_test) > 0.8

    def test_mlp_hidden_layer_validation(self) -> None:
        with pytest.raises(ValueError):
            MLPClassifier(hidden_layers=())
        with pytest.raises(ValueError):
            MLPClassifier(hidden_layers=(8, 0))

    def test_mlp_solves_nonlinear_problem(self, nonlinear_data) -> None:
        x_train, y_train, x_test, y_test = nonlinear_data
        model = MLPClassifier(hidden_layers=(32, 16), epochs=200, seed=0)
        model.fit(x_train, y_train)
        assert np.mean(model.predict(x_test) == y_test) > 0.75

    def test_deterministic_given_seed(self, xor_free_data) -> None:
        x_train, y_train, x_test, _ = xor_free_data
        first = MLPClassifier(epochs=30, seed=5).fit(x_train, y_train).predict_proba(x_test)
        second = MLPClassifier(epochs=30, seed=5).fit(x_train, y_train).predict_proba(x_test)
        np.testing.assert_allclose(first, second)
