"""Shared fixtures for the test suite.

The expensive artefacts (benchmark suite generation, feature extraction) are
session-scoped so the many tests that need "some realistic designs" or "some
extracted features" share one copy instead of regenerating them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.features import extract_modalities
from repro.trojan import SuiteConfig, TrojanDataset


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_suite_config() -> SuiteConfig:
    """A small but class-complete benchmark configuration."""
    return SuiteConfig(
        n_trojan_free=14,
        n_trojan_infected=8,
        instrumentation_probability=0.5,
        seed=11,
    )


@pytest.fixture(scope="session")
def small_dataset(small_suite_config) -> TrojanDataset:
    """A generated Trojan benchmark dataset shared across tests."""
    return TrojanDataset.generate(small_suite_config)


@pytest.fixture(scope="session")
def small_features(small_dataset):
    """Both modalities extracted for the shared dataset."""
    return extract_modalities(small_dataset)


@pytest.fixture(scope="session")
def sample_verilog() -> str:
    """A hand-written Verilog module exercising most supported constructs."""
    return """
// A small control unit used as a parser/feature fixture.
module ctrl_unit (clk, rst, start, mode, data_in, done, result);
  input clk;
  input rst;
  input start;
  input [1:0] mode;
  input [7:0] data_in;
  output done;
  output reg [7:0] result;

  parameter IDLE = 0;
  localparam RUN = 1;
  reg [1:0] state;
  reg [3:0] count;
  wire timeout;

  assign timeout = count == 4'hF;
  assign done = (state == IDLE) && !start;

  always @(*)
    begin
      case (mode)
        2'b00: result = data_in;
        2'b01: result = data_in << 1;
        2'b10: result = ~data_in;
        default: result = 8'd0;
      endcase
    end

  always @(posedge clk or posedge rst)
    begin
      if (rst)
        begin
          state <= IDLE;
          count <= 4'd0;
        end
      else
        begin
          if (state == IDLE)
            begin
              if (start)
                state <= RUN;
            end
          else
            begin
              count <= count + 4'd1;
              if (timeout)
                state <= IDLE;
            end
        end
    end
endmodule
"""


@pytest.fixture(scope="session")
def binary_classification_data():
    """A simple separable binary dataset for classifier tests."""
    generator = np.random.default_rng(7)
    n = 300
    x = generator.normal(size=(n, 6))
    weights = generator.normal(size=6)
    logits = x @ weights + 0.4 * generator.normal(size=n)
    y = (logits > 0).astype(int)
    return x, y
