"""Golden-vs-optimized equivalence for the vectorized conv/pool kernels.

The vectorized ``sliding_window_view`` kernels in ``repro.nn.layers`` must
reproduce the seed's per-position loop implementations (preserved in
``repro.nn._reference``) to 1e-8 — forward outputs, parameter gradients and
input gradients — across a grid of kernel/stride/padding shapes.  Numerical
(central-difference) gradient checks guard the hand-derived backwards
independently of both implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import _reference as golden
from repro.nn.layers import (
    AvgPool1d,
    AvgPool2d,
    Conv1d,
    Conv2d,
    MaxPool1d,
    MaxPool2d,
)

ATOL = 1e-8

CONV1D_GRID = [
    # (kernel, stride, padding, length)
    (1, 1, 0, 11),
    (2, 1, 1, 12),
    (3, 1, 1, 16),
    (3, 2, 0, 17),
    (4, 3, 2, 19),
    (5, 2, 2, 23),
]

CONV2D_GRID = [
    # (kernel, stride, padding, height, width)
    ((1, 1), (1, 1), (0, 0), 7, 9),
    ((3, 3), (1, 1), (1, 1), 8, 8),
    ((3, 3), (2, 2), (0, 0), 11, 9),
    ((2, 3), (1, 2), (1, 0), 9, 12),
    ((5, 5), (2, 2), (2, 2), 13, 13),
    ((4, 2), (3, 1), (2, 1), 12, 10),
]

POOL1D_GRID = [(2, 2, 12), (3, 1, 10), (3, 3, 15), (4, 2, 18)]
POOL2D_GRID = [((2, 2), (2, 2), 8, 8), ((3, 3), (1, 1), 7, 9), ((3, 2), (2, 2), 11, 10)]


def _seed_conv1d_forward(layer: Conv1d, x: np.ndarray) -> np.ndarray:
    """The seed's Conv1d forward: golden im2col + batched matmul."""
    n, _, length = x.shape
    out_len = layer._output_length(length)
    x_pad = (
        np.pad(x, ((0, 0), (0, 0), (layer.padding, layer.padding)))
        if layer.padding
        else x
    )
    cols = golden.im2col_1d_loop(x_pad, layer.kernel_size, layer.stride, out_len)
    w_mat = layer.weight.reshape(layer.out_channels, -1)
    out = cols @ w_mat.T + layer.bias
    return out.transpose(0, 2, 1)


def _seed_conv1d_backward(layer: Conv1d, x: np.ndarray, grad_output: np.ndarray):
    """The seed's Conv1d backward, returning (grad_input, grad_w, grad_b)."""
    n, _, length = x.shape
    out_len = layer._output_length(length)
    x_pad = (
        np.pad(x, ((0, 0), (0, 0), (layer.padding, layer.padding)))
        if layer.padding
        else x
    )
    cols = golden.im2col_1d_loop(x_pad, layer.kernel_size, layer.stride, out_len)
    grad = grad_output.transpose(0, 2, 1)
    w_mat = layer.weight.reshape(layer.out_channels, -1)
    grad_b = grad.sum(axis=(0, 1))
    grad_w = (
        grad.reshape(-1, layer.out_channels).T @ cols.reshape(-1, cols.shape[2])
    ).reshape(layer.weight.shape)
    grad_cols = grad @ w_mat
    padded_len = length + 2 * layer.padding
    grad_x_pad = golden.col2im_1d_loop(
        grad_cols, layer.in_channels, layer.kernel_size, layer.stride, padded_len
    )
    if layer.padding:
        grad_x = grad_x_pad[:, :, layer.padding : -layer.padding]
    else:
        grad_x = grad_x_pad
    return grad_x, grad_w, grad_b


def _seed_conv2d_forward(layer: Conv2d, x: np.ndarray) -> np.ndarray:
    """The seed's Conv2d forward: golden im2col + batched matmul."""
    n, _, h, w = x.shape
    out_h, out_w = layer._output_size(h, w)
    ph, pw = layer.padding
    x_pad = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if (ph or pw) else x
    cols = golden.im2col_2d_loop(x_pad, layer.kernel_size, layer.stride, (out_h, out_w))
    w_mat = layer.weight.reshape(layer.out_channels, -1)
    out = cols @ w_mat.T + layer.bias
    return out.transpose(0, 2, 1).reshape(n, layer.out_channels, out_h, out_w)


def _seed_conv2d_backward(layer: Conv2d, x: np.ndarray, grad_output: np.ndarray):
    """The seed's Conv2d backward, returning (grad_input, grad_w, grad_b)."""
    n, _, h, w = x.shape
    out_h, out_w = layer._output_size(h, w)
    ph, pw = layer.padding
    x_pad = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if (ph or pw) else x
    cols = golden.im2col_2d_loop(x_pad, layer.kernel_size, layer.stride, (out_h, out_w))
    grad = grad_output.reshape(n, layer.out_channels, out_h * out_w).transpose(0, 2, 1)
    w_mat = layer.weight.reshape(layer.out_channels, -1)
    grad_b = grad.sum(axis=(0, 1))
    grad_w = (
        grad.reshape(-1, layer.out_channels).T @ cols.reshape(-1, cols.shape[2])
    ).reshape(layer.weight.shape)
    grad_cols = grad @ w_mat
    grad_x_pad = golden.col2im_2d_loop(
        grad_cols,
        layer.in_channels,
        layer.kernel_size,
        layer.stride,
        (out_h, out_w),
        (h + 2 * ph, w + 2 * pw),
    )
    if ph or pw:
        grad_x = grad_x_pad[:, :, ph : ph + h, pw : pw + w]
    else:
        grad_x = grad_x_pad
    return grad_x, grad_w, grad_b


@pytest.mark.parametrize("kernel,stride,padding,length", CONV1D_GRID)
def test_conv1d_matches_golden(kernel, stride, padding, length):
    rng = np.random.default_rng(7)
    layer = Conv1d(3, 5, kernel_size=kernel, stride=stride, padding=padding, rng=rng)
    x = rng.standard_normal((4, 3, length))
    out = layer.forward(x)
    expected = _seed_conv1d_forward(layer, x)
    np.testing.assert_allclose(out, expected, atol=ATOL, rtol=0)

    grad_output = rng.standard_normal(out.shape)
    layer.zero_grad()
    grad_input = layer.backward(grad_output)
    ref_x, ref_w, ref_b = _seed_conv1d_backward(layer, x, grad_output)
    np.testing.assert_allclose(grad_input, ref_x, atol=ATOL, rtol=0)
    np.testing.assert_allclose(layer.grad_weight, ref_w, atol=ATOL, rtol=0)
    np.testing.assert_allclose(layer.grad_bias, ref_b, atol=ATOL, rtol=0)


@pytest.mark.parametrize("kernel,stride,padding,height,width", CONV2D_GRID)
def test_conv2d_matches_golden(kernel, stride, padding, height, width):
    rng = np.random.default_rng(11)
    layer = Conv2d(2, 4, kernel_size=kernel, stride=stride, padding=padding, rng=rng)
    x = rng.standard_normal((3, 2, height, width))
    out = layer.forward(x)
    expected = _seed_conv2d_forward(layer, x)
    np.testing.assert_allclose(out, expected, atol=ATOL, rtol=0)

    grad_output = rng.standard_normal(out.shape)
    layer.zero_grad()
    grad_input = layer.backward(grad_output)
    ref_x, ref_w, ref_b = _seed_conv2d_backward(layer, x, grad_output)
    np.testing.assert_allclose(grad_input, ref_x, atol=ATOL, rtol=0)
    np.testing.assert_allclose(layer.grad_weight, ref_w, atol=ATOL, rtol=0)
    np.testing.assert_allclose(layer.grad_bias, ref_b, atol=ATOL, rtol=0)


@pytest.mark.parametrize("pool,stride,length", POOL1D_GRID)
def test_maxpool1d_matches_golden(pool, stride, length):
    rng = np.random.default_rng(3)
    layer = MaxPool1d(pool, stride)
    x = rng.standard_normal((5, 4, length))
    out = layer.forward(x)
    windows = golden.pool_windows_1d_loop(x, pool, stride)
    np.testing.assert_allclose(out, windows.max(axis=3), atol=ATOL, rtol=0)

    # Backward must route each gradient to the seed's argmax position.
    grad_output = rng.standard_normal(out.shape)
    grad_input = layer.backward(grad_output)
    argmax = windows.argmax(axis=3)
    expected = np.zeros_like(x)
    n, c, out_len = out.shape
    n_idx = np.arange(n)[:, None, None]
    c_idx = np.arange(c)[None, :, None]
    pos = np.arange(out_len)[None, None, :] * stride + argmax
    np.add.at(expected, (n_idx, c_idx, pos), grad_output)
    np.testing.assert_allclose(grad_input, expected, atol=ATOL, rtol=0)


@pytest.mark.parametrize("pool,stride,height,width", POOL2D_GRID)
def test_maxpool2d_matches_golden(pool, stride, height, width):
    rng = np.random.default_rng(5)
    layer = MaxPool2d(pool, stride)
    x = rng.standard_normal((4, 3, height, width))
    out = layer.forward(x)
    windows = golden.pool_windows_2d_loop(x, pool, stride)
    np.testing.assert_allclose(out, windows.max(axis=4), atol=ATOL, rtol=0)


@pytest.mark.parametrize("pool,stride,length", POOL1D_GRID)
def test_avgpool1d_matches_golden_windows(pool, stride, length):
    rng = np.random.default_rng(13)
    layer = AvgPool1d(pool, stride)
    x = rng.standard_normal((5, 4, length))
    out = layer.forward(x)
    windows = golden.pool_windows_1d_loop(x, pool, stride)
    np.testing.assert_allclose(out, windows.mean(axis=3), atol=ATOL, rtol=0)


@pytest.mark.parametrize("pool,stride,height,width", POOL2D_GRID)
def test_avgpool2d_matches_golden_windows(pool, stride, height, width):
    rng = np.random.default_rng(17)
    layer = AvgPool2d(pool, stride)
    x = rng.standard_normal((4, 3, height, width))
    out = layer.forward(x)
    windows = golden.pool_windows_2d_loop(x, pool, stride)
    np.testing.assert_allclose(out, windows.mean(axis=4), atol=ATOL, rtol=0)


def _numerical_input_gradient(layer, x: np.ndarray, grad_output: np.ndarray, eps=1e-6):
    """Central-difference gradient of sum(forward(x) * grad_output) w.r.t. x."""
    gradient = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float((layer.forward(x) * grad_output).sum())
        flat[i] = original - eps
        minus = float((layer.forward(x) * grad_output).sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return gradient


@pytest.mark.parametrize(
    "layer_factory,shape",
    [
        (lambda rng: Conv1d(2, 3, kernel_size=3, stride=2, padding=1, rng=rng), (2, 2, 9)),
        (lambda rng: Conv2d(2, 3, kernel_size=3, stride=2, padding=1, rng=rng), (2, 2, 7, 7)),
        (lambda rng: AvgPool1d(3, 2), (2, 2, 9)),
        (lambda rng: AvgPool2d(2), (2, 2, 6, 6)),
    ],
)
def test_numerical_input_gradients(layer_factory, shape):
    rng = np.random.default_rng(23)
    layer = layer_factory(rng)
    x = rng.standard_normal(shape)
    out = layer.forward(x)
    grad_output = rng.standard_normal(out.shape)
    analytic = layer.backward(grad_output)
    numerical = _numerical_input_gradient(layer, x, grad_output)
    np.testing.assert_allclose(analytic, numerical, atol=1e-6, rtol=1e-6)
