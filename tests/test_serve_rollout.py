"""Champion–challenger rollout tests: ledger, gate, routing, parity.

The promotion policy is a pure state machine (:class:`RolloutController`)
so most of the gate's behaviour is tested without HTTP; the service-level
tests then cover the wiring — shadow scans riding live traffic, the
one-shot auto-promotion swapping default routing, rejection leaving the
champion in place with the evidence in ``/metrics`` — and the acceptance
property that multi-model routed scans return records byte-identical to
a single-model serial CLI scan of the same corpus.
"""

from __future__ import annotations

import copy
import json
import os
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.core.config import ClassifierConfig, NoodleConfig
from repro.engine import (
    ScanEngine,
    recalibrate_detector,
    save_detector,
    train_detector,
)
from repro.engine.bench import build_scan_batch
from repro.features import extract_modalities
from repro.serve.client import ScanServiceClient, ScanServiceError
from repro.serve.rollout import (
    STATE_PROMOTED,
    STATE_REJECTED,
    STATE_SHADOWING,
    RolloutController,
    RolloutError,
)
from repro.serve.server import ScanService
from repro.trojan import SuiteConfig, TrojanDataset


@pytest.fixture(scope="module")
def detector_a(small_features):
    config = NoodleConfig(classifier=ClassifierConfig(epochs=3, seed=0), seed=0)
    return train_detector(small_features, strategy="late", config=config).model


@pytest.fixture(scope="module")
def detector_b():
    """An independently trained model (different data, seed, epochs)."""
    features = extract_modalities(
        TrojanDataset.generate(
            SuiteConfig(n_trojan_free=6, n_trojan_infected=6, seed=41)
        )
    )
    config = NoodleConfig(classifier=ClassifierConfig(epochs=1, seed=9), seed=9)
    return train_detector(features, strategy="late", config=config).model


@pytest.fixture(scope="module")
def detector_disagreeing(detector_a):
    """A copy of ``detector_a`` recalibrated on skewed data.

    With these pinned seeds it flips the triage verdict of exactly some
    of the ``corpus`` designs — enough that a ``promote_threshold`` of
    1.0 must reject it.
    """
    challenger = copy.deepcopy(detector_a)
    fresh = extract_modalities(
        TrojanDataset.generate(
            SuiteConfig(n_trojan_free=3, n_trojan_infected=9, seed=99)
        )
    )
    recalibrate_detector(challenger, fresh)
    return challenger


@pytest.fixture(scope="module")
def artifact_a(detector_a, tmp_path_factory):
    return save_detector(detector_a, tmp_path_factory.mktemp("rollout") / "a")


@pytest.fixture(scope="module")
def artifact_a_twin(detector_a, tmp_path_factory):
    """A second copy of the same model: a challenger that always agrees."""
    return save_detector(detector_a, tmp_path_factory.mktemp("rollout") / "a_twin")


@pytest.fixture(scope="module")
def artifact_b(detector_b, tmp_path_factory):
    return save_detector(detector_b, tmp_path_factory.mktemp("rollout") / "b")


@pytest.fixture(scope="module")
def artifact_disagreeing(detector_disagreeing, tmp_path_factory):
    return save_detector(
        detector_disagreeing, tmp_path_factory.mktemp("rollout") / "disagree"
    )


@pytest.fixture(scope="module")
def corpus():
    return build_scan_batch(12, seed=202)


def _wait_for(predicate, timeout: float = 20.0, interval: float = 0.02):
    """Poll until ``predicate()`` is truthy; return its value or fail."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    pytest.fail(f"condition not reached within {timeout}s")


class TestControllerLedger:
    def test_accounting_and_rate(self):
        rollout = RolloutController("champ", "chal", min_shadow_designs=100)
        assert rollout.agreement_rate() is None
        decision = rollout.observe(
            ["trojan_free", "uncertain", "trojan_free"],
            ["trojan_free", "trojan_free", "trojan_free"],
            names=["x", "y", "z"],
        )
        assert decision is None  # below min_shadow_designs
        snapshot = rollout.snapshot()
        assert snapshot["shadow_designs"] == 3
        assert snapshot["agreements"] == 2
        assert snapshot["agreement_rate"] == pytest.approx(2 / 3)
        assert snapshot["state"] == STATE_SHADOWING
        assert snapshot["disagreements"] == [
            {"name": "y", "champion": "uncertain", "challenger": "trojan_free"}
        ]

    def test_promotes_at_threshold(self):
        rollout = RolloutController(
            "champ", "chal", promote_threshold=0.75, min_shadow_designs=4
        )
        decision = rollout.observe(["a", "a", "a", "b"], ["a", "a", "a", "c"])
        # 3/4 agreement meets the 0.75 threshold exactly.
        assert decision == STATE_PROMOTED
        assert rollout.state == STATE_PROMOTED
        assert rollout.snapshot()["forced"] is False
        assert rollout.snapshot()["decided_at"] is not None

    def test_rejects_below_threshold_and_decision_is_one_shot(self):
        rollout = RolloutController(
            "champ", "chal", promote_threshold=0.9, min_shadow_designs=4
        )
        assert rollout.observe(["a"] * 4, ["a", "a", "b", "b"]) == STATE_REJECTED
        assert rollout.state == STATE_REJECTED
        # A late-arriving perfect batch must not flip the terminal state.
        assert rollout.observe(["a"] * 50, ["a"] * 50) is None
        assert rollout.state == STATE_REJECTED
        assert rollout.snapshot()["shadow_designs"] == 4
        assert rollout.should_sample() is False  # terminal: stop shadowing

    def test_decision_waits_for_min_designs(self):
        rollout = RolloutController("champ", "chal", min_shadow_designs=10)
        for _ in range(9):
            assert rollout.observe(["a"], ["a"]) is None
        assert rollout.observe(["a"], ["a"]) == STATE_PROMOTED

    def test_force_promote_is_recorded_as_forced(self):
        rollout = RolloutController("champ", "chal")
        rollout.force_promote()
        snapshot = rollout.snapshot()
        assert snapshot["state"] == STATE_PROMOTED
        assert snapshot["forced"] is True

    def test_force_promote_can_overrule_a_rejection(self):
        rollout = RolloutController(
            "champ", "chal", promote_threshold=1.0, min_shadow_designs=1
        )
        assert rollout.observe(["a"], ["b"]) == STATE_REJECTED
        rollout.force_promote()
        assert rollout.state == STATE_PROMOTED

    def test_disagreement_sample_is_bounded(self):
        rollout = RolloutController("champ", "chal", min_shadow_designs=1000)
        rollout.observe(["a"] * 100, ["b"] * 100)
        assert len(rollout.snapshot()["disagreements"]) == 16

    def test_error_diffusion_sampling_is_deterministic(self):
        rollout = RolloutController("champ", "chal", sample_rate=0.25)
        pattern = [rollout.should_sample() for _ in range(8)]
        assert pattern == [False, False, False, True] * 2
        full = RolloutController("champ2", "chal2")  # sample_rate=1.0
        assert all(full.should_sample() for _ in range(10))

    def test_validation_errors(self):
        with pytest.raises(RolloutError):
            RolloutController("same", "same")
        with pytest.raises(RolloutError):
            RolloutController("a", "b", promote_threshold=1.5)
        with pytest.raises(RolloutError):
            RolloutController("a", "b", min_shadow_designs=0)
        with pytest.raises(RolloutError):
            RolloutController("a", "b", sample_rate=0.0)
        rollout = RolloutController("a", "b")
        with pytest.raises(RolloutError):
            rollout.observe(["x"], ["x", "y"])


class TestServiceRollout:
    def test_shadow_accounting_surfaces_in_metrics(
        self, artifact_a, artifact_a_twin, corpus
    ):
        with ScanService(
            artifacts={"champ": artifact_a, "chal": artifact_a_twin},
            shadow="chal",
            promote_threshold=0.9,
            min_shadow_designs=10_000,  # never decides during this test
            port=0,
            batch_window_s=0.0,
        ) as svc:
            with ScanServiceClient(svc.host, svc.port) as client:
                client.wait_until_ready()
                client.scan_texts([(s.name, s.source) for s in corpus[:4]])

                def shadow_counted():
                    snapshot = client.metrics()
                    return (
                        snapshot["shadow_designs"] == 4
                        and snapshot["rollout"]["shadow_designs"] == 4
                    ) and snapshot
                snapshot = _wait_for(shadow_counted)
            assert snapshot["shadow_scans"] == 1
            assert snapshot["rollout"]["state"] == STATE_SHADOWING
            assert snapshot["rollout"]["agreement_rate"] == 1.0
            assert snapshot["champion"] == "champ"

    def test_challenger_auto_promotes_at_threshold(
        self, artifact_a, artifact_a_twin, corpus
    ):
        with ScanService(
            artifacts={"champ": artifact_a, "chal": artifact_a_twin},
            shadow="chal",
            promote_threshold=0.98,
            min_shadow_designs=6,
            port=0,
            batch_window_s=0.0,
        ) as svc:
            with ScanServiceClient(svc.host, svc.port) as client:
                client.wait_until_ready()
                response = client.scan_texts([(s.name, s.source) for s in corpus])
                assert response["model"] == "champ"
                _wait_for(lambda: svc.champion == "chal")
                snapshot = client.metrics()
                assert snapshot["rollout"]["state"] == STATE_PROMOTED
                assert snapshot["rollout"]["forced"] is False
                assert snapshot["promotions"] == 1
                assert snapshot["forced_promotions"] == 0
                # Default routing now lands on the promoted challenger.
                after = client.scan_texts([(corpus[0].name, corpus[0].source)])
                assert after["model"] == "chal"
                health = client.healthz()
                assert health["champion"] == "chal"
                assert health["rollout"] == STATE_PROMOTED

    def test_disagreeing_challenger_is_rejected_with_evidence(
        self, artifact_a, artifact_disagreeing, corpus
    ):
        with ScanService(
            artifacts={"champ": artifact_a, "chal": artifact_disagreeing},
            shadow="chal",
            promote_threshold=1.0,
            min_shadow_designs=len(corpus),
            port=0,
            batch_window_s=0.0,
        ) as svc:
            with ScanServiceClient(svc.host, svc.port) as client:
                client.wait_until_ready()
                client.scan_texts([(s.name, s.source) for s in corpus])
                snapshot = _wait_for(
                    lambda: (m := client.metrics())["rollout"]["state"]
                    != STATE_SHADOWING
                    and m
                )
                assert snapshot["rollout"]["state"] == STATE_REJECTED
                assert snapshot["rollout"]["agreement_rate"] < 1.0
                assert snapshot["rollout"]["disagreements"]
                disagreement = snapshot["rollout"]["disagreements"][0]
                assert disagreement["champion"] != disagreement["challenger"]
                assert snapshot["promotions"] == 0
                # The champion keeps serving.
                assert svc.champion == "champ"
                after = client.scan_texts([(corpus[0].name, corpus[0].source)])
                assert after["model"] == "champ"

    def test_forced_promotion_overrides_the_gate(
        self, artifact_a, artifact_b, corpus
    ):
        with ScanService(
            artifacts={"champ": artifact_a, "chal": artifact_b},
            shadow="chal",
            promote_threshold=1.0,
            min_shadow_designs=10_000,
            port=0,
            batch_window_s=0.0,
        ) as svc:
            with ScanServiceClient(svc.host, svc.port) as client:
                client.wait_until_ready()
                payload = client.promote()
                assert payload["champion"] == "chal"
                assert payload["rollout"]["forced"] is True
                assert svc.champion == "chal"
                snapshot = client.metrics()
                assert snapshot["forced_promotions"] == 1
                response = client.scan_texts([(corpus[0].name, corpus[0].source)])
                assert response["model"] == "chal"

    def test_promote_without_a_rollout_is_400(self, artifact_a):
        with ScanService(artifact_a, port=0) as svc:
            with ScanServiceClient(svc.host, svc.port) as client:
                client.wait_until_ready()
                with pytest.raises(ScanServiceError) as excinfo:
                    client.promote()
                assert excinfo.value.status == 400


class TestMultiModelRouting:
    def test_body_field_and_header_route_to_the_named_model(
        self, artifact_a, artifact_b, corpus
    ):
        fingerprints = {
            name: json.loads((path / "manifest.json").read_text())["fingerprint"]
            for name, path in (("a", artifact_a), ("b", artifact_b))
        }
        with ScanService(
            artifacts={"a": artifact_a, "b": artifact_b}, port=0, batch_window_s=0.0
        ) as svc:
            with ScanServiceClient(svc.host, svc.port) as client:
                client.wait_until_ready()
                default = client.scan_texts([(corpus[0].name, corpus[0].source)])
                assert default["model"] == "a"  # first entry is the champion
                assert default["fingerprint"] == fingerprints["a"]
                routed = client.scan_texts(
                    [(corpus[1].name, corpus[1].source)], model="b"
                )
                assert routed["model"] == "b"
                assert routed["fingerprint"] == fingerprints["b"]
                # Header routing (per-tenant proxies set a header, not the
                # body) reaches the same lane.
                conn = client._connection()
                conn.request(
                    "POST",
                    "/scan",
                    body=json.dumps(
                        {
                            "sources": [
                                {"name": corpus[2].name, "source": corpus[2].source}
                            ]
                        }
                    ),
                    headers={
                        "Content-Type": "application/json",
                        "X-Repro-Model": "b",
                    },
                )
                http_response = conn.getresponse()
                via_header = json.loads(http_response.read())
                assert http_response.status == 200
                assert via_header["model"] == "b"
                assert via_header["fingerprint"] == fingerprints["b"]
                per_model = client.metrics()["scans_by_model"]
                assert per_model == {"a": 1, "b": 2}

    def test_unknown_model_is_400(self, artifact_a, corpus):
        with ScanService(artifact_a, port=0) as svc:
            with ScanServiceClient(svc.host, svc.port) as client:
                client.wait_until_ready()
                with pytest.raises(ScanServiceError) as excinfo:
                    client.scan_texts(
                        [(corpus[0].name, corpus[0].source)], model="nope"
                    )
                assert excinfo.value.status == 400
                assert "nope" in str(excinfo.value)

    def test_healthz_lists_every_model(self, artifact_a, artifact_b):
        with ScanService(
            artifacts={"a": artifact_a, "b": artifact_b}, port=0
        ) as svc:
            with ScanServiceClient(svc.host, svc.port) as client:
                health = client.wait_until_ready()
                assert set(health["models"]) == {"a", "b"}
                assert health["champion"] == "a"
                assert (
                    health["models"]["a"]["fingerprint"]
                    != health["models"]["b"]["fingerprint"]
                )


class TestRoutedEqualsSerial:
    def test_routed_records_byte_identical_to_serial_engine(
        self, detector_b, artifact_a, artifact_b, corpus
    ):
        """Concurrent scans routed to model b == a serial scan with b."""
        serial = ScanEngine(detector_b).scan_sources(corpus, workers=1)
        expected = [record.to_dict() for record in serial.records]

        with ScanService(
            artifacts={"a": artifact_a, "b": artifact_b},
            port=0,
            batch_window_s=0.05,
            max_batch=16,
        ) as svc:
            ScanServiceClient(svc.host, svc.port).wait_until_ready()

            def scan_one(source):
                with ScanServiceClient(svc.host, svc.port) as client:
                    return client.scan_texts(
                        [(source.name, source.source)], model="b"
                    )

            with ThreadPoolExecutor(len(corpus)) as pool:
                responses = list(pool.map(scan_one, corpus))

        observed = [response["records"][0] for response in responses]
        assert json.dumps(observed, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )
        assert all(response["model"] == "b" for response in responses)

    def test_routed_records_byte_identical_to_single_model_cli_scan(
        self, artifact_a, artifact_b, corpus, tmp_path
    ):
        """The acceptance property against the real single-model CLI."""
        hdl_dir = tmp_path / "designs"
        hdl_dir.mkdir()
        for source in corpus:
            (hdl_dir / f"{source.name}.v").write_text(source.source)
        output = tmp_path / "serial.json"
        env = dict(
            os.environ, PYTHONPATH=str(Path(__file__).parent.parent / "src")
        )
        subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "scan",
                "--artifact",
                str(artifact_b),
                str(hdl_dir),
                "--no-cache",
                "--output",
                str(output),
            ],
            check=True,
            env=env,
            capture_output=True,
            text=True,
        )
        expected = json.loads(output.read_text())["records"]

        with ScanService(
            artifacts={"a": artifact_a, "b": artifact_b},
            port=0,
            batch_window_s=0.0,
        ) as svc:
            with ScanServiceClient(svc.host, svc.port) as client:
                client.wait_until_ready()
                response = client.scan(paths=[str(hdl_dir)], model="b")
        assert json.dumps(response["records"], sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )
