"""Tests for conformal prediction: scores, ICP validity, combination, regions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays
from hypothesis import strategies as st

from repro.conformal import (
    InductiveConformalClassifier,
    available_combiners,
    combine_p_value_matrices,
    confidence_scores,
    credibility,
    evaluate_p_values,
    evaluate_regions,
    fisher_combination,
    forced_predictions,
    get_combiner,
    get_nonconformity,
    inverse_probability_score,
    margin_score,
    maximum_combination,
    minimum_combination,
    p_values_to_probabilities,
    prediction_regions,
    region_kind_counts,
    set_confusion_matrix,
    stouffer_combination,
    validity_curve,
)


def _synthetic_classifier_output(n: int, rng: np.random.Generator, noise: float = 0.25):
    """Labels plus imperfect 'classifier' probabilities for them."""
    labels = rng.integers(0, 2, size=n)
    p1 = np.clip(labels + rng.normal(0, noise, size=n), 0.01, 0.99)
    probabilities = np.column_stack([1 - p1, p1])
    return probabilities, labels


class TestNonconformityScores:
    def test_inverse_probability(self) -> None:
        probabilities = np.array([[0.8, 0.2], [0.3, 0.7]])
        scores = inverse_probability_score(probabilities, np.array([0, 1]))
        np.testing.assert_allclose(scores, [0.2, 0.3])

    def test_margin_score(self) -> None:
        probabilities = np.array([[0.9, 0.1], [0.4, 0.6]])
        scores = margin_score(probabilities, np.array([0, 0]))
        np.testing.assert_allclose(scores, [(0.1 - 0.9 + 1) / 2, (0.6 - 0.4 + 1) / 2])

    def test_one_dimensional_probabilities_accepted(self) -> None:
        scores = inverse_probability_score(np.array([0.7, 0.2]), np.array([1, 0]))
        np.testing.assert_allclose(scores, [0.3, 0.2])

    def test_correct_label_scores_lower(self) -> None:
        probabilities = np.array([[0.9, 0.1]])
        right = inverse_probability_score(probabilities, np.array([0]))[0]
        wrong = inverse_probability_score(probabilities, np.array([1]))[0]
        assert right < wrong

    def test_get_nonconformity(self) -> None:
        assert get_nonconformity("margin") is margin_score
        with pytest.raises(ValueError):
            get_nonconformity("energy")

    def test_invalid_probabilities_rejected(self) -> None:
        with pytest.raises(ValueError):
            inverse_probability_score(np.array([[1.5, -0.5]]), np.array([0]))


class TestInductiveConformal:
    def test_p_value_range_and_shape(self) -> None:
        rng = np.random.default_rng(0)
        cal_probs, cal_labels = _synthetic_classifier_output(80, rng)
        test_probs, _ = _synthetic_classifier_output(40, rng)
        icp = InductiveConformalClassifier().calibrate(cal_probs, cal_labels)
        p = icp.p_values(test_probs)
        assert p.shape == (40, 2)
        assert np.all(p > 0) and np.all(p <= 1)

    def test_marginal_validity(self) -> None:
        """Coverage at confidence E must be at least roughly E."""
        rng = np.random.default_rng(1)
        cal_probs, cal_labels = _synthetic_classifier_output(300, rng)
        test_probs, test_labels = _synthetic_classifier_output(400, rng)
        icp = InductiveConformalClassifier(mondrian=False).calibrate(cal_probs, cal_labels)
        p = icp.p_values(test_probs)
        for confidence in (0.8, 0.9):
            evaluation = evaluate_p_values(p, test_labels, confidence=confidence)
            assert evaluation.coverage >= confidence - 0.07

    def test_mondrian_per_class_validity_under_imbalance(self) -> None:
        """Label-conditional calibration protects the minority class."""
        rng = np.random.default_rng(2)
        n_cal, n_test = 400, 600
        cal_labels = (rng.random(n_cal) < 0.2).astype(int)
        test_labels = (rng.random(n_test) < 0.2).astype(int)
        # Classifier biased against the minority class.
        def biased_probs(labels):
            p1 = np.clip(0.35 * labels + rng.normal(0.1, 0.15, size=len(labels)), 0.01, 0.99)
            return np.column_stack([1 - p1, p1])

        icp = InductiveConformalClassifier(mondrian=True).calibrate(
            biased_probs(cal_labels), cal_labels
        )
        p = icp.p_values(biased_probs(test_labels))
        evaluation = evaluate_p_values(p, test_labels, confidence=0.9)
        assert evaluation.per_class_coverage[1] >= 0.8

    def test_calibration_summary(self) -> None:
        rng = np.random.default_rng(3)
        cal_probs, cal_labels = _synthetic_classifier_output(50, rng)
        icp = InductiveConformalClassifier().calibrate(cal_probs, cal_labels)
        summary = icp.calibration_summary()
        assert sum(summary.values()) == 50

    def test_smoothed_p_values_valid_range(self) -> None:
        rng = np.random.default_rng(4)
        cal_probs, cal_labels = _synthetic_classifier_output(60, rng)
        icp = InductiveConformalClassifier(smoothing=True, rng=rng).calibrate(
            cal_probs, cal_labels
        )
        p = icp.p_values(cal_probs)
        assert np.all(p >= 0) and np.all(p <= 1)

    def test_point_prediction_and_confidence(self) -> None:
        rng = np.random.default_rng(5)
        cal_probs, cal_labels = _synthetic_classifier_output(100, rng, noise=0.1)
        test_probs, test_labels = _synthetic_classifier_output(100, rng, noise=0.1)
        icp = InductiveConformalClassifier().calibrate(cal_probs, cal_labels)
        predictions = icp.predict_point(test_probs)
        assert np.mean(predictions == test_labels) > 0.8
        assert np.all(icp.credibility(test_probs) <= 1)
        assert np.all(icp.confidence(test_probs) <= 1)

    def test_errors_before_calibration_and_bad_inputs(self) -> None:
        icp = InductiveConformalClassifier()
        with pytest.raises(RuntimeError):
            icp.p_values(np.array([[0.5, 0.5]]))
        with pytest.raises(ValueError):
            icp.calibrate(np.empty((0, 2)), np.empty(0))
        icp.calibrate(np.array([[0.7, 0.3], [0.2, 0.8]]), np.array([0, 1]))
        with pytest.raises(ValueError):
            icp.p_values(np.ones((2, 3)) / 3)


class TestDegenerateCalibrationSets:
    """Empty / single-class calibration must fail fast with a clear error."""

    def test_zero_calibration_points_rejected(self) -> None:
        icp = InductiveConformalClassifier()
        with pytest.raises(ValueError, match="must not be empty"):
            icp.calibrate(np.empty((0, 2)), np.empty(0))

    def test_mondrian_single_class_calibration_rejected(self) -> None:
        probs = np.array([[0.9, 0.1], [0.8, 0.2], [0.7, 0.3]])
        labels = np.zeros(3, dtype=int)  # class 1 has no calibration examples
        with pytest.raises(ValueError, match="every class"):
            InductiveConformalClassifier(mondrian=True).calibrate(probs, labels)

    def test_non_mondrian_single_class_calibration_allowed(self) -> None:
        probs = np.array([[0.9, 0.1], [0.8, 0.2], [0.7, 0.3]])
        labels = np.zeros(3, dtype=int)
        icp = InductiveConformalClassifier(mondrian=False).calibrate(probs, labels)
        p = icp.p_values(probs)
        assert p.shape == (3, 2)

    def test_state_round_trip_still_works(self) -> None:
        rng = np.random.default_rng(8)
        cal_probs, cal_labels = _synthetic_classifier_output(40, rng)
        icp = InductiveConformalClassifier().calibrate(cal_probs, cal_labels)
        restored = InductiveConformalClassifier.from_calibration_state(
            icp.calibration_state()
        )
        np.testing.assert_array_equal(restored.p_values(cal_probs), icp.p_values(cal_probs))

    def test_state_missing_entry_rejected(self) -> None:
        rng = np.random.default_rng(9)
        cal_probs, cal_labels = _synthetic_classifier_output(40, rng)
        state = InductiveConformalClassifier().calibrate(
            cal_probs, cal_labels
        ).calibration_state()
        del state["sorted_label_1"]
        with pytest.raises(ValueError, match="sorted_label_1"):
            InductiveConformalClassifier.from_calibration_state(state)

    @pytest.mark.parametrize(
        "missing", ["calibration_scores", "calibration_labels", "sorted_marginal"]
    )
    def test_state_missing_array_rejected(self, missing: str) -> None:
        rng = np.random.default_rng(12)
        cal_probs, cal_labels = _synthetic_classifier_output(40, rng)
        state = InductiveConformalClassifier().calibrate(
            cal_probs, cal_labels
        ).calibration_state()
        del state[missing]
        with pytest.raises(ValueError, match=missing):
            InductiveConformalClassifier.from_calibration_state(state)

    def test_state_missing_setting_rejected(self) -> None:
        rng = np.random.default_rng(13)
        cal_probs, cal_labels = _synthetic_classifier_output(40, rng)
        state = InductiveConformalClassifier().calibrate(
            cal_probs, cal_labels
        ).calibration_state()
        del state["settings"]["n_classes"]
        with pytest.raises(ValueError, match="n_classes"):
            InductiveConformalClassifier.from_calibration_state(state)

    def test_state_with_empty_calibration_rejected(self) -> None:
        rng = np.random.default_rng(10)
        cal_probs, cal_labels = _synthetic_classifier_output(40, rng)
        state = InductiveConformalClassifier().calibrate(
            cal_probs, cal_labels
        ).calibration_state()
        state["calibration_scores"] = np.empty(0)
        with pytest.raises(ValueError, match="empty calibration"):
            InductiveConformalClassifier.from_calibration_state(state)

    def test_state_with_classless_mondrian_scores_rejected(self) -> None:
        rng = np.random.default_rng(11)
        cal_probs, cal_labels = _synthetic_classifier_output(40, rng)
        state = InductiveConformalClassifier().calibrate(
            cal_probs, cal_labels
        ).calibration_state()
        state["sorted_label_1"] = np.empty(0)
        with pytest.raises(ValueError, match="class\\(es\\) \\[1\\]"):
            InductiveConformalClassifier.from_calibration_state(state)


class TestCombination:
    def test_all_combiners_return_valid_p_values(self) -> None:
        rng = np.random.default_rng(0)
        p = rng.uniform(size=(50, 3))
        for name in available_combiners():
            combined = get_combiner(name)(p)
            assert combined.shape == (50,)
            assert np.all(combined >= 0) and np.all(combined <= 1)

    def test_fisher_known_value(self) -> None:
        # Two p-values of 1.0 give a chi-square statistic of 0 -> combined 1.
        np.testing.assert_allclose(fisher_combination(np.array([[1.0, 1.0]])), [1.0])

    def test_fisher_small_inputs_give_small_output(self) -> None:
        assert fisher_combination(np.array([[0.001, 0.002]]))[0] < 0.01

    def test_stouffer_symmetric_half(self) -> None:
        np.testing.assert_allclose(stouffer_combination(np.array([[0.5, 0.5]])), [0.5], atol=1e-9)

    def test_minimum_is_bonferroni(self) -> None:
        np.testing.assert_allclose(minimum_combination(np.array([[0.01, 0.5]])), [0.02])

    def test_maximum_combination(self) -> None:
        np.testing.assert_allclose(maximum_combination(np.array([[0.2, 0.7]])), [0.7])

    def test_unknown_combiner(self) -> None:
        with pytest.raises(ValueError):
            get_combiner("median-ish")

    def test_combine_matrices_shape_checks(self) -> None:
        a = np.random.default_rng(0).uniform(size=(10, 2))
        b = np.random.default_rng(1).uniform(size=(10, 2))
        combined = combine_p_value_matrices([a, b], "fisher")
        assert combined.shape == (10, 2)
        with pytest.raises(ValueError):
            combine_p_value_matrices([], "fisher")
        with pytest.raises(ValueError):
            combine_p_value_matrices([a, b[:5]], "fisher")

    def test_agreement_strengthens_fisher_evidence(self) -> None:
        """Two modalities agreeing on a small p-value yield a smaller combined
        p-value than either modality combined with an uninformative one."""
        agreeing = fisher_combination(np.array([[0.05, 0.05]]))[0]
        mixed = fisher_combination(np.array([[0.05, 0.9]]))[0]
        assert agreeing < mixed

    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 30), st.integers(1, 4)),
            elements=st.floats(0.001, 1.0),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_combiners_bounded_property(self, p_values) -> None:
        for name in ("fisher", "stouffer", "arithmetic", "geometric", "minimum", "maximum"):
            combined = get_combiner(name)(p_values)
            assert np.all(combined >= 0.0) and np.all(combined <= 1.0)
            assert np.all(np.isfinite(combined))

    @given(st.floats(0.01, 0.99), st.floats(0.01, 0.99))
    @settings(max_examples=40, deadline=None)
    def test_fisher_monotone_property(self, p1, p2) -> None:
        """Decreasing one input p-value never increases the Fisher combination."""
        base = fisher_combination(np.array([[p1, p2]]))[0]
        smaller = fisher_combination(np.array([[p1 / 2, p2]]))[0]
        assert smaller <= base + 1e-12


class TestRegionsAndMetrics:
    def test_region_membership(self) -> None:
        p = np.array([[0.8, 0.05], [0.4, 0.6], [0.02, 0.03]])
        regions = prediction_regions(p, confidence=0.9)
        assert regions[0].labels == (0,)
        assert regions[1].labels == (0, 1) and regions[1].is_uncertain
        assert regions[2].is_empty

    def test_higher_confidence_gives_larger_regions(self) -> None:
        rng = np.random.default_rng(0)
        p = rng.uniform(size=(100, 2))
        loose = prediction_regions(p, confidence=0.99)
        tight = prediction_regions(p, confidence=0.6)
        assert sum(len(r) for r in loose) >= sum(len(r) for r in tight)

    def test_forced_predictions_and_scores(self) -> None:
        p = np.array([[0.7, 0.2], [0.1, 0.9]])
        np.testing.assert_array_equal(forced_predictions(p), [0, 1])
        np.testing.assert_allclose(credibility(p), [0.7, 0.9])
        np.testing.assert_allclose(confidence_scores(p), [0.8, 0.9])

    def test_p_values_to_probabilities(self) -> None:
        p = np.array([[0.5, 0.5], [0.0, 0.0], [0.9, 0.1]])
        probabilities = p_values_to_probabilities(p)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)
        np.testing.assert_allclose(probabilities[1], [0.5, 0.5])

    def test_region_kind_counts(self) -> None:
        p = np.array([[0.8, 0.05], [0.4, 0.6], [0.02, 0.03]])
        counts = region_kind_counts(prediction_regions(p, confidence=0.9))
        assert counts == {"empty": 1, "singleton": 1, "uncertain": 1}

    def test_evaluate_regions_metrics(self) -> None:
        p = np.array([[0.9, 0.05], [0.05, 0.9], [0.5, 0.6], [0.01, 0.9]])
        labels = np.array([0, 1, 1, 0])
        evaluation = evaluate_p_values(p, labels, confidence=0.9)
        assert 0.0 <= evaluation.coverage <= 1.0
        assert evaluation.average_region_size >= 0.0
        assert 0 <= evaluation.singleton_fraction <= 1
        assert set(evaluation.per_class_coverage) == {0, 1}
        as_dict = evaluation.as_dict()
        assert "coverage_class_1" in as_dict

    def test_set_confusion_matrix(self) -> None:
        p = np.array([[0.9, 0.05], [0.05, 0.9], [0.5, 0.6], [0.01, 0.02]])
        labels = np.array([0, 0, 1, 1])
        counts = set_confusion_matrix(prediction_regions(p, confidence=0.9), labels)
        assert counts["true_negative"] == 1
        assert counts["false_positive"] == 1
        assert counts["uncertain"] == 1
        assert counts["empty"] == 1
        assert sum(counts.values()) == 4

    def test_validity_curve_monotone_region_size(self) -> None:
        rng = np.random.default_rng(1)
        cal_probs, cal_labels = _synthetic_classifier_output(200, rng)
        test_probs, test_labels = _synthetic_classifier_output(200, rng)
        icp = InductiveConformalClassifier().calibrate(cal_probs, cal_labels)
        curve = validity_curve(icp.p_values(test_probs), test_labels)
        sizes = [point["average_region_size"] for point in curve]
        assert sizes == sorted(sizes)

    def test_invalid_inputs(self) -> None:
        with pytest.raises(ValueError):
            prediction_regions(np.array([[0.5, 0.5]]), confidence=1.5)
        with pytest.raises(ValueError):
            evaluate_regions([], np.array([]))
