"""Unit tests for loss values, optimizer updates and initializers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Dense,
    available_initializers,
    get_initializer,
    get_loss,
    get_optimizer,
)
from repro.nn.losses import (
    BinaryCrossEntropy,
    BinaryCrossEntropyWithLogits,
    HingeLoss,
    MeanSquaredError,
    SoftmaxCrossEntropy,
)
from repro.nn.optimizers import SGD, Adam, RMSProp


class TestLossValues:
    def test_mse_zero_for_perfect_prediction(self) -> None:
        pred = np.array([1.0, 2.0, 3.0])
        assert MeanSquaredError().loss(pred, pred) == 0.0

    def test_mse_known_value(self) -> None:
        assert MeanSquaredError().loss(np.array([1.0, 3.0]), np.array([0.0, 1.0])) == pytest.approx(2.5)

    def test_bce_known_value(self) -> None:
        loss = BinaryCrossEntropy().loss(np.array([0.5, 0.5]), np.array([1.0, 0.0]))
        assert loss == pytest.approx(np.log(2.0))

    def test_bce_penalises_confident_mistakes(self) -> None:
        confident_wrong = BinaryCrossEntropy().loss(np.array([0.99]), np.array([0.0]))
        hesitant_wrong = BinaryCrossEntropy().loss(np.array([0.6]), np.array([0.0]))
        assert confident_wrong > hesitant_wrong

    def test_bce_logits_matches_probability_form(self) -> None:
        logits = np.array([-2.0, 0.3, 1.5, -0.7])
        targets = np.array([0.0, 1.0, 1.0, 0.0])
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        assert BinaryCrossEntropyWithLogits().loss(logits, targets) == pytest.approx(
            BinaryCrossEntropy().loss(probabilities, targets)
        )

    def test_bce_shape_mismatch_raises(self) -> None:
        with pytest.raises(ValueError):
            BinaryCrossEntropy().loss(np.array([0.5, 0.5]), np.array([1.0]))

    def test_softmax_crossentropy_prefers_correct_class(self) -> None:
        loss = SoftmaxCrossEntropy()
        good = loss.loss(np.array([[5.0, 0.0]]), np.array([0]))
        bad = loss.loss(np.array([[0.0, 5.0]]), np.array([0]))
        assert good < bad

    def test_hinge_zero_beyond_margin(self) -> None:
        assert HingeLoss().loss(np.array([2.0, -3.0]), np.array([1, 0])) == 0.0

    def test_hinge_accepts_signed_targets(self) -> None:
        loss01 = HingeLoss().loss(np.array([0.5, -0.5]), np.array([1, 0]))
        loss_pm = HingeLoss().loss(np.array([0.5, -0.5]), np.array([1, -1]))
        assert loss01 == pytest.approx(loss_pm)

    def test_get_loss_by_name_and_instance(self) -> None:
        assert isinstance(get_loss("mse"), MeanSquaredError)
        instance = BinaryCrossEntropy()
        assert get_loss(instance) is instance

    def test_get_loss_unknown(self) -> None:
        with pytest.raises(ValueError, match="Unknown loss"):
            get_loss("absolute")


class TestOptimizers:
    @staticmethod
    def _quadratic_minimisation(optimizer, steps: int = 300) -> float:
        """Minimise ||w - 3||^2 by feeding the optimizer explicit gradients."""
        w = np.array([10.0, -10.0])
        grad = np.zeros_like(w)
        optimizer.bind([w], [grad])
        for _ in range(steps):
            grad[...] = 2.0 * (w - 3.0)
            optimizer.step()
        return float(np.abs(w - 3.0).max())

    def test_sgd_converges(self) -> None:
        assert self._quadratic_minimisation(SGD(learning_rate=0.1)) < 1e-3

    def test_sgd_momentum_converges(self) -> None:
        assert self._quadratic_minimisation(SGD(learning_rate=0.05, momentum=0.9)) < 1e-3

    def test_adam_converges(self) -> None:
        assert self._quadratic_minimisation(Adam(learning_rate=0.2)) < 1e-2

    def test_rmsprop_converges(self) -> None:
        assert self._quadratic_minimisation(RMSProp(learning_rate=0.05)) < 1e-2

    def test_weight_decay_shrinks_weights(self) -> None:
        w = np.array([5.0])
        grad = np.zeros_like(w)
        optimizer = SGD(learning_rate=0.1, weight_decay=1.0)
        optimizer.bind([w], [grad])
        for _ in range(50):
            grad[...] = 0.0
            optimizer.step()
        assert abs(w[0]) < 0.1

    def test_updates_happen_in_place(self) -> None:
        layer = Dense(2, 2, rng=np.random.default_rng(0))
        weight_reference = layer.weight
        optimizer = get_optimizer("sgd", learning_rate=0.1)
        optimizer.bind(layer.parameters(), layer.gradients())
        layer.grad_weight[...] = 1.0
        optimizer.step()
        assert layer.weight is weight_reference
        assert np.all(layer.weight != get_initializer("zeros")((2, 2), np.random.default_rng()))

    def test_zero_grad(self) -> None:
        w = np.array([1.0])
        grad = np.array([5.0])
        optimizer = SGD()
        optimizer.bind([w], [grad])
        optimizer.zero_grad()
        assert grad[0] == 0.0

    def test_invalid_hyperparameters(self) -> None:
        with pytest.raises(ValueError):
            SGD(learning_rate=-1.0)
        with pytest.raises(ValueError):
            SGD(momentum=1.5)
        with pytest.raises(ValueError):
            Adam(beta1=1.2)
        with pytest.raises(ValueError):
            RMSProp(decay=0.0)

    def test_get_optimizer_unknown(self) -> None:
        with pytest.raises(ValueError, match="Unknown optimizer"):
            get_optimizer("adagradish")

    def test_bind_misaligned_lists(self) -> None:
        with pytest.raises(ValueError):
            SGD().bind([np.zeros(2)], [])


class TestInitializers:
    def test_registry_names_resolve(self) -> None:
        rng = np.random.default_rng(0)
        for name in available_initializers():
            array = get_initializer(name)((4, 5), rng)
            assert array.shape == (4, 5)

    def test_zeros_and_ones(self) -> None:
        rng = np.random.default_rng(0)
        assert np.all(get_initializer("zeros")((3,), rng) == 0.0)
        assert np.all(get_initializer("ones")((3,), rng) == 1.0)

    def test_he_normal_scale(self) -> None:
        rng = np.random.default_rng(0)
        samples = get_initializer("he_normal")((200, 100), rng)
        expected_std = np.sqrt(2.0 / 200)
        assert abs(samples.std() - expected_std) / expected_std < 0.1

    def test_xavier_uniform_bounds(self) -> None:
        rng = np.random.default_rng(0)
        samples = get_initializer("xavier_uniform")((50, 50), rng)
        limit = np.sqrt(6.0 / 100)
        assert samples.max() <= limit and samples.min() >= -limit

    def test_conv_fan_in_uses_receptive_field(self) -> None:
        rng = np.random.default_rng(0)
        kernel = get_initializer("he_normal")((8, 4, 3, 3), rng)
        expected_std = np.sqrt(2.0 / (4 * 9))
        assert abs(kernel.std() - expected_std) / expected_std < 0.15

    def test_unknown_initializer(self) -> None:
        with pytest.raises(ValueError, match="Unknown initializer"):
            get_initializer("lecun_fancy")

    def test_callable_passthrough(self) -> None:
        custom = lambda shape, rng: np.full(shape, 7.0)  # noqa: E731
        assert np.all(get_initializer(custom)((2, 2), np.random.default_rng()) == 7.0)
