"""Benchmark E2 — Fig. 2: Brier score distribution for early vs late fusion.

Regenerates the per-scenario Brier score distributions (with mean interval)
the paper shows as violin plots, over reseeded train/test scenarios.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments import run_fig2


def test_fig2_brier_distribution(benchmark, paper_config, record_artifact) -> None:
    config = replace(paper_config, n_scenarios=5)

    result = benchmark.pedantic(run_fig2, args=(config,), rounds=1, iterations=1)

    print()
    print(result.format())
    record_artifact("fig2_brier_distribution", result.format())

    early = result.early_fusion
    late = result.late_fusion
    assert len(early.scores) == config.n_scenarios
    assert len(late.scores) == config.n_scenarios
    # Distribution sanity: spread is finite and the summary brackets the mean.
    for distribution in (early, late):
        summary = distribution.summary()
        assert summary["min"] <= summary["median"] <= summary["max"]
        assert summary["mean_low"] <= summary["mean"] <= summary["mean_high"]
        assert 0.0 <= summary["mean"] <= 0.5
    # Paper shape: late fusion's mean Brier is at least as good as early fusion's.
    assert result.late_fusion_wins
