"""Benchmark A1 — ablation of the p-value combination method (Algorithm 1).

Sweeps the available combination test statistics used to fuse per-modality
conformal p-values in late fusion and reports Brier/AUC/coverage for each.
"""

from __future__ import annotations

from repro.conformal import available_combiners
from repro.experiments import run_combination_ablation


def test_ablation_pvalue_combination(benchmark, paper_config, record_artifact) -> None:
    result = benchmark.pedantic(
        run_combination_ablation, args=(paper_config,), rounds=1, iterations=1
    )

    report = f"{result.format()}\nbest method: {result.best_method()}"
    print()
    print(report)
    record_artifact("ablation_pvalue_combination", report)

    assert set(result.scores) == set(available_combiners())
    for method, metrics in result.scores.items():
        assert 0.0 <= metrics["brier"] <= 0.5, f"{method} produced unusable forecasts"
        assert metrics["auc"] >= 0.8, f"{method} lost the detection signal"
        assert 0.0 <= metrics["coverage"] <= 1.0
    # Every combiner fuses the same underlying p-values, so the spread between
    # the best and worst method should be moderate rather than catastrophic.
    briers = [m["brier"] for m in result.scores.values()]
    assert max(briers) - min(briers) < 0.25
