"""Shared configuration for the benchmark harness.

The benchmarks regenerate every table and figure of the paper at the
paper's scale: a Trust-Hub-sized population of real designs (96), GAN
amplification to ~500 data points and a held-out test split of ~109 points.
The prepared dataset is memoised inside ``repro.experiments.common``, so the
expensive generation/extraction/GAN work is paid once per pytest session
and shared by all benchmark modules.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig, prepare_experiment_data

#: Where each benchmark stores the table/figure data it regenerated, so the
#: artefacts survive pytest's stdout capture (see EXPERIMENTS.md).
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def paper_config() -> ExperimentConfig:
    """The paper-scale experiment configuration shared by every benchmark."""
    config = ExperimentConfig()
    config.n_scenarios = 3
    config.validate()
    return config


@pytest.fixture(scope="session", autouse=True)
def _warm_dataset_cache(paper_config) -> None:
    """Generate and cache the benchmark dataset once per session."""
    prepare_experiment_data(paper_config)


@pytest.fixture(scope="session")
def record_artifact():
    """Persist a regenerated table/figure as ``results/<name>.txt``."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _record
