"""Benchmark E5 — Fig. 5: radar plot of consolidated metrics.

Regenerates the consolidated metric set (AUC, resolution, refinement loss,
Brier score, Brier skill score, sensitivity, accuracy) and its normalised
radar-axis form for the winning fusion model.
"""

from __future__ import annotations

from repro.experiments import run_fig5
from repro.metrics import RADAR_AXES


def test_fig5_consolidated_radar(benchmark, paper_config, record_artifact) -> None:
    result = benchmark.pedantic(run_fig5, args=(paper_config,), rounds=1, iterations=1)

    print()
    print(result.format())
    record_artifact("fig5_radar", result.format())

    # Every radar axis is present, normalised and finite.
    axis_names = [name for name, _ in result.polygon]
    assert axis_names == [name for name, _ in RADAR_AXES]
    assert all(0.0 <= value <= 1.0 for _, value in result.polygon)

    metrics = result.metrics
    # Shape reported by the paper's radar: high accuracy and AUC, positive
    # skill, with sensitivity allowed to lag behind accuracy (the paper notes
    # the model "is less sensitive and has high accuracy").
    assert metrics["accuracy"] >= 0.8
    assert metrics["auc"] >= 0.85
    assert metrics["brier_skill_score"] > 0.0
    assert 0.0 <= metrics["sensitivity"] <= 1.0
