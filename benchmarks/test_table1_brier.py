"""Benchmark E1 — Table I: Brier score comparison for different modalities.

Regenerates the paper's Table I (graph-only, tabular-only, NOODLE early
fusion, NOODLE late fusion) and checks the qualitative shape reported by the
paper: the fusion strategies beat the single modalities and late fusion wins
overall.
"""

from __future__ import annotations

from repro.experiments import PAPER_TABLE1, run_table1
from repro.metrics import format_comparison


def test_table1_brier_comparison(benchmark, paper_config, record_artifact) -> None:
    result = benchmark.pedantic(run_table1, args=(paper_config,), rounds=1, iterations=1)

    report = "\n".join(
        [
            result.format(),
            "",
            format_comparison(
                PAPER_TABLE1,
                result.brier_scores,
                title="Table I: paper-reported vs measured Brier scores",
            ),
            f"ranking (best to worst): {result.ranking}",
        ]
    )
    print()
    print(report)
    record_artifact("table1_brier", report)

    # Shape checks from the paper: all strategies produce meaningful
    # probabilistic forecasts and fusion helps.
    for strategy, score in result.brier_scores.items():
        assert 0.0 <= score <= 0.5, f"{strategy} Brier score out of the useful range"
    assert result.fusion_beats_single, "a fusion strategy should beat both single modalities"
    assert result.late_beats_early, "late fusion should win (paper Table I)"
    # Fused detection quality should be at least as good as the paper's AUC regime.
    assert result.auc_scores["late_fusion"] >= 0.85
