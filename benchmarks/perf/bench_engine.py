#!/usr/bin/env python
"""End-to-end scan engine benchmark (batched vs sequential per-design scans).

Trains a quick late-fusion detector, persists it, then times the same
multi-design workload served four ways (see
:mod:`repro.engine.bench` for exactly what each mode measures):

* ``engine_scan_sequential``     — N independent invocations, each loading
  the artifact and scanning one design;
* ``engine_scan_batched``        — one engine, one batched call;
* ``engine_scan_parallel_jobsN`` — the sharded ScanScheduler running
  extraction + inference across a persistent N-worker pool;
* ``engine_scan_cached``         — the batched call against a warm content
  cache;
* ``engine_rescan_after_reload`` — the batched call under a fresh model
  fingerprint with a warm model-independent feature store (the
  recalibrate -> hot-reload -> rescan workflow: only the forward pass is
  paid).

Writes the results to ``BENCH_engine.json`` at the repository root.

Run with::

    PYTHONPATH=src python benchmarks/perf/bench_engine.py [--output ...]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.engine.bench import DEFAULT_N_DESIGNS, run_engine_benchmark  # noqa: E402
from repro.engine.scheduler import DEFAULT_SHARD_SIZE  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=ROOT / "BENCH_engine.json")
    parser.add_argument("--designs", type=int, default=DEFAULT_N_DESIGNS)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--shard-size", type=int, default=DEFAULT_SHARD_SIZE)
    args = parser.parse_args()

    suite = run_engine_benchmark(
        args.output,
        n_designs=args.designs,
        workers=args.workers,
        repeats=args.repeats,
        jobs=args.jobs,
        shard_size=args.shard_size,
    )
    print(f"wrote {args.output}")
    for name, factor in sorted(suite.speedups.items()):
        print(f"  {name}: {factor:.1f}x vs sequential per-design scans")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
