#!/usr/bin/env python
"""Micro-benchmarks for the NN compute core (conv + pooling kernels).

Times the vectorized ``sliding_window_view`` kernels in
:mod:`repro.nn.layers` against the golden loop implementations preserved in
:mod:`repro.nn._reference`, at the paper's CNN shapes: 16x16 adjacency
images (``DEFAULT_IMAGE_SIZE``), 3x3 kernels, the (16, 32) channel plan and
the batch size 16 of ``ClassifierConfig``.  Also times the full paper 1-D
CNN stack at scan batch size under each compute backend
(``forward_f64`` / ``forward_fused_f32`` / ``forward_int8``, see
:mod:`repro.nn.backend`).  Writes the results — including best-vs-best
speedup factors — to ``BENCH_nn.json`` at the repository root.

Run with::

    PYTHONPATH=src python benchmarks/perf/bench_nn.py [--output BENCH_nn.json]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro.nn import Dense, Flatten, ReLU, Sequential, Sigmoid  # noqa: E402
from repro.nn import _reference as golden  # noqa: E402
from repro.nn.backend import get_backend  # noqa: E402
from repro.nn.layers import (  # noqa: E402
    AvgPool2d,
    Conv1d,
    Conv2d,
    MaxPool1d,
    MaxPool2d,
    _col2im_2d,
)
from repro.perf import BenchmarkSuite  # noqa: E402

#: ClassifierConfig.batch_size — the paper's training mini-batch.
BATCH = 16
IMAGE_SIZE = 16  # repro.features.image.DEFAULT_IMAGE_SIZE
TABULAR_LENGTH = 32
KERNEL = 3
CHANNELS = (16, 32)  # ClassifierConfig default channel plan
DENSE_UNITS = 64  # ClassifierConfig default dense head width

#: Inference batch for the backend comparison — InferencePlan.predict_proba's
#: internal micro-batch, the shape batched scanning actually runs.
SCAN_BATCH = 256


def build_paper_stack(rng: np.random.Generator) -> Sequential:
    """The paper's 1-D CNN classifier stack (CNNModalityClassifier shape)."""
    return Sequential(
        [
            Conv1d(1, CHANNELS[0], kernel_size=KERNEL, padding=KERNEL // 2, rng=rng),
            ReLU(),
            MaxPool1d(2),
            Conv1d(
                CHANNELS[0], CHANNELS[1], kernel_size=KERNEL, padding=KERNEL // 2, rng=rng
            ),
            ReLU(),
            Flatten(),
            Dense(CHANNELS[1] * (TABULAR_LENGTH // 2), DENSE_UNITS, rng=rng),
            ReLU(),
            Dense(DENSE_UNITS, 1, rng=rng),
            Sigmoid(),
        ],
        loss="bce",
    )


def conv2d_forward_loop(layer: Conv2d, x: np.ndarray) -> np.ndarray:
    """The seed's Conv2d forward: per-position im2col + batched 3-D matmul."""
    n, _, h, w = x.shape
    out_h, out_w = layer._output_size(h, w)
    ph, pw = layer.padding
    x_pad = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if (ph or pw) else x
    cols = golden.im2col_2d_loop(x_pad, layer.kernel_size, layer.stride, (out_h, out_w))
    w_mat = layer.weight.reshape(layer.out_channels, -1)
    out = cols @ w_mat.T + layer.bias
    return out.transpose(0, 2, 1).reshape(n, layer.out_channels, out_h, out_w)


def conv2d_backward_loop(
    layer: Conv2d, seed_cols: np.ndarray, grad_output: np.ndarray, input_shape
) -> np.ndarray:
    """The seed's Conv2d backward: 3-D matmuls + per-position col2im scatter.

    ``seed_cols`` is the seed-layout ``(N, oH*oW, C*kh*kw)`` column tensor,
    prepared outside the timed region exactly as the seed cached it.
    """
    n, _, h, w = input_shape
    out_h, out_w = layer._output_size(h, w)
    ph, pw = layer.padding
    grad = grad_output.reshape(n, layer.out_channels, out_h * out_w).transpose(0, 2, 1)
    w_mat = layer.weight.reshape(layer.out_channels, -1)
    _ = grad.sum(axis=(0, 1))
    _ = (
        grad.reshape(-1, layer.out_channels).T @ seed_cols.reshape(-1, seed_cols.shape[2])
    ).reshape(layer.weight.shape)
    grad_cols = grad @ w_mat
    grad_x_pad = golden.col2im_2d_loop(
        grad_cols,
        layer.in_channels,
        layer.kernel_size,
        layer.stride,
        (out_h, out_w),
        (h + 2 * ph, w + 2 * pw),
    )
    if ph or pw:
        return grad_x_pad[:, :, ph : ph + h, pw : pw + w]
    return grad_x_pad


def conv1d_forward_loop(layer: Conv1d, x: np.ndarray) -> np.ndarray:
    """The seed's Conv1d forward: per-position im2col + batched 3-D matmul."""
    n, _, length = x.shape
    out_len = layer._output_length(length)
    if layer.padding:
        x_pad = np.pad(x, ((0, 0), (0, 0), (layer.padding, layer.padding)))
    else:
        x_pad = x
    cols = golden.im2col_1d_loop(x_pad, layer.kernel_size, layer.stride, out_len)
    w_mat = layer.weight.reshape(layer.out_channels, -1)
    out = cols @ w_mat.T + layer.bias
    return out.transpose(0, 2, 1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=ROOT / "BENCH_nn.json")
    parser.add_argument("--repeats", type=int, default=30)
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    suite = BenchmarkSuite("nn")

    # -- Conv2d, first paper block: (N, 1, 16, 16) -> (N, 16, 16, 16) -------
    conv2d = Conv2d(1, CHANNELS[0], kernel_size=KERNEL, padding=KERNEL // 2, rng=rng)
    images = rng.standard_normal((BATCH, 1, IMAGE_SIZE, IMAGE_SIZE))
    shape_meta = {"input": list(images.shape), "kernel": KERNEL, "padding": KERNEL // 2}
    fast_fwd = suite.time(
        lambda: conv2d.forward(images), "conv2d_forward", repeats=args.repeats, meta=shape_meta
    )
    loop_fwd = suite.time(
        lambda: conv2d_forward_loop(conv2d, images),
        "conv2d_forward_loop",
        repeats=args.repeats,
        meta=shape_meta,
    )
    suite.record_speedup("conv2d_forward", loop_fwd, fast_fwd)

    conv2d.forward(images)  # populate the cache for the backward timing
    x_pad = np.pad(images, ((0, 0), (0, 0), (1, 1), (1, 1)))
    seed_cols = golden.im2col_2d_loop(x_pad, (KERNEL, KERNEL), (1, 1), (IMAGE_SIZE, IMAGE_SIZE))
    grad2d = rng.standard_normal((BATCH, CHANNELS[0], IMAGE_SIZE, IMAGE_SIZE))
    fast_bwd = suite.time(
        lambda: conv2d.backward(grad2d), "conv2d_backward", repeats=args.repeats, meta=shape_meta
    )
    loop_bwd = suite.time(
        lambda: conv2d_backward_loop(conv2d, seed_cols, grad2d, images.shape),
        "conv2d_backward_loop",
        repeats=args.repeats,
        meta=shape_meta,
    )
    suite.record_speedup("conv2d_backward", loop_bwd, fast_bwd)

    # -- Conv2d, second paper block: (N, 16, 8, 8) -> (N, 32, 8, 8) ---------
    conv2d_b2 = Conv2d(CHANNELS[0], CHANNELS[1], kernel_size=KERNEL, padding=KERNEL // 2, rng=rng)
    images_b2 = rng.standard_normal((BATCH, CHANNELS[0], IMAGE_SIZE // 2, IMAGE_SIZE // 2))
    meta_b2 = {"input": list(images_b2.shape), "kernel": KERNEL, "padding": KERNEL // 2}
    fast_b2 = suite.time(
        lambda: conv2d_b2.forward(images_b2), "conv2d_block2_forward", repeats=args.repeats, meta=meta_b2
    )
    loop_b2 = suite.time(
        lambda: conv2d_forward_loop(conv2d_b2, images_b2),
        "conv2d_block2_forward_loop",
        repeats=args.repeats,
        meta=meta_b2,
    )
    suite.record_speedup("conv2d_block2_forward", loop_b2, fast_b2)

    # -- Conv1d over the tabular modality: (N, 1, 32) -> (N, 16, 32) --------
    conv1d = Conv1d(1, CHANNELS[0], kernel_size=KERNEL, padding=KERNEL // 2, rng=rng)
    signals = rng.standard_normal((BATCH, 1, TABULAR_LENGTH))
    meta_1d = {"input": list(signals.shape), "kernel": KERNEL, "padding": KERNEL // 2}
    fast_1d = suite.time(
        lambda: conv1d.forward(signals), "conv1d_forward", repeats=args.repeats, meta=meta_1d
    )
    loop_1d = suite.time(
        lambda: conv1d_forward_loop(conv1d, signals),
        "conv1d_forward_loop",
        repeats=args.repeats,
        meta=meta_1d,
    )
    suite.record_speedup("conv1d_forward", loop_1d, fast_1d)

    # -- Pooling -------------------------------------------------------------
    pool2d = MaxPool2d(2)
    pooled_input = rng.standard_normal((BATCH, CHANNELS[0], IMAGE_SIZE, IMAGE_SIZE))
    fast_pool = suite.time(
        lambda: pool2d.forward(pooled_input),
        "maxpool2d_forward",
        repeats=args.repeats,
        meta={"input": list(pooled_input.shape), "pool": 2},
    )
    loop_pool = suite.time(
        lambda: golden.pool_windows_2d_loop(pooled_input, (2, 2), (2, 2)).max(axis=4),
        "maxpool2d_forward_loop",
        repeats=args.repeats,
        meta={"input": list(pooled_input.shape), "pool": 2},
    )
    suite.record_speedup("maxpool2d_forward", loop_pool, fast_pool)

    pool1d = MaxPool1d(2)
    signals_wide = np.repeat(signals, CHANNELS[0], axis=1)
    fast_pool1d = suite.time(
        lambda: pool1d.forward(signals_wide),
        "maxpool1d_forward",
        repeats=args.repeats,
        meta={"input": list(signals_wide.shape), "pool": 2},
    )
    loop_pool1d = suite.time(
        lambda: golden.pool_windows_1d_loop(signals_wide, 2, 2).max(axis=3),
        "maxpool1d_forward_loop",
        repeats=args.repeats,
        meta={"input": list(signals_wide.shape), "pool": 2},
    )
    suite.record_speedup("maxpool1d_forward", loop_pool1d, fast_pool1d)

    avgpool = AvgPool2d(2)
    suite.time(
        lambda: avgpool.forward(pooled_input),
        "avgpool2d_forward",
        repeats=args.repeats,
        meta={"input": list(pooled_input.shape), "pool": 2},
    )

    # -- Full-stack inference: the compute backends --------------------------
    # The whole paper 1-D CNN at scan batch size, float64 golden forward vs
    # the fused float32 plan vs the int8 dynamic-quantized plan.  Plans are
    # compiled outside the timed region (engines compile once per model).
    model = build_paper_stack(np.random.default_rng(7))
    scan_x = rng.standard_normal((SCAN_BATCH, 1, TABULAR_LENGTH))
    meta_fw = {
        "input": list(scan_x.shape),
        "stack": "conv1d-pool-conv1d-dense-dense",
        "dense_units": DENSE_UNITS,
    }
    forward_f64 = suite.time(
        lambda: model.predict_proba(scan_x),
        "forward_f64",
        repeats=args.repeats,
        meta=meta_fw,
    )
    fused_plan = get_backend("fused_f32").compile(model)
    fused_plan.predict_proba(scan_x)  # allocate scratch outside the timing
    forward_fused = suite.time(
        lambda: fused_plan.predict_proba(scan_x),
        "forward_fused_f32",
        repeats=args.repeats,
        meta=dict(meta_fw, backend="fused_f32"),
    )
    suite.record_speedup("forward_fused_f32", forward_f64, forward_fused)
    int8_plan = get_backend("int8").compile(model)
    int8_plan.predict_proba(scan_x)
    forward_int8 = suite.time(
        lambda: int8_plan.predict_proba(scan_x),
        "forward_int8",
        repeats=args.repeats,
        meta=dict(meta_fw, backend="int8"),
    )
    suite.record_speedup("forward_int8", forward_f64, forward_int8)

    # -- col2im in isolation (the scatter is the backward's hot piece) -------
    ck = 1 * KERNEL * KERNEL
    grad_cols_fast = rng.standard_normal((ck, BATCH * IMAGE_SIZE * IMAGE_SIZE))
    grad_cols_seed = (
        grad_cols_fast.reshape(1, KERNEL, KERNEL, BATCH, IMAGE_SIZE * IMAGE_SIZE)
        .transpose(3, 4, 0, 1, 2)
        .reshape(BATCH, IMAGE_SIZE * IMAGE_SIZE, ck)
        .copy()
    )
    fast_scatter = suite.time(
        lambda: _col2im_2d(
            grad_cols_fast,
            BATCH,
            1,
            (KERNEL, KERNEL),
            (1, 1),
            (IMAGE_SIZE, IMAGE_SIZE),
            (IMAGE_SIZE + 2, IMAGE_SIZE + 2),
        ),
        "col2im_2d",
        repeats=args.repeats,
    )
    loop_scatter = suite.time(
        lambda: golden.col2im_2d_loop(
            grad_cols_seed,
            1,
            (KERNEL, KERNEL),
            (1, 1),
            (IMAGE_SIZE, IMAGE_SIZE),
            (IMAGE_SIZE + 2, IMAGE_SIZE + 2),
        ),
        "col2im_2d_loop",
        repeats=args.repeats,
    )
    suite.record_speedup("col2im_2d", loop_scatter, fast_scatter)

    path = suite.write_json(args.output)
    print(f"wrote {path}")
    for name, factor in sorted(suite.speedups.items()):
        baseline = (
            "vs float64 forward" if name.startswith("forward_") else "vs golden loop"
        )
        print(f"  {name}: {factor:.1f}x {baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
