#!/usr/bin/env python
"""Micro-benchmarks for the conformal stack (ICP p-values + fusion + metrics).

Times the searchsorted p-value implementation against the golden quadratic
loop (``InductiveConformalClassifier.p_values_reference``) at the paper's
calibration scale (~500 calibration points after GAN amplification), the
vectorized p-value combiners, and the bincount-based metric binning.
Writes the results to ``BENCH_conformal.json`` at the repository root.

Run with::

    PYTHONPATH=src python benchmarks/perf/bench_conformal.py [--output ...]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro.conformal import InductiveConformalClassifier  # noqa: E402
from repro.conformal.combination import available_combiners, combine_p_value_matrices  # noqa: E402
from repro.metrics.brier import brier_decomposition  # noqa: E402
from repro.metrics.calibration import calibration_curve  # noqa: E402
from repro.perf import BenchmarkSuite  # noqa: E402

#: Paper scale: ~500 calibration points (GAN-amplified training split).
N_CALIBRATION = 500
#: A production-sized scoring batch (the trojan_scan_campaign workload).
N_TEST = 2000
N_CLASSES = 2
N_MODALITIES = 2


def _random_probabilities(rng: np.random.Generator, n: int) -> np.ndarray:
    raw = rng.random((n, N_CLASSES))
    return raw / raw.sum(axis=1, keepdims=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=ROOT / "BENCH_conformal.json")
    parser.add_argument("--repeats", type=int, default=20)
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    suite = BenchmarkSuite("conformal")

    cal_probs = _random_probabilities(rng, N_CALIBRATION)
    cal_labels = rng.integers(0, N_CLASSES, size=N_CALIBRATION)
    test_probs = _random_probabilities(rng, N_TEST)
    meta = {
        "n_calibration": N_CALIBRATION,
        "n_test": N_TEST,
        "n_classes": N_CLASSES,
    }

    for mondrian in (True, False):
        tag = "mondrian" if mondrian else "plain"
        icp = InductiveConformalClassifier(mondrian=mondrian, smoothing=False)
        icp.calibrate(cal_probs, cal_labels)
        fast = suite.time(
            lambda: icp.p_values(test_probs),
            f"icp_p_values_{tag}",
            repeats=args.repeats,
            meta=meta,
        )
        loop = suite.time(
            lambda: icp.p_values_reference(test_probs),
            f"icp_p_values_{tag}_loop",
            repeats=args.repeats,
            meta=meta,
        )
        suite.record_speedup(f"icp_p_values_{tag}", loop, fast)

    smoothed = InductiveConformalClassifier(
        mondrian=True, smoothing=True, rng=np.random.default_rng(1)
    ).calibrate(cal_probs, cal_labels)
    suite.time(
        lambda: smoothed.p_values(test_probs),
        "icp_p_values_smoothed",
        repeats=args.repeats,
        meta=meta,
    )

    # -- p-value fusion (Algorithm 1, matrix form) ---------------------------
    per_modality = [
        np.clip(_random_probabilities(rng, N_TEST), 1e-9, 1.0)
        for _ in range(N_MODALITIES)
    ]
    for method in available_combiners():
        suite.time(
            lambda method=method: combine_p_value_matrices(per_modality, method),
            f"fusion_{method}",
            repeats=args.repeats,
            meta={"n_test": N_TEST, "n_modalities": N_MODALITIES},
        )

    # -- metric binning (Fig. 2 / Fig. 3 hot paths) --------------------------
    probs = rng.random(N_TEST)
    outcomes = (rng.random(N_TEST) < probs).astype(float)
    suite.time(
        lambda: brier_decomposition(probs, outcomes),
        "brier_decomposition",
        repeats=args.repeats,
        meta={"n": N_TEST, "n_bins": 10},
    )
    suite.time(
        lambda: calibration_curve(probs, outcomes),
        "calibration_curve",
        repeats=args.repeats,
        meta={"n": N_TEST, "n_bins": 10},
    )

    path = suite.write_json(args.output)
    print(f"wrote {path}")
    for name, factor in sorted(suite.speedups.items()):
        print(f"  {name}: {factor:.1f}x vs golden loop")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
