#!/usr/bin/env python
"""CI perf smoke: fail on kernel or backend regressions, machine-independently.

Two in-process ratio checks:

* **Conv2d forward vs the golden loop** — re-times the optimized Conv2d
  forward *and* the seed's golden loop implementation at the exact shape
  recorded in the committed ``BENCH_nn.json``, and exits non-zero when the
  optimized kernel is less than ``--min-speedup`` (default 2.0) times
  faster than the loop;
* **Fused float32 backend vs the float64 forward** — runs the full paper
  1-D CNN stack at scan batch size through ``Sequential.predict_proba``
  (float64) and the compiled ``fused_f32`` inference plan, and fails when
  the fused path is less than ``--min-fused-speedup`` (default 1.2) times
  faster.  The committed ``BENCH_nn.json`` records ~2x+; the gate is set
  low enough that scheduler noise cannot trip it, high enough that losing
  the fusion (falling back to per-layer float64) trips it reliably.

Gating on in-process ratios rather than absolute wall-clock makes both
checks machine-independent: a slow CI runner slows both sides equally.
The committed baseline's absolute numbers are printed for context only.

Run with::

    PYTHONPATH=src python benchmarks/perf/check_regression.py [--min-speedup 2.0]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from bench_nn import SCAN_BATCH, TABULAR_LENGTH, build_paper_stack, conv2d_forward_loop  # noqa: E402
from repro.nn.backend import get_backend  # noqa: E402
from repro.nn.layers import Conv2d  # noqa: E402
from repro.perf import load_benchmark_json, speedup, time_callable  # noqa: E402

BENCHMARK = "conv2d_forward"
FUSED_BENCHMARK = "forward_fused_f32"


def check_fused_backend(min_speedup: float, repeats: int) -> int:
    """Fused-f32 inference plan vs the float64 forward; 0 if it clears."""
    rng = np.random.default_rng(0)
    model = build_paper_stack(np.random.default_rng(7))
    x = rng.standard_normal((SCAN_BATCH, 1, TABULAR_LENGTH))
    plan = get_backend("fused_f32").compile(model)
    plan.predict_proba(x)  # allocate scratch outside the timing
    f64 = time_callable(
        lambda: model.predict_proba(x), "forward_f64", repeats=repeats, warmup=2
    )
    fused = time_callable(
        lambda: plan.predict_proba(x), FUSED_BENCHMARK, repeats=repeats, warmup=2
    )
    ratio = speedup(f64, fused)
    verdict = "OK" if ratio >= min_speedup else "REGRESSION"
    print(
        f"{FUSED_BENCHMARK}: fused best {fused.best_s * 1e6:.1f}us, float64 best "
        f"{f64.best_s * 1e6:.1f}us -> {ratio:.1f}x "
        f"(required >= {min_speedup:.1f}x) -> {verdict}"
    )
    if ratio < min_speedup:
        print(
            "Perf smoke failed: the fused_f32 backend no longer clears "
            f"{min_speedup:.1f}x over the float64 forward at scan batch size. "
            "If a slowdown is intentional, regenerate BENCH_nn.json and adjust "
            "--min-fused-speedup in .github/workflows/ci.yml.",
            file=sys.stderr,
        )
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, default=ROOT / "BENCH_nn.json")
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--min-fused-speedup", type=float, default=1.2)
    parser.add_argument("--repeats", type=int, default=30)
    args = parser.parse_args()

    try:
        baseline = load_benchmark_json(args.baseline)
    except FileNotFoundError:
        print(
            f"ERROR: baseline {args.baseline} not found; generate it with "
            "benchmarks/perf/bench_nn.py",
            file=sys.stderr,
        )
        return 2
    try:
        recorded = baseline["results"][BENCHMARK]
    except KeyError:
        print(f"ERROR: {args.baseline} has no '{BENCHMARK}' result", file=sys.stderr)
        return 2

    n, c, h, w = recorded["meta"]["input"]
    kernel = recorded["meta"]["kernel"]
    padding = recorded["meta"]["padding"]
    rng = np.random.default_rng(0)
    conv = Conv2d(c, 16, kernel_size=kernel, padding=padding, rng=rng)
    x = rng.standard_normal((n, c, h, w))
    fast = time_callable(
        lambda: conv.forward(x), BENCHMARK, repeats=args.repeats, warmup=2
    )
    loop = time_callable(
        lambda: conv2d_forward_loop(conv, x),
        f"{BENCHMARK}_loop",
        repeats=args.repeats,
        warmup=2,
    )

    ratio = speedup(loop, fast)
    recorded_ratio = baseline.get("speedups", {}).get(BENCHMARK)
    verdict = "OK" if ratio >= args.min_speedup else "REGRESSION"
    print(
        f"{BENCHMARK}: optimized best {fast.best_s * 1e6:.1f}us, golden loop best "
        f"{loop.best_s * 1e6:.1f}us -> {ratio:.1f}x (required >= {args.min_speedup:.1f}x, "
        f"recorded {recorded_ratio:.1f}x at best {recorded['best_s'] * 1e6:.1f}us) -> {verdict}"
        if recorded_ratio is not None
        else f"{BENCHMARK}: {ratio:.1f}x vs golden loop "
        f"(required >= {args.min_speedup:.1f}x) -> {verdict}"
    )
    if ratio < args.min_speedup:
        print(
            "Perf smoke failed: the optimized Conv2d forward no longer clears "
            f"{args.min_speedup:.1f}x over the golden loop kernel. If a slowdown is "
            "intentional, regenerate the baselines with benchmarks/perf/bench_nn.py "
            "and adjust --min-speedup in .github/workflows/ci.yml.",
            file=sys.stderr,
        )
        return 1
    return check_fused_backend(args.min_fused_speedup, args.repeats)


if __name__ == "__main__":
    raise SystemExit(main())
