"""Benchmark E4 — Fig. 4: ROC-AUC curve of NOODLE under late fusion.

Regenerates the ROC curve of the late-fusion model on the held-out test set
and compares the AUC against the paper's reported 0.928.
"""

from __future__ import annotations

from repro.experiments import PAPER_ROC_AUC, run_fig4


def test_fig4_roc_auc(benchmark, paper_config, record_artifact) -> None:
    result = benchmark.pedantic(run_fig4, args=(paper_config,), rounds=1, iterations=1)

    print()
    print(result.format())
    record_artifact("fig4_roc", result.format())

    curve = result.curve
    # Structural properties of a valid ROC curve.
    assert curve.false_positive_rate[0] == 0.0 and curve.true_positive_rate[0] == 0.0
    assert curve.false_positive_rate[-1] == 1.0 and curve.true_positive_rate[-1] == 1.0
    assert (curve.true_positive_rate[1:] >= curve.true_positive_rate[:-1]).all()
    # The paper reports AUC = 0.928 ("the model is performing well"); the
    # synthetic benchmark is cleaner than Trust-Hub so we require at least the
    # same regime, i.e. clearly better than 0.85.
    assert result.auc >= 0.85, f"late-fusion AUC {result.auc:.3f} below the paper regime"
    print(f"measured AUC = {result.auc:.3f} (paper: {PAPER_ROC_AUC})")
