"""Benchmark E3 — Fig. 3: confidence calibration curve and forecast histogram.

Regenerates the reliability curve and the predicted-probability histogram of
the winning (late) fusion model on its held-out test set, along with the
scalar calibration summaries.
"""

from __future__ import annotations

from repro.experiments import run_fig3


def test_fig3_calibration_curve(benchmark, paper_config, record_artifact) -> None:
    result = benchmark.pedantic(run_fig3, args=(paper_config,), rounds=1, iterations=1)

    print()
    print(result.format())
    record_artifact("fig3_calibration", result.format())

    # The histogram covers exactly the test set (the paper's 109 test points).
    assert sum(result.histogram["counts"]) == result.n_test
    assert result.n_test >= 100
    # Calibration quantities live in their defined ranges.
    assert 0.0 <= result.expected_calibration_error <= 1.0
    assert 0.0 <= result.maximum_calibration_error <= 1.0
    assert 0.0 <= result.sharpness <= 0.25
    # The curve spans both low- and high-probability forecasts.  (The paper's
    # Trust-Hub data leaves the model visibly mis-calibrated; our cleaner
    # synthetic benchmark concentrates forecasts near 0 and 1, so only the
    # span — not the number of populated bins — is asserted here.)
    assert len(result.curve.counts) >= 2
    assert min(result.curve.mean_predicted) < 0.4
    assert max(result.curve.mean_predicted) > 0.6
