"""Benchmark A3 — ablation of missing-modality handling.

Drops the tabular modality for a fraction of the training samples and
compares GAN-based imputation against zero-filling, with complete data as
the reference — the practical "missing modality" scenario the paper
addresses with generative imputation.
"""

from __future__ import annotations

from repro.experiments import run_missing_modality_ablation


def test_ablation_missing_modality(benchmark, paper_config, record_artifact) -> None:
    result = benchmark.pedantic(
        run_missing_modality_ablation,
        args=(paper_config,),
        kwargs={"missing_fraction": 0.3},
        rounds=1,
        iterations=1,
    )

    print()
    print(result.format())
    record_artifact("ablation_missing_modality", result.format())

    assert set(result.scores) == {"complete_data", "zero_fill", "gan_imputation"}
    for setting, metrics in result.scores.items():
        assert 0.0 <= metrics["brier"] <= 0.6, f"{setting} produced unusable forecasts"
        assert metrics["auc"] >= 0.7, f"{setting} lost the detection signal"
    # Complete data is the upper bound; imputation should recover most of the
    # gap left by the damaged modality (tolerance covers run-to-run noise).
    complete = result.scores["complete_data"]["brier"]
    imputed = result.scores["gan_imputation"]["brier"]
    zero_filled = result.scores["zero_fill"]["brier"]
    assert complete <= imputed + 0.1
    assert imputed <= zero_filled + 0.05
