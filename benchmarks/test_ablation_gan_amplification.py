"""Benchmark A2 — ablation of GAN data amplification.

Trains late fusion on (a) the raw small/imbalanced population and (b) GAN
amplified versions of it at increasing target sizes, always evaluating on
the same held-out *real* designs, to quantify what the synthetic samples
contribute — the paper's motivation for using GANs in the first place.
"""

from __future__ import annotations

from repro.experiments import run_amplification_ablation


def test_ablation_gan_amplification(benchmark, paper_config, record_artifact) -> None:
    result = benchmark.pedantic(
        run_amplification_ablation,
        args=(paper_config,),
        kwargs={"target_sizes": [200, 500]},
        rounds=1,
        iterations=1,
    )

    print()
    print(result.format())
    record_artifact("ablation_gan_amplification", result.format())

    assert set(result.scores) == {"no_amplification", "gan_to_200", "gan_to_500"}
    for setting, metrics in result.scores.items():
        assert 0.0 <= metrics["brier"] <= 0.6, f"{setting} produced unusable forecasts"
        assert metrics["auc"] >= 0.6, f"{setting} lost the detection signal"
    # Amplified training sets really are larger.
    assert (
        result.scores["gan_to_500"]["train_size"]
        > result.scores["gan_to_200"]["train_size"]
        > result.scores["no_amplification"]["train_size"]
    )
    # The paper's premise: amplification does not hurt and typically helps the
    # small-data regime (allowing a small tolerance for run-to-run noise).
    assert (
        result.scores["gan_to_500"]["brier"]
        <= result.scores["no_amplification"]["brier"] + 0.05
    )
