"""Benchmark B1 — classical-ML baseline comparison.

Trains the related-work model families (logistic regression, linear SVM,
decision tree, random forest, gradient boosting, MLP) on single modalities
and compares them with NOODLE's uncertainty-aware late fusion on the same
train/test split.
"""

from __future__ import annotations

from repro.experiments import run_baseline_comparison


def test_baselines_comparison(benchmark, paper_config, record_artifact) -> None:
    result = benchmark.pedantic(
        run_baseline_comparison,
        args=(paper_config,),
        kwargs={"feature_sets": ["tabular", "graph"]},
        rounds=1,
        iterations=1,
    )

    report = f"{result.format()}\nNOODLE late-fusion rank by Brier score: {result.noodle_rank}"
    print()
    print(report)
    record_artifact("baselines_comparison", report)

    assert "noodle_late_fusion" in result.scores
    # Every model produces usable probabilistic output on this benchmark.
    for name, metrics in result.scores.items():
        assert 0.0 <= metrics["brier"] <= 0.6, f"{name} produced unusable forecasts"
    # NOODLE should sit in the top half of the comparison (the paper's claim is
    # that multimodal fusion with uncertainty is competitive, not magic).
    assert result.noodle_rank <= max(2, len(result.scores) // 2)
