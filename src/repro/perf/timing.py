"""Micro-benchmark timing utilities for the perf harness.

Used by the scripts under ``benchmarks/perf/`` to measure the vectorized
compute kernels against their golden loop baselines and to persist the
results as ``BENCH_*.json`` files, so the repository carries an auditable
perf trajectory from PR to PR (see ``docs/PERFORMANCE.md``).

The measurement strategy is the usual micro-benchmark discipline: a warmup
call to populate caches/allocator pools, then ``repeats`` timed calls,
reporting best/mean/std.  ``best_s`` is the headline number — the minimum
is the least noisy estimator of the achievable time on a busy machine —
and speedups are always computed best-vs-best.

Each timed call is measured through :func:`repro.obs.tracing.trace_span`
(with no tracer attached), the one timing pathway shared with profiling
and tracing — so benchmark numbers, ``scan --profile`` stage seconds and
trace span durations are all the same ``perf_counter`` measurement.
"""

from __future__ import annotations

import json
import platform
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

import numpy as np

from ..obs.tracing import trace_span

#: Schema version stamped into every BENCH_*.json artefact.
BENCH_SCHEMA_VERSION = 1


@dataclass
class TimingResult:
    """Statistics of one timed callable."""

    name: str
    best_s: float
    mean_s: float
    std_s: float
    repeats: int
    meta: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


def time_callable(
    fn: Callable[[], Any],
    name: str = "",
    repeats: int = 5,
    warmup: int = 1,
    meta: Optional[Dict[str, Any]] = None,
) -> TimingResult:
    """Time ``fn()`` with warmup, returning best/mean/std over ``repeats`` runs."""
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    for _ in range(warmup):
        fn()
    samples = np.empty(repeats)
    for i in range(repeats):
        with trace_span(None, name or "bench") as span:
            fn()
        samples[i] = span.duration_s
    return TimingResult(
        name=name or getattr(fn, "__name__", "callable"),
        best_s=float(samples.min()),
        mean_s=float(samples.mean()),
        std_s=float(samples.std()),
        repeats=repeats,
        meta=dict(meta or {}),
    )


def speedup(baseline: TimingResult, optimized: TimingResult) -> float:
    """Best-vs-best speedup factor of ``optimized`` over ``baseline``."""
    if optimized.best_s <= 0.0:
        return float("inf")
    return baseline.best_s / optimized.best_s


class BenchmarkSuite:
    """Accumulates :class:`TimingResult` entries and writes one BENCH_*.json.

    The JSON layout::

        {
          "schema_version": 1,
          "suite": "nn",
          "environment": {"python": ..., "numpy": ..., "machine": ...},
          "results": {"<name>": {"best_s": ..., "mean_s": ..., ...}, ...},
          "speedups": {"<name>": <factor>, ...}
        }
    """

    def __init__(self, suite: str) -> None:
        self.suite = suite
        self.results: Dict[str, TimingResult] = {}
        self.speedups: Dict[str, float] = {}

    def add(self, result: TimingResult) -> TimingResult:
        self.results[result.name] = result
        return result

    def time(
        self,
        fn: Callable[[], Any],
        name: str,
        repeats: int = 5,
        warmup: int = 1,
        meta: Optional[Dict[str, Any]] = None,
    ) -> TimingResult:
        return self.add(time_callable(fn, name=name, repeats=repeats, warmup=warmup, meta=meta))

    def record_speedup(self, name: str, baseline: TimingResult, optimized: TimingResult) -> float:
        factor = speedup(baseline, optimized)
        self.speedups[name] = factor
        return factor

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "suite": self.suite,
            "environment": {
                "python": platform.python_version(),
                "numpy": np.__version__,
                "machine": platform.machine(),
                "system": platform.system(),
            },
            "results": {name: result.as_dict() for name, result in self.results.items()},
            "speedups": dict(self.speedups),
        }

    def write_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n")
        return path


def load_benchmark_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a BENCH_*.json artefact back (used by the CI regression smoke)."""
    return json.loads(Path(path).read_text())
