"""Perf-tracking utilities: micro-benchmark timing and BENCH_*.json I/O."""

from .timing import (
    BENCH_SCHEMA_VERSION,
    BenchmarkSuite,
    TimingResult,
    load_benchmark_json,
    speedup,
    time_callable,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchmarkSuite",
    "TimingResult",
    "load_benchmark_json",
    "speedup",
    "time_callable",
]
