"""GAN-based data amplification and missing-modality imputation.

Implements the paper's answer to the small-data / imbalanced-data problem:
per-class GANs expand the dataset to a target size (~500 samples) and a
conditional generator fills in missing modalities.
"""

from .augmentation import AmplificationConfig, amplify_features, amplify_multimodal
from .gan import GANConfig, GANHistory, TabularGAN
from .imputation import ImputerConfig, ModalityImputer, impute_missing_modalities

__all__ = [
    "AmplificationConfig",
    "GANConfig",
    "GANHistory",
    "ImputerConfig",
    "ModalityImputer",
    "TabularGAN",
    "amplify_features",
    "amplify_multimodal",
    "impute_missing_modalities",
]
