"""Missing-modality imputation.

In practice some designs arrive with only one modality extracted (e.g. a
netlist-only delivery yields the graph but no source-level branching
features).  The paper handles missing modalities generatively; here a
conditional generator is trained to map the *observed* modality to the
*missing* one, adversarially against a discriminator that sees
(observed, candidate) pairs — a small conditional GAN.  A deterministic
ridge-regression imputer is also provided as the cheap baseline the
ablation benchmark compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..features.pipeline import MODALITY_GRAPH, MODALITY_TABULAR, MultimodalFeatures
from ..features.scaling import StandardScaler
from ..nn import Dense, LeakyReLU, Sequential, Sigmoid
from ..nn.losses import BinaryCrossEntropy


@dataclass
class ImputerConfig:
    """Hyper-parameters of the conditional imputation GAN."""

    hidden_dim: int = 64
    noise_dim: int = 8
    epochs: int = 250
    batch_size: int = 32
    learning_rate: float = 2e-3
    adversarial: bool = True
    seed: int = 0


class ModalityImputer:
    """Impute one modality from the other.

    ``fit`` expects feature matrices of the observed and target modalities
    for samples where both are present; ``impute`` fills target-modality
    rows for samples where only the observed modality exists.
    """

    def __init__(
        self,
        n_observed: int,
        n_target: int,
        config: Optional[ImputerConfig] = None,
    ) -> None:
        if n_observed <= 0 or n_target <= 0:
            raise ValueError("modality dimensions must be positive")
        self.config = config or ImputerConfig()
        self.n_observed = n_observed
        self.n_target = n_target
        self._rng = np.random.default_rng(self.config.seed)
        self._obs_scaler = StandardScaler()
        self._tgt_scaler = StandardScaler()
        self._loss = BinaryCrossEntropy()
        hidden = self.config.hidden_dim
        self.generator = Sequential(
            [
                Dense(n_observed + self.config.noise_dim, hidden, rng=self._rng),
                LeakyReLU(0.2),
                Dense(hidden, hidden, rng=self._rng),
                LeakyReLU(0.2),
                Dense(hidden, n_target, rng=self._rng),
            ],
            loss="mse",
            optimizer="adam",
            learning_rate=self.config.learning_rate,
        )
        self.discriminator = Sequential(
            [
                Dense(n_observed + n_target, hidden, rng=self._rng),
                LeakyReLU(0.2),
                Dense(hidden, 1, rng=self._rng),
                Sigmoid(),
            ],
            loss="bce",
            optimizer="adam",
            learning_rate=self.config.learning_rate,
        )
        self._fitted = False

    # -- training --------------------------------------------------------------
    def _generator_forward(self, observed_scaled: np.ndarray, training: bool) -> np.ndarray:
        noise = self._rng.normal(size=(observed_scaled.shape[0], self.config.noise_dim))
        return self.generator.forward(
            np.hstack([observed_scaled, noise]), training=training
        )

    def fit(self, observed: np.ndarray, target: np.ndarray) -> "ModalityImputer":
        observed = np.asarray(observed, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if observed.shape[0] != target.shape[0]:
            raise ValueError("observed and target must have the same number of samples")
        if observed.shape[1] != self.n_observed or target.shape[1] != self.n_target:
            raise ValueError("modality dimensions do not match the imputer configuration")
        obs_scaled = self._obs_scaler.fit_transform(observed)
        tgt_scaled = self._tgt_scaler.fit_transform(target)
        n = obs_scaled.shape[0]
        batch = min(self.config.batch_size, n)

        for _ in range(self.config.epochs):
            idx = self._rng.choice(n, size=batch, replace=False)
            obs_batch = obs_scaled[idx]
            tgt_batch = tgt_scaled[idx]

            # Reconstruction step: move the generator towards the paired target.
            self.generator.zero_grad()
            noise = self._rng.normal(size=(batch, self.config.noise_dim))
            gen_input = np.hstack([obs_batch, noise])
            predicted = self.generator.forward(gen_input, training=True)
            grad = 2.0 * (predicted - tgt_batch) / predicted.size
            self.generator.backward(grad)
            self.generator.optimizer.step()

            if not self.config.adversarial:
                continue

            # Discriminator step on (observed, real target) vs (observed, generated).
            fake = self._generator_forward(obs_batch, training=False)
            disc_x = np.vstack(
                [np.hstack([obs_batch, tgt_batch]), np.hstack([obs_batch, fake])]
            )
            disc_y = np.concatenate([np.full(batch, 0.9), np.zeros(batch)])
            self.discriminator.train_on_batch(disc_x, disc_y)

            # Adversarial generator step: fool the discriminator.
            self.generator.zero_grad()
            self.discriminator.zero_grad()
            noise = self._rng.normal(size=(batch, self.config.noise_dim))
            gen_input = np.hstack([obs_batch, noise])
            fake = self.generator.forward(gen_input, training=True)
            scores = self.discriminator.forward(
                np.hstack([obs_batch, fake]), training=True
            )
            target_ones = np.ones(batch)
            grad_scores = self._loss.gradient(scores, target_ones)
            grad_pair = self.discriminator.backward(grad_scores)
            grad_fake = grad_pair[:, self.n_observed :]
            self.generator.backward(grad_fake)
            self.generator.optimizer.step()
            self.discriminator.zero_grad()
        self._fitted = True
        return self

    # -- inference -------------------------------------------------------------
    def impute(self, observed: np.ndarray) -> np.ndarray:
        """Generate target-modality rows for the given observed-modality rows."""
        if not self._fitted:
            raise RuntimeError("ModalityImputer must be fitted before imputing")
        observed = np.asarray(observed, dtype=np.float64)
        obs_scaled = self._obs_scaler.transform(observed)
        generated = self._generator_forward(obs_scaled, training=False)
        return self._tgt_scaler.inverse_transform(generated)


def impute_missing_modalities(
    features: MultimodalFeatures,
    config: Optional[ImputerConfig] = None,
) -> MultimodalFeatures:
    """Fill every NaN modality row in ``features`` using conditional imputation.

    Imputers are trained on the samples where both modalities are present;
    samples missing the tabular modality are reconstructed from their graph
    features and vice versa.  Samples missing *both* modalities are left
    untouched (there is nothing to condition on).
    """
    config = config or ImputerConfig()
    tabular = features.tabular.copy()
    graph = features.graph.copy()
    missing_tab = features.missing_mask(MODALITY_TABULAR)
    missing_graph = features.missing_mask(MODALITY_GRAPH)
    both_present = ~missing_tab & ~missing_graph

    if missing_tab.any() and both_present.any():
        imputer = ModalityImputer(
            n_observed=graph.shape[1], n_target=tabular.shape[1], config=config
        )
        imputer.fit(graph[both_present], tabular[both_present])
        fixable = missing_tab & ~missing_graph
        if fixable.any():
            tabular[fixable] = imputer.impute(graph[fixable])

    if missing_graph.any() and both_present.any():
        imputer = ModalityImputer(
            n_observed=tabular.shape[1], n_target=graph.shape[1], config=config
        )
        imputer.fit(tabular[both_present], graph[both_present])
        fixable = missing_graph & ~missing_tab
        if fixable.any():
            graph[fixable] = imputer.impute(tabular[fixable])

    return MultimodalFeatures(
        tabular=tabular,
        graph=graph,
        graph_images=features.graph_images,
        labels=features.labels,
        names=list(features.names),
        tabular_feature_names=features.tabular_feature_names,
        graph_feature_names=features.graph_feature_names,
    )
