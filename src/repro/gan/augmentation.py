"""Class-conditional dataset amplification with GANs.

The paper's recipe (Section III): separate the Trojan-free and
Trojan-infected samples, train a GAN on each, and generate enough synthetic
samples of each label to reach a target dataset size (500 points), thereby
fixing both the *small data* and the *class imbalance* problems at once.

:func:`amplify_multimodal` applies this jointly to both modalities so that a
synthetic design contributes a (graph, tabular) pair — the per-class GANs for
the two modalities are driven by the same sample budget.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

import numpy as np

from ..features.pipeline import MultimodalFeatures
from .gan import GANConfig, TabularGAN


@dataclass
class AmplificationConfig:
    """How far to amplify and how to train the per-class GANs."""

    target_total: int = 500
    balance_classes: bool = True
    gan: GANConfig = None  # type: ignore[assignment]
    seed: int = 0

    def __post_init__(self) -> None:
        if self.gan is None:
            self.gan = GANConfig(seed=self.seed)

    def validate(self) -> None:
        if self.target_total <= 0:
            raise ValueError("target_total must be positive")

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by the engine artifact manifest)."""
        return {
            "target_total": self.target_total,
            "balance_classes": self.balance_classes,
            "gan": self.gan.to_dict(),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AmplificationConfig":
        data = dict(data)
        gan = data.pop("gan", None)
        return cls(gan=GANConfig.from_dict(gan) if gan is not None else None, **data)


def _per_class_targets(
    labels: np.ndarray, target_total: int, balance: bool
) -> Dict[int, int]:
    """How many *synthetic* samples each class needs to reach the target."""
    classes, counts = np.unique(labels, return_counts=True)
    existing = dict(zip(classes.tolist(), counts.tolist()))
    targets: Dict[int, int] = {}
    if balance:
        per_class_total = target_total // len(classes)
        for cls in classes.tolist():
            targets[cls] = max(0, per_class_total - existing[cls])
    else:
        total_existing = int(counts.sum())
        extra = max(0, target_total - total_existing)
        for cls in classes.tolist():
            share = existing[cls] / total_existing
            targets[cls] = int(round(extra * share))
    return targets


def amplify_features(
    x: np.ndarray,
    labels: np.ndarray,
    config: Optional[AmplificationConfig] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Amplify a single feature matrix with per-class GANs.

    Returns ``(x_augmented, labels_augmented, is_synthetic)`` where the
    original samples come first and ``is_synthetic`` marks generated rows.
    """
    config = config or AmplificationConfig()
    config.validate()
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(labels, dtype=int)
    if x.shape[0] != labels.shape[0]:
        raise ValueError("x and labels must have the same number of samples")
    targets = _per_class_targets(labels, config.target_total, config.balance_classes)

    synthetic_rows = [x]
    synthetic_labels = [labels]
    synthetic_flags = [np.zeros(len(labels), dtype=bool)]
    for cls, n_needed in sorted(targets.items()):
        if n_needed <= 0:
            continue
        members = x[labels == cls]
        gan = TabularGAN(
            n_features=x.shape[1],
            config=replace(config.gan, seed=config.gan.seed + cls + 1),
        )
        gan.fit(members)
        generated = gan.sample(n_needed)
        synthetic_rows.append(generated)
        synthetic_labels.append(np.full(n_needed, cls, dtype=int))
        synthetic_flags.append(np.ones(n_needed, dtype=bool))
    return (
        np.vstack(synthetic_rows),
        np.concatenate(synthetic_labels),
        np.concatenate(synthetic_flags),
    )


def amplify_multimodal(
    features: MultimodalFeatures,
    config: Optional[AmplificationConfig] = None,
) -> MultimodalFeatures:
    """Amplify both modalities of a multimodal dataset jointly.

    For every class, one GAN is trained on the *concatenation* of the graph
    and tabular features so each synthetic design receives a coherent pair
    of modalities, which is what fusion later consumes.  Adjacency images
    for synthetic designs are not regenerated (the flat graph features are
    the graph modality used by the classifiers); image rows for synthetic
    samples are filled with zeros and flagged via their position.
    """
    config = config or AmplificationConfig()
    config.validate()
    n_graph = features.graph.shape[1]
    joint = np.hstack([features.graph, features.tabular])
    joint_aug, labels_aug, is_synthetic = amplify_features(joint, features.labels, config)

    graph_aug = joint_aug[:, :n_graph]
    tabular_aug = joint_aug[:, n_graph:]
    n_new = int(is_synthetic.sum())
    image_shape = features.graph_images.shape[1:]
    synthetic_images = np.zeros((n_new,) + image_shape)
    images_aug = np.concatenate([features.graph_images, synthetic_images], axis=0)
    synthetic_names = [f"GAN-synth{i:04d}" for i in range(n_new)]

    return MultimodalFeatures(
        tabular=tabular_aug,
        graph=graph_aug,
        graph_images=images_aug,
        labels=labels_aug,
        names=list(features.names) + synthetic_names,
        tabular_feature_names=features.tabular_feature_names,
        graph_feature_names=features.graph_feature_names,
    )
