"""Generative adversarial network for tabular feature vectors.

The paper amplifies its small, imbalanced dataset with a GAN trained per
class label (Trojan-free samples generate more Trojan-free samples, and
likewise for Trojan-infected).  :class:`TabularGAN` implements exactly that
building block on top of :mod:`repro.nn`: an MLP generator mapping a latent
vector to a feature vector and an MLP discriminator trained adversarially
with the non-saturating GAN loss.

Feature vectors are standardised internally, so callers pass raw feature
matrices and receive samples in the original feature space.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Optional

import numpy as np

from ..features.scaling import StandardScaler
from ..nn import Dense, LeakyReLU, Sequential, Sigmoid
from ..nn.losses import BinaryCrossEntropy


@dataclass
class GANConfig:
    """Hyper-parameters of the tabular GAN."""

    latent_dim: int = 16
    hidden_dim: int = 64
    epochs: int = 300
    batch_size: int = 16
    learning_rate: float = 2e-3
    seed: int = 0

    def validate(self) -> None:
        if self.latent_dim <= 0 or self.hidden_dim <= 0:
            raise ValueError("latent_dim and hidden_dim must be positive")
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by the engine artifact manifest)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "GANConfig":
        return cls(**data)


@dataclass
class GANHistory:
    """Per-epoch adversarial losses, useful for diagnosing mode collapse."""

    discriminator_loss: List[float]
    generator_loss: List[float]


class TabularGAN:
    """A small fully-connected GAN over feature vectors."""

    def __init__(self, n_features: int, config: Optional[GANConfig] = None) -> None:
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        self.config = config or GANConfig()
        self.config.validate()
        self.n_features = n_features
        self._rng = np.random.default_rng(self.config.seed)
        self._scaler = StandardScaler()
        self._loss = BinaryCrossEntropy()
        self.history: Optional[GANHistory] = None

        hidden = self.config.hidden_dim
        # The generator emits samples directly in standardised feature space
        # (linear output head); the scaler maps them back to raw features.
        self.generator = Sequential(
            [
                Dense(self.config.latent_dim, hidden, rng=self._rng),
                LeakyReLU(0.2),
                Dense(hidden, hidden, rng=self._rng),
                LeakyReLU(0.2),
                Dense(hidden, n_features, rng=self._rng),
            ],
            loss="mse",  # placeholder; gradients are injected manually
            optimizer="adam",
            learning_rate=self.config.learning_rate,
        )
        self.discriminator = Sequential(
            [
                Dense(n_features, hidden, rng=self._rng),
                LeakyReLU(0.2),
                Dense(hidden, hidden // 2, rng=self._rng),
                LeakyReLU(0.2),
                Dense(hidden // 2, 1, rng=self._rng),
                Sigmoid(),
            ],
            loss="bce",
            optimizer="adam",
            learning_rate=self.config.learning_rate,
        )

    # -- internals ------------------------------------------------------------
    def _sample_latent(self, n: int) -> np.ndarray:
        return self._rng.normal(size=(n, self.config.latent_dim))

    def _train_discriminator(self, real_batch: np.ndarray) -> float:
        n = real_batch.shape[0]
        fake_batch = self.generator.forward(self._sample_latent(n), training=False)
        x = np.vstack([real_batch, fake_batch])
        # Mild label smoothing on the real side stabilises training on the
        # very small batches this dataset produces.
        y = np.concatenate([np.full(n, 0.9), np.zeros(n)])
        return self.discriminator.train_on_batch(x, y)

    def _train_generator(self, n: int) -> float:
        self.generator.zero_grad()
        self.discriminator.zero_grad()
        z = self._sample_latent(n)
        fake = self.generator.forward(z, training=True)
        scores = self.discriminator.forward(fake, training=True)
        target = np.ones(n)
        loss_value = self._loss.loss(scores, target)
        grad = self._loss.gradient(scores, target)
        grad_wrt_fake = self.discriminator.backward(grad)
        self.generator.backward(grad_wrt_fake)
        self.generator.optimizer.step()
        # Discard the gradients this pass accumulated in the discriminator.
        self.discriminator.zero_grad()
        return float(loss_value)

    # -- public API --------------------------------------------------------------
    def fit(self, x: np.ndarray) -> GANHistory:
        """Train the GAN on feature matrix ``x`` of shape ``(N, n_features)``."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.n_features:
            raise ValueError(f"expected shape (N, {self.n_features}), got {x.shape}")
        if x.shape[0] < 2:
            raise ValueError("GAN training needs at least two samples")
        scaled = self._scaler.fit_transform(x)
        d_losses: List[float] = []
        g_losses: List[float] = []
        batch = min(self.config.batch_size, scaled.shape[0])
        for _ in range(self.config.epochs):
            idx = self._rng.choice(scaled.shape[0], size=batch, replace=False)
            d_losses.append(self._train_discriminator(scaled[idx]))
            g_losses.append(self._train_generator(batch))
        self.history = GANHistory(discriminator_loss=d_losses, generator_loss=g_losses)
        return self.history

    def sample(self, n: int, moment_match: bool = True) -> np.ndarray:
        """Draw ``n`` synthetic samples in the *original* feature space.

        Small GANs trained on a handful of samples systematically
        under-disperse (mode collapse towards the class centroid).  With
        ``moment_match=True`` (default) the generated batch is rescaled so
        its per-feature mean and standard deviation match the training data
        in standardised space, which keeps the amplified dataset as spread
        out as the real designs it stands in for.
        """
        if n <= 0:
            return np.empty((0, self.n_features))
        generated = self.generator.forward(self._sample_latent(n), training=False)
        if moment_match and n >= 2:
            gen_mean = generated.mean(axis=0)
            gen_std = generated.std(axis=0)
            safe_std = np.where(gen_std > 1e-9, gen_std, 1.0)
            # Training data is standardised, so the target moments are (0, 1).
            generated = (generated - gen_mean) / safe_std
        return self._scaler.inverse_transform(generated)
