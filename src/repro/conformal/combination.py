"""p-value combination methods for uncertainty-aware modality fusion.

The NOODLE fusion rule (Algorithm 1) treats each modality as a separate
hypothesis test: for a candidate class label, every modality produces a
p-value, and the per-modality p-values are combined into a single test
statistic for the joint hypothesis.  The combination functions implemented
here follow the comparative study of Balasubramanian et al. cited by the
paper; each takes a ``(N, n_modalities)`` array and returns ``(N,)``
combined p-values.

All methods are *valid* combiners (conservative under independence or in
the worst case), so the combined conformal predictor retains coverage
guarantees.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

import numpy as np
from scipy import stats

CombinationFn = Callable[[np.ndarray], np.ndarray]

_EPS = 1e-12


def _validate(p_values: np.ndarray) -> np.ndarray:
    p_values = np.asarray(p_values, dtype=np.float64)
    if p_values.ndim == 1:
        p_values = p_values[:, None]
    if p_values.ndim != 2:
        raise ValueError("p-values must be a (N, n_modalities) array")
    if np.any(p_values < -1e-9) or np.any(p_values > 1 + 1e-9):
        raise ValueError("p-values must lie in [0, 1]")
    return np.clip(p_values, _EPS, 1.0)


def fisher_combination(p_values: np.ndarray) -> np.ndarray:
    """Fisher's method: ``-2 * sum(log p)`` is chi-squared with 2N dof."""
    p = _validate(p_values)
    statistic = -2.0 * np.log(p).sum(axis=1)
    return stats.chi2.sf(statistic, df=2 * p.shape[1])


def stouffer_combination(p_values: np.ndarray) -> np.ndarray:
    """Stouffer's method: sum of z-scores, renormalised."""
    p = _validate(p_values)
    z = stats.norm.isf(np.clip(p, _EPS, 1 - 1e-12))
    combined = z.sum(axis=1) / np.sqrt(p.shape[1])
    return stats.norm.sf(combined)


def arithmetic_mean_combination(p_values: np.ndarray) -> np.ndarray:
    """Twice the arithmetic mean (valid combiner), capped at 1."""
    p = _validate(p_values)
    return np.minimum(1.0, 2.0 * p.mean(axis=1))


def geometric_mean_combination(p_values: np.ndarray) -> np.ndarray:
    """``e`` times the geometric mean (valid combiner), capped at 1."""
    p = _validate(p_values)
    geometric = np.exp(np.log(p).mean(axis=1))
    return np.minimum(1.0, np.e * geometric)


def minimum_combination(p_values: np.ndarray) -> np.ndarray:
    """Bonferroni: ``N * min(p)``, capped at 1."""
    p = _validate(p_values)
    return np.minimum(1.0, p.shape[1] * p.min(axis=1))


def maximum_combination(p_values: np.ndarray) -> np.ndarray:
    """Maximum p-value (conservative; equivalent to requiring all tests agree)."""
    p = _validate(p_values)
    return p.max(axis=1)


_COMBINERS: Dict[str, CombinationFn] = {
    "fisher": fisher_combination,
    "stouffer": stouffer_combination,
    "arithmetic": arithmetic_mean_combination,
    "geometric": geometric_mean_combination,
    "minimum": minimum_combination,
    "maximum": maximum_combination,
}


def get_combiner(spec: Union[str, CombinationFn]) -> CombinationFn:
    """Resolve a combination method by name or pass through a callable."""
    if callable(spec):
        return spec
    try:
        return _COMBINERS[spec]
    except KeyError as exc:
        known = ", ".join(sorted(_COMBINERS))
        raise ValueError(f"Unknown combination method {spec!r}; known: {known}") from exc


def available_combiners() -> List[str]:
    """Names accepted by :func:`get_combiner`."""
    return sorted(_COMBINERS)


def combine_p_value_matrices(
    per_modality: List[np.ndarray], method: Union[str, CombinationFn] = "fisher"
) -> np.ndarray:
    """Combine per-modality ``(N, n_classes)`` p-value matrices class-by-class.

    This is the matrix form of Algorithm 1: for each class label the
    modalities' p-values are combined into one, producing a fused
    ``(N, n_classes)`` p-value matrix.
    """
    if not per_modality:
        raise ValueError("at least one p-value matrix is required")
    shapes = {matrix.shape for matrix in map(np.asarray, per_modality)}
    if len(shapes) != 1:
        raise ValueError(f"p-value matrices must share a shape, got {shapes}")
    combiner = get_combiner(method)
    stacked = np.stack([np.asarray(m, dtype=np.float64) for m in per_modality], axis=2)
    n_samples, n_classes, n_modalities = stacked.shape
    if isinstance(method, str):
        # The built-in combiners are all row-wise, so one flattened call
        # covers every class at once instead of a Python loop per class.
        flat = stacked.reshape(n_samples * n_classes, n_modalities)
        return np.asarray(combiner(flat), dtype=np.float64).reshape(n_samples, n_classes)
    # User-supplied callables may use cross-row statistics within a class,
    # so they keep the historical one-call-per-class contract.
    combined = np.empty((n_samples, n_classes))
    for class_index in range(n_classes):
        combined[:, class_index] = combiner(stacked[:, class_index, :])
    return combined
