"""(Mondrian) inductive conformal prediction and p-value fusion.

Provides the uncertainty-quantification machinery of the NOODLE framework:
nonconformity scores, split/Mondrian conformal predictors, p-value
combination methods for multimodal fusion, prediction regions and the
set-valued evaluation metrics that go with them.
"""

from .combination import (
    arithmetic_mean_combination,
    available_combiners,
    combine_p_value_matrices,
    fisher_combination,
    geometric_mean_combination,
    get_combiner,
    maximum_combination,
    minimum_combination,
    stouffer_combination,
)
from .icp import InductiveConformalClassifier
from .metrics import (
    ConformalEvaluation,
    coverage_outcomes,
    evaluate_p_values,
    evaluate_regions,
    set_confusion_matrix,
    validity_curve,
)
from .nonconformity import (
    get_nonconformity,
    inverse_probability_score,
    margin_score,
)
from .regions import (
    PredictionRegion,
    confidence_scores,
    credibility,
    forced_predictions,
    p_values_to_probabilities,
    prediction_regions,
    region_kind_counts,
)

__all__ = [
    "ConformalEvaluation",
    "InductiveConformalClassifier",
    "PredictionRegion",
    "arithmetic_mean_combination",
    "available_combiners",
    "combine_p_value_matrices",
    "confidence_scores",
    "coverage_outcomes",
    "credibility",
    "evaluate_p_values",
    "evaluate_regions",
    "fisher_combination",
    "forced_predictions",
    "geometric_mean_combination",
    "get_combiner",
    "get_nonconformity",
    "inverse_probability_score",
    "margin_score",
    "maximum_combination",
    "minimum_combination",
    "p_values_to_probabilities",
    "prediction_regions",
    "region_kind_counts",
    "set_confusion_matrix",
    "stouffer_combination",
    "validity_curve",
]
