"""Conformal prediction regions and set-valued predictions.

Given a p-value matrix, the prediction region at confidence level ``E``
contains every label whose p-value exceeds ``1 - E`` (Algorithm 1 of the
paper).  Regions may contain zero, one or several labels; the helpers here
build them, classify their kind and derive forced point predictions plus
credibility/confidence, which the fusion layer and the evaluation metrics
consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class PredictionRegion:
    """The set of labels not rejected at the requested confidence level."""

    labels: tuple
    confidence: float

    @property
    def is_empty(self) -> bool:
        return len(self.labels) == 0

    @property
    def is_singleton(self) -> bool:
        return len(self.labels) == 1

    @property
    def is_uncertain(self) -> bool:
        """True when more than one label could not be rejected."""
        return len(self.labels) > 1

    def __contains__(self, label: int) -> bool:
        return label in self.labels

    def __len__(self) -> int:
        return len(self.labels)


def prediction_regions(
    p_values: np.ndarray, confidence: float = 0.9
) -> List[PredictionRegion]:
    """Build the prediction region of every sample at the given confidence."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    p_values = np.asarray(p_values, dtype=np.float64)
    if p_values.ndim != 2:
        raise ValueError("p_values must be a (N, n_classes) matrix")
    significance = 1.0 - confidence
    regions: List[PredictionRegion] = []
    for row in p_values:
        labels = tuple(int(i) for i in np.flatnonzero(row > significance))
        regions.append(PredictionRegion(labels=labels, confidence=confidence))
    return regions


def forced_predictions(p_values: np.ndarray) -> np.ndarray:
    """Single-point predictions: the label with the highest p-value."""
    p_values = np.asarray(p_values, dtype=np.float64)
    return p_values.argmax(axis=1)


def credibility(p_values: np.ndarray) -> np.ndarray:
    """Largest p-value per sample."""
    return np.asarray(p_values, dtype=np.float64).max(axis=1)


def confidence_scores(p_values: np.ndarray) -> np.ndarray:
    """One minus the second-largest p-value per sample."""
    p_values = np.asarray(p_values, dtype=np.float64)
    if p_values.shape[1] < 2:
        return np.ones(p_values.shape[0])
    sorted_p = np.sort(p_values, axis=1)
    return 1.0 - sorted_p[:, -2]


def p_values_to_probabilities(p_values: np.ndarray) -> np.ndarray:
    """Normalise p-values into a pseudo-probability distribution per sample.

    Conformal p-values are not probabilities, but fusion needs a calibrated
    score in [0, 1] per class for Brier-style evaluation; normalising the
    p-values row-wise is the standard post-processing used when a single
    probabilistic output is required from a conformal predictor.
    """
    p_values = np.asarray(p_values, dtype=np.float64)
    totals = p_values.sum(axis=1, keepdims=True)
    safe_totals = np.where(totals > 0, totals, 1.0)
    probabilities = p_values / safe_totals
    # Rows that were all-zero get a uniform distribution.
    uniform = np.full(p_values.shape[1], 1.0 / p_values.shape[1])
    probabilities[totals.reshape(-1) == 0] = uniform
    return probabilities


def region_kind_counts(regions: Sequence[PredictionRegion]) -> dict:
    """Counts of empty / singleton / uncertain regions."""
    return {
        "empty": sum(1 for r in regions if r.is_empty),
        "singleton": sum(1 for r in regions if r.is_singleton),
        "uncertain": sum(1 for r in regions if r.is_uncertain),
    }
