"""Nonconformity scores for conformal prediction.

A nonconformity score measures how unusual a (sample, label) pair looks to
an underlying classifier: larger means stranger.  All scores here are
computed from the classifier's predicted class-probability matrix, which is
the interface every classifier in this library exposes (``predict_proba``).

Two standard scores are provided:

* ``inverse_probability`` — ``1 - p(label)``: the paper's choice (Eq. 4 sums
  per-classifier scores; with a single classifier per modality this reduces
  to the plain score).
* ``margin`` — ``(max_{y' != y} p(y') - p(y) + 1) / 2``: penalises both a low
  probability for the candidate label and a strong competitor.
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

NonconformityFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _validate_probabilities(probabilities: np.ndarray) -> np.ndarray:
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.ndim == 1:
        # Binary classifiers returning p(class 1) only.
        probabilities = np.column_stack([1.0 - probabilities, probabilities])
    if probabilities.ndim != 2:
        raise ValueError("probabilities must be a (N, n_classes) matrix")
    if np.any(probabilities < -1e-9) or np.any(probabilities > 1 + 1e-9):
        raise ValueError("probabilities must lie in [0, 1]")
    return np.clip(probabilities, 0.0, 1.0)


def inverse_probability_score(
    probabilities: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """``1 - p(label)`` for each row; the classic conformal score."""
    probabilities = _validate_probabilities(probabilities)
    labels = np.asarray(labels, dtype=int)
    if labels.shape[0] != probabilities.shape[0]:
        raise ValueError("labels and probabilities must align")
    return 1.0 - probabilities[np.arange(len(labels)), labels]


def margin_score(probabilities: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Margin-based score: high when a competing label dominates."""
    probabilities = _validate_probabilities(probabilities)
    labels = np.asarray(labels, dtype=int)
    if labels.shape[0] != probabilities.shape[0]:
        raise ValueError("labels and probabilities must align")
    own = probabilities[np.arange(len(labels)), labels]
    masked = probabilities.copy()
    masked[np.arange(len(labels)), labels] = -np.inf
    best_other = masked.max(axis=1)
    return (best_other - own + 1.0) / 2.0


_SCORES = {
    "inverse_probability": inverse_probability_score,
    "margin": margin_score,
}


def get_nonconformity(spec: Union[str, NonconformityFn]) -> NonconformityFn:
    """Resolve a nonconformity score by name or pass through a callable."""
    if callable(spec):
        return spec
    try:
        return _SCORES[spec]
    except KeyError as exc:
        known = ", ".join(sorted(_SCORES))
        raise ValueError(f"Unknown nonconformity score {spec!r}; known: {known}") from exc
