"""Inductive (split) conformal prediction, plain and Mondrian.

The inductive conformal predictor (ICP) calibrates on a held-out calibration
set: for a new sample and a candidate label, its p-value is the fraction of
calibration nonconformity scores at least as large as the sample's own score
(with the +1 smoothing that guarantees validity).

The *Mondrian* (label-conditional) variant computes each label's p-value
against only the calibration scores of that label, which restores per-class
validity under heavy class imbalance — exactly the situation Trojan
detection is in (few infected samples) and the reason the paper adopts
Mondrian ICP.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

import numpy as np

from .nonconformity import NonconformityFn, _validate_probabilities, get_nonconformity

#: Scores closer than this are treated as ties (matches the historical loop
#: implementation, kept in :meth:`InductiveConformalClassifier.p_values_reference`).
_TIE_TOLERANCE = 1e-12


class InductiveConformalClassifier:
    """Split conformal predictor on top of any probabilistic classifier.

    Parameters
    ----------
    nonconformity:
        Score name or callable (see :mod:`repro.conformal.nonconformity`).
    mondrian:
        If ``True`` (default), p-values are label-conditional.
    smoothing:
        If ``True``, tie-broken (smoothed) p-values are produced using a
        random tie weight, giving exact validity; deterministic otherwise.
    """

    def __init__(
        self,
        nonconformity: Union[str, NonconformityFn] = "inverse_probability",
        mondrian: bool = True,
        smoothing: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.nonconformity = get_nonconformity(nonconformity)
        #: The registry name the score was resolved from (``None`` when a raw
        #: callable was supplied); recorded so a calibrated predictor can be
        #: persisted and reconstructed by the artifact store.
        self.nonconformity_name: Optional[str] = (
            nonconformity if isinstance(nonconformity, str) else None
        )
        self.mondrian = mondrian
        self.smoothing = smoothing
        self._rng = rng or np.random.default_rng()
        self._calibration_scores: Optional[np.ndarray] = None
        self._calibration_labels: Optional[np.ndarray] = None
        self._n_classes: Optional[int] = None
        # Sorted calibration scores, cached at calibrate() time so p_values()
        # can binary-search instead of materialising an (N, n_cal) matrix.
        self._sorted_marginal: Optional[np.ndarray] = None
        self._sorted_by_label: Optional[List[np.ndarray]] = None

    # -- calibration -----------------------------------------------------------
    def calibrate(
        self, calibration_probabilities: np.ndarray, calibration_labels: np.ndarray
    ) -> "InductiveConformalClassifier":
        """Store nonconformity scores of the calibration set.

        Raises a clear ``ValueError`` up front for calibration sets that
        can only produce nonsense downstream: an empty set, or (for
        Mondrian predictors) a class with zero calibration examples —
        label-conditional p-values for that class would silently degrade
        to the marginal distribution and lose their per-class validity
        guarantee.
        """
        probabilities = _validate_probabilities(calibration_probabilities)
        labels = np.asarray(calibration_labels, dtype=int)
        if probabilities.shape[0] != labels.shape[0]:
            raise ValueError("calibration probabilities and labels must align")
        if probabilities.shape[0] == 0:
            raise ValueError(
                "calibration set must not be empty: conformal p-values need "
                "at least one calibration example"
            )
        self._n_classes = probabilities.shape[1]
        if labels.min() < 0 or labels.max() >= self._n_classes:
            raise ValueError("calibration labels out of range")
        if self.mondrian:
            counts = np.bincount(labels, minlength=self._n_classes)
            missing = np.flatnonzero(counts == 0)
            if missing.size:
                raise ValueError(
                    "Mondrian (label-conditional) calibration needs at least "
                    f"one example of every class; class(es) {missing.tolist()} "
                    "have none — use a stratified calibration split or "
                    "mondrian=False"
                )
        self._calibration_scores = self.nonconformity(probabilities, labels)
        self._calibration_labels = labels
        self._sorted_marginal = np.sort(self._calibration_scores)
        if self.mondrian:
            self._sorted_by_label = [
                np.sort(self._calibration_scores[labels == label])
                for label in range(self._n_classes)
            ]
        else:
            self._sorted_by_label = None
        return self

    @property
    def is_calibrated(self) -> bool:
        """Whether :meth:`calibrate` has been called."""
        return self._calibration_scores is not None

    @property
    def n_classes(self) -> int:
        """Number of classes seen at calibration time (raises if uncalibrated)."""
        if self._n_classes is None:
            raise RuntimeError("classifier has not been calibrated")
        return self._n_classes

    def calibration_summary(self) -> Dict[int, int]:
        """Number of calibration examples per class (Mondrian category sizes)."""
        if self._calibration_labels is None:
            raise RuntimeError("classifier has not been calibrated")
        classes, counts = np.unique(self._calibration_labels, return_counts=True)
        return dict(zip(classes.tolist(), counts.tolist()))

    # -- persistence -------------------------------------------------------------
    def calibration_state(self) -> Dict[str, Any]:
        """Everything needed to reconstruct this calibrated predictor.

        Returns a dictionary with two kinds of entries:

        * **arrays** — ``calibration_scores``, ``calibration_labels``, the
          pre-sorted ``sorted_marginal`` cache and (for Mondrian predictors)
          one ``sorted_label_<k>`` array per class.  The sorted caches are
          persisted verbatim rather than recomputed at load time, so a
          restored predictor binary-searches *exactly* the same arrays and
          produces bit-identical p-values.
        * **settings** — a JSON-serialisable sub-dict with ``mondrian``,
          ``smoothing``, ``n_classes`` and the ``nonconformity`` registry
          name.

        Raises
        ------
        RuntimeError
            If :meth:`calibrate` has not been called yet.
        ValueError
            If the nonconformity score was supplied as a raw callable, which
            cannot be persisted by name.
        """
        if self._calibration_scores is None or self._calibration_labels is None:
            raise RuntimeError("classifier has not been calibrated")
        if self.nonconformity_name is None:
            raise ValueError(
                "cannot persist an ICP whose nonconformity score is a raw "
                "callable; construct it with a registry name instead"
            )
        state: Dict[str, Any] = {
            "calibration_scores": self._calibration_scores.copy(),
            "calibration_labels": self._calibration_labels.copy(),
            "sorted_marginal": self._sorted_marginal.copy(),
            "settings": {
                "mondrian": bool(self.mondrian),
                "smoothing": bool(self.smoothing),
                "n_classes": int(self.n_classes),
                "nonconformity": self.nonconformity_name,
            },
        }
        if self.mondrian and self._sorted_by_label is not None:
            for label, scores in enumerate(self._sorted_by_label):
                state[f"sorted_label_{label}"] = scores.copy()
        return state

    @classmethod
    def from_calibration_state(
        cls,
        state: Dict[str, Any],
        rng: Optional[np.random.Generator] = None,
    ) -> "InductiveConformalClassifier":
        """Rebuild a calibrated predictor from :meth:`calibration_state`.

        The sorted-score caches are restored directly (not re-sorted), so the
        reconstructed predictor's :meth:`p_values` are bit-identical to the
        original's for non-smoothed predictors.  Smoothed predictors draw
        fresh tie-breaking randomness from ``rng``.

        Raises a clear ``ValueError`` for states that could never have come
        from a valid :meth:`calibrate` call — missing entries, an empty
        calibration set, or (Mondrian) a class with no calibration scores —
        instead of deferring to a confusing failure at ``p_values`` time.
        """
        try:
            settings = state["settings"]
            calibration_scores = state["calibration_scores"]
            calibration_labels = state["calibration_labels"]
            sorted_marginal = state["sorted_marginal"]
            nonconformity = settings["nonconformity"]
            mondrian = settings["mondrian"]
            smoothing = settings["smoothing"]
            n_classes = settings["n_classes"]
        except KeyError as exc:
            raise ValueError(
                f"invalid ICP calibration state: missing entry {exc.args[0]!r}"
            ) from exc
        icp = cls(
            nonconformity=nonconformity,
            mondrian=bool(mondrian),
            smoothing=bool(smoothing),
            rng=rng,
        )
        icp._calibration_scores = np.asarray(calibration_scores, dtype=np.float64)
        icp._calibration_labels = np.asarray(calibration_labels, dtype=int)
        icp._n_classes = int(n_classes)
        icp._sorted_marginal = np.asarray(sorted_marginal, dtype=np.float64)
        if icp._calibration_scores.size == 0:
            raise ValueError(
                "invalid ICP calibration state: empty calibration set "
                "(zero calibration scores)"
            )
        if icp.mondrian:
            sorted_by_label = []
            for label in range(icp._n_classes):
                key = f"sorted_label_{label}"
                if key not in state:
                    raise ValueError(
                        f"invalid ICP calibration state: missing entry {key!r} "
                        "for a Mondrian predictor"
                    )
                sorted_by_label.append(np.asarray(state[key], dtype=np.float64))
            empty = [k for k, s in enumerate(sorted_by_label) if s.size == 0]
            if empty:
                raise ValueError(
                    "invalid ICP calibration state: Mondrian predictor has no "
                    f"calibration scores for class(es) {empty} — recalibrate "
                    "with at least one example of every class"
                )
            icp._sorted_by_label = sorted_by_label
        else:
            icp._sorted_by_label = None
        return icp

    # -- p-values ---------------------------------------------------------------
    def _reference_scores(self, label: int) -> np.ndarray:
        # calibrate()/from_calibration_state() guarantee every Mondrian
        # class has at least one calibration score, so no fallback exists.
        assert self._calibration_scores is not None and self._calibration_labels is not None
        if self.mondrian:
            return self._calibration_scores[self._calibration_labels == label]
        return self._calibration_scores

    def _sorted_reference_scores(self, label: int) -> np.ndarray:
        assert self._sorted_marginal is not None
        if self.mondrian:
            assert self._sorted_by_label is not None
            return self._sorted_by_label[label]
        return self._sorted_marginal

    def _validate_test_probabilities(self, test_probabilities: np.ndarray) -> np.ndarray:
        if not self.is_calibrated:
            raise RuntimeError("calibrate() must be called before p_values()")
        probabilities = _validate_probabilities(test_probabilities)
        if probabilities.shape[1] != self.n_classes:
            raise ValueError(
                f"expected {self.n_classes} classes, got {probabilities.shape[1]}"
            )
        return probabilities

    def p_values(self, test_probabilities: np.ndarray) -> np.ndarray:
        """p-value matrix ``(N, n_classes)`` for candidate labels of each sample.

        Runs in ``O((N + n_cal) log n_cal)`` per label: the calibration
        scores are sorted once at :meth:`calibrate` time and each label's
        rank counts come from two ``np.searchsorted`` calls — no Python loop
        over samples and no ``(N, n_cal)`` difference matrix.  The counts
        are identical (same tie tolerance) to the quadratic loop kept in
        :meth:`p_values_reference`.
        """
        probabilities = self._validate_test_probabilities(test_probabilities)
        n_samples = probabilities.shape[0]
        p_values = np.empty((n_samples, self.n_classes))
        for label in range(self.n_classes):
            labels = np.full(n_samples, label, dtype=int)
            scores = self.nonconformity(probabilities, labels)
            reference = self._sorted_reference_scores(label)
            # greater = #{ref : ref > score + tol}; equal = #{ref : |ref - score| <= tol}
            upper = np.searchsorted(reference, scores + _TIE_TOLERANCE, side="right")
            lower = np.searchsorted(reference, scores - _TIE_TOLERANCE, side="left")
            greater = reference.size - upper
            equal = upper - lower
            if self.smoothing:
                tau = self._rng.random(n_samples)
                p_values[:, label] = (greater + tau * (equal + 1)) / (reference.size + 1)
            else:
                p_values[:, label] = (greater + equal + 1) / (reference.size + 1)
        return np.clip(p_values, 0.0, 1.0)

    def p_values_reference(self, test_probabilities: np.ndarray) -> np.ndarray:
        """Golden quadratic implementation of :meth:`p_values`.

        The seed repository's original per-label difference-matrix loop,
        kept for the exact-match equivalence tests and as the baseline the
        perf harness (``benchmarks/perf/bench_conformal.py``) measures the
        searchsorted implementation against.  Draws the smoothing ``tau``
        in the same order as the fast path, so two predictors seeded
        identically produce bit-identical smoothed p-values.
        """
        probabilities = self._validate_test_probabilities(test_probabilities)
        n_samples = probabilities.shape[0]
        p_values = np.empty((n_samples, self.n_classes))
        for label in range(self.n_classes):
            labels = np.full(n_samples, label, dtype=int)
            scores = self.nonconformity(probabilities, labels)
            reference = self._reference_scores(label)
            differences = reference[None, :] - scores[:, None]
            greater = (differences > _TIE_TOLERANCE).sum(axis=1)
            equal = (np.abs(differences) <= _TIE_TOLERANCE).sum(axis=1)
            if self.smoothing:
                tau = self._rng.random(n_samples)
                p_values[:, label] = (greater + tau * (equal + 1)) / (reference.size + 1)
            else:
                p_values[:, label] = (greater + equal + 1) / (reference.size + 1)
        return np.clip(p_values, 0.0, 1.0)

    # -- convenience -------------------------------------------------------------
    def predict_point(self, test_probabilities: np.ndarray) -> np.ndarray:
        """Forced point prediction: the label with the largest p-value."""
        return self.p_values(test_probabilities).argmax(axis=1)

    def credibility(self, test_probabilities: np.ndarray) -> np.ndarray:
        """Credibility: the largest p-value per sample (how typical the sample is)."""
        return self.p_values(test_probabilities).max(axis=1)

    def confidence(self, test_probabilities: np.ndarray) -> np.ndarray:
        """Confidence: one minus the second-largest p-value per sample."""
        p = self.p_values(test_probabilities)
        if p.shape[1] < 2:
            return np.ones(p.shape[0])
        sorted_p = np.sort(p, axis=1)
        return 1.0 - sorted_p[:, -2]
