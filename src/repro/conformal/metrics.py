"""Evaluation metrics specific to conformal (set-valued) predictions.

Conformal predictors are evaluated differently from point classifiers: the
key questions are *validity* (does the region contain the true label at the
promised rate, marginally and per class?) and *efficiency* (how small are
the regions / how often are they informative singletons?).  The paper notes
that the conformal confusion matrix differs from the conventional one
because prediction sets may hold several labels; :func:`set_confusion_matrix`
implements that set-valued bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .regions import PredictionRegion, prediction_regions


@dataclass
class ConformalEvaluation:
    """Summary of a conformal predictor's behaviour on a labelled test set."""

    confidence: float
    coverage: float
    per_class_coverage: Dict[int, float]
    average_region_size: float
    singleton_fraction: float
    empty_fraction: float
    uncertain_fraction: float
    singleton_accuracy: float

    def as_dict(self) -> Dict[str, float]:
        flat = {
            "confidence": self.confidence,
            "coverage": self.coverage,
            "average_region_size": self.average_region_size,
            "singleton_fraction": self.singleton_fraction,
            "empty_fraction": self.empty_fraction,
            "uncertain_fraction": self.uncertain_fraction,
            "singleton_accuracy": self.singleton_accuracy,
        }
        for label, value in self.per_class_coverage.items():
            flat[f"coverage_class_{label}"] = value
        return flat


def evaluate_regions(
    regions: Sequence[PredictionRegion], labels: np.ndarray
) -> ConformalEvaluation:
    """Validity/efficiency metrics for a list of prediction regions."""
    labels = np.asarray(labels, dtype=int)
    if len(regions) != len(labels):
        raise ValueError("regions and labels must align")
    if len(regions) == 0:
        raise ValueError("cannot evaluate an empty set of regions")
    confidence = regions[0].confidence
    hits = np.array([int(label) in region for region, label in zip(regions, labels)])
    sizes = np.array([len(region) for region in regions])
    singletons = sizes == 1
    singleton_correct = np.array(
        [
            len(region) == 1 and region.labels[0] == label
            for region, label in zip(regions, labels)
        ]
    )
    per_class: Dict[int, float] = {}
    for label in np.unique(labels):
        members = labels == label
        per_class[int(label)] = float(hits[members].mean())
    return ConformalEvaluation(
        confidence=confidence,
        coverage=float(hits.mean()),
        per_class_coverage=per_class,
        average_region_size=float(sizes.mean()),
        singleton_fraction=float(singletons.mean()),
        empty_fraction=float((sizes == 0).mean()),
        uncertain_fraction=float((sizes > 1).mean()),
        singleton_accuracy=float(singleton_correct.sum() / max(singletons.sum(), 1)),
    )


def coverage_outcomes(
    regions: Sequence[PredictionRegion], labels: Optional[np.ndarray] = None
) -> np.ndarray:
    """Per-region coverage outcomes for drift monitoring.

    With ``labels``, each outcome is the exact coverage indicator — the
    true label falls inside the region.  Without labels (the serve-time
    situation), the outcome is the sound *lower bound* used by
    :class:`repro.obs.drift.CoverageDriftMonitor`: ``True`` when the
    region is non-empty (it may still cover), ``False`` when it is empty
    (a guaranteed miss).  Both forms are boolean arrays whose mean
    estimates (or lower-bounds) observed coverage over the batch.
    """
    if labels is None:
        return np.array([not region.is_empty for region in regions], dtype=bool)
    labels = np.asarray(labels, dtype=int)
    if len(regions) != len(labels):
        raise ValueError("regions and labels must align")
    return np.array(
        [int(label) in region for region, label in zip(regions, labels)], dtype=bool
    )


def evaluate_p_values(
    p_values: np.ndarray, labels: np.ndarray, confidence: float = 0.9
) -> ConformalEvaluation:
    """Convenience wrapper: build regions from p-values, then evaluate them."""
    regions = prediction_regions(p_values, confidence=confidence)
    return evaluate_regions(regions, labels)


def set_confusion_matrix(
    regions: Sequence[PredictionRegion], labels: np.ndarray, n_classes: int = 2
) -> Dict[str, int]:
    """Set-valued confusion bookkeeping for binary Trojan detection.

    Categories follow the conformal-confusion-matrix convention: singleton
    regions are credited/blamed like ordinary predictions, while uncertain
    (both labels) and empty regions are tracked separately instead of being
    force-assigned.
    """
    labels = np.asarray(labels, dtype=int)
    if len(regions) != len(labels):
        raise ValueError("regions and labels must align")
    counts = {
        "true_positive": 0,
        "true_negative": 0,
        "false_positive": 0,
        "false_negative": 0,
        "uncertain": 0,
        "empty": 0,
    }
    for region, label in zip(regions, labels):
        if region.is_empty:
            counts["empty"] += 1
        elif region.is_uncertain:
            counts["uncertain"] += 1
        else:
            predicted = region.labels[0]
            if predicted == 1 and label == 1:
                counts["true_positive"] += 1
            elif predicted == 0 and label == 0:
                counts["true_negative"] += 1
            elif predicted == 1 and label == 0:
                counts["false_positive"] += 1
            else:
                counts["false_negative"] += 1
    return counts


def validity_curve(
    p_values: np.ndarray,
    labels: np.ndarray,
    confidences: Sequence[float] = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99),
) -> List[Dict[str, float]]:
    """Coverage and efficiency across a sweep of confidence levels.

    Useful for checking the (near-)diagonal validity behaviour that a
    well-calibrated conformal predictor must exhibit.
    """
    results = []
    for confidence in confidences:
        evaluation = evaluate_p_values(p_values, labels, confidence=confidence)
        results.append(
            {
                "confidence": float(confidence),
                "coverage": evaluation.coverage,
                "average_region_size": evaluation.average_region_size,
                "singleton_fraction": evaluation.singleton_fraction,
            }
        )
    return results
