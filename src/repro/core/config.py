"""Configuration objects for the NOODLE pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from ..gan.augmentation import AmplificationConfig
from ..gan.gan import GANConfig  # noqa: F401  (re-exported for config round-trips)


@dataclass
class ClassifierConfig:
    """Hyper-parameters of the per-modality CNN classifier.

    The paper deliberately keeps the classifier simple ("any ML model can be
    optimised through hyper-parameter tuning...; our primary emphasis is on
    assessing the effectiveness of uncertainty-aware multimodality"), so the
    defaults here are a small 1-D CNN that trains in seconds on CPU.
    """

    channels: Tuple[int, int] = (16, 32)
    kernel_size: int = 3
    dense_units: int = 32
    dropout: float = 0.1
    epochs: int = 60
    batch_size: int = 16
    learning_rate: float = 1e-3
    seed: int = 0

    def validate(self) -> None:
        if len(self.channels) != 2 or min(self.channels) <= 0:
            raise ValueError("channels must be a pair of positive integers")
        if self.kernel_size <= 0 or self.dense_units <= 0:
            raise ValueError("kernel_size and dense_units must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if self.epochs <= 0 or self.batch_size <= 0 or self.learning_rate <= 0:
            raise ValueError("epochs, batch_size and learning_rate must be positive")

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by the engine artifact manifest)."""
        return {
            "channels": list(self.channels),
            "kernel_size": self.kernel_size,
            "dense_units": self.dense_units,
            "dropout": self.dropout,
            "epochs": self.epochs,
            "batch_size": self.batch_size,
            "learning_rate": self.learning_rate,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClassifierConfig":
        data = dict(data)
        data["channels"] = tuple(data.get("channels", (16, 32)))
        return cls(**data)


@dataclass
class NoodleConfig:
    """Top-level configuration of the NOODLE framework (Algorithm 2)."""

    #: Modalities to fuse, by name (see :mod:`repro.features.pipeline`).
    modalities: Sequence[str] = ("graph", "tabular")
    #: Per-modality classifier settings.
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)
    #: p-value combination method for uncertainty-aware fusion (Algorithm 1).
    combination_method: str = "fisher"
    #: Confidence level E for conformal prediction regions.
    confidence_level: float = 0.9
    #: Fraction of the training data held out for conformal calibration.
    calibration_fraction: float = 0.3
    #: Fraction of the training data held out to pick the winning fusion.
    validation_fraction: float = 0.2
    #: Whether to GAN-amplify the training data before fitting.
    amplify: bool = False
    #: Amplification settings (used when ``amplify`` is True).
    amplification: AmplificationConfig = field(default_factory=AmplificationConfig)
    #: Use Mondrian (label-conditional) conformal prediction.
    mondrian: bool = True
    #: Nonconformity score name.
    nonconformity: str = "inverse_probability"
    #: Random seed controlling splits and model initialisation.
    seed: int = 0

    def validate(self) -> None:
        if not self.modalities:
            raise ValueError("at least one modality is required")
        if len(set(self.modalities)) != len(self.modalities):
            raise ValueError("modalities must be unique")
        if not 0.0 < self.confidence_level < 1.0:
            raise ValueError("confidence_level must be in (0, 1)")
        if not 0.0 < self.calibration_fraction < 1.0:
            raise ValueError("calibration_fraction must be in (0, 1)")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")
        if self.calibration_fraction + self.validation_fraction >= 0.9:
            raise ValueError(
                "calibration and validation fractions leave too little training data"
            )
        self.classifier.validate()
        self.amplification.validate()

    def to_dict(self) -> dict:
        """JSON-serialisable form of the full configuration tree.

        Round-trips through :meth:`from_dict`; the engine artifact store
        writes this into ``manifest.json`` so a persisted detector carries
        the exact configuration it was trained with.
        """
        return {
            "modalities": list(self.modalities),
            "classifier": self.classifier.to_dict(),
            "combination_method": self.combination_method,
            "confidence_level": self.confidence_level,
            "calibration_fraction": self.calibration_fraction,
            "validation_fraction": self.validation_fraction,
            "amplify": self.amplify,
            "amplification": self.amplification.to_dict(),
            "mondrian": self.mondrian,
            "nonconformity": self.nonconformity,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NoodleConfig":
        """Reconstruct (and validate) a configuration from :meth:`to_dict`."""
        data = dict(data)
        data["modalities"] = tuple(data.get("modalities", ("graph", "tabular")))
        if "classifier" in data:
            data["classifier"] = ClassifierConfig.from_dict(data["classifier"])
        if "amplification" in data:
            data["amplification"] = AmplificationConfig.from_dict(data["amplification"])
        config = cls(**data)
        config.validate()
        return config


def default_config(seed: Optional[int] = None, **overrides) -> NoodleConfig:
    """A validated default configuration, optionally reseeded / overridden."""
    config = NoodleConfig(**overrides)
    if seed is not None:
        config.seed = seed
        config.classifier.seed = seed
    config.validate()
    return config
