"""The NOODLE framework (Algorithm 2 of the paper).

``NOODLE.fit`` takes a multimodal training set and:

1. imputes missing modalities with the conditional GAN imputer (if any);
2. optionally amplifies the training data with per-class GANs;
3. holds out a validation slice, trains an early-fusion and a late-fusion
   model on the remainder;
4. evaluates both on the validation slice and keeps the one with the better
   (lower) Brier score — Algorithm 2, step 8;
5. refits the winning strategy on the full training data.

``NOODLE.decide`` then produces risk-aware :class:`TrojanDecision` objects
— label, fused probability, conformal prediction region, credibility and
confidence — for new designs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..conformal import evaluate_p_values
from ..conformal.regions import confidence_scores, credibility, prediction_regions
from ..features.pipeline import MODALITIES, MultimodalFeatures
from ..gan.augmentation import amplify_multimodal
from ..gan.imputation import impute_missing_modalities
from ..metrics.brier import brier_score
from ..metrics.classification import accuracy
from ..metrics.roc import roc_auc
from .config import NoodleConfig
from .fusion import ConformalFusionModel, EarlyFusionModel, LateFusionModel
from .results import FusionEvaluation, NoodleReport, TrojanDecision


def _stratified_holdout(
    labels: np.ndarray, fraction: float, rng: np.random.Generator
) -> tuple:
    """(fit_indices, holdout_indices) preserving class proportions."""
    fit_idx: List[int] = []
    holdout_idx: List[int] = []
    for label in np.unique(labels):
        members = np.flatnonzero(labels == label)
        rng.shuffle(members)
        n_holdout = max(1, int(round(len(members) * fraction)))
        if n_holdout >= len(members):
            n_holdout = max(len(members) - 1, 1)
        holdout_idx.extend(int(i) for i in members[:n_holdout])
        fit_idx.extend(int(i) for i in members[n_holdout:])
    return np.asarray(sorted(fit_idx)), np.asarray(sorted(holdout_idx))


def build_decisions(
    names: List[str],
    p_values: np.ndarray,
    confidence: float,
    true_labels: Optional[np.ndarray] = None,
) -> List[TrojanDecision]:
    """Risk-aware :class:`TrojanDecision` per row of a p-value matrix.

    The single definition of how p-values become decisions (fused
    pseudo-probability, prediction region at ``confidence``, credibility
    and confidence scores), shared by :meth:`NOODLE.decide` and the scan
    engine's batched pipeline.
    """
    probabilities = p_values / np.maximum(p_values.sum(axis=1, keepdims=True), 1e-12)
    regions = prediction_regions(p_values, confidence=confidence)
    cred = credibility(p_values)
    conf = confidence_scores(p_values)
    return [
        TrojanDecision(
            name=names[i],
            predicted_label=int(p_values[i].argmax()),
            probability_infected=float(probabilities[i, 1]),
            p_value_trojan_free=float(p_values[i, 0]),
            p_value_trojan_infected=float(p_values[i, 1]),
            region_labels=region.labels,
            credibility=float(cred[i]),
            confidence=float(conf[i]),
            true_label=int(true_labels[i]) if true_labels is not None else None,
        )
        for i, region in enumerate(regions)
    ]


def evaluate_fusion_model(
    model: ConformalFusionModel,
    features: MultimodalFeatures,
    confidence: Optional[float] = None,
) -> FusionEvaluation:
    """Standard evaluation of any fitted fusion model on a labelled split."""
    level = confidence if confidence is not None else model.config.confidence_level
    p_values = model.p_values(features)
    probabilities = model.predict_proba(features)[:, 1]
    predictions = model.predict(features)
    labels = features.labels
    conformal = evaluate_p_values(p_values, labels, confidence=level)
    return FusionEvaluation(
        strategy=model.strategy,
        brier_score=brier_score(probabilities, labels),
        auc=roc_auc(probabilities, labels),
        accuracy=accuracy(predictions, labels),
        coverage=conformal.coverage,
        average_region_size=conformal.average_region_size,
        uncertain_fraction=conformal.uncertain_fraction,
    )


class NOODLE:
    """Uncertainty-aware multimodal hardware-Trojan detector."""

    def __init__(self, config: Optional[NoodleConfig] = None) -> None:
        self.config = config or NoodleConfig()
        self.config.validate()
        self._model: Optional[ConformalFusionModel] = None
        self._report: Optional[NoodleReport] = None
        self._candidates: Dict[str, ConformalFusionModel] = {}

    # -- training -------------------------------------------------------------
    def _prepare_training_data(self, features: MultimodalFeatures) -> MultimodalFeatures:
        """Impute missing modalities, then optionally GAN-amplify."""
        has_missing = any(features.missing_mask(m).any() for m in MODALITIES)
        if has_missing:
            features = impute_missing_modalities(features)
        if self.config.amplify:
            features = amplify_multimodal(features, self.config.amplification)
        return features

    def fit(self, features: MultimodalFeatures) -> NoodleReport:
        """Run Algorithm 2 on the training data and keep the winning fusion."""
        original_size = len(features)
        prepared = self._prepare_training_data(features)
        rng = np.random.default_rng(self.config.seed + 1)

        validation_fraction = self.config.validation_fraction
        if validation_fraction > 0:
            fit_idx, validation_idx = _stratified_holdout(
                prepared.labels, validation_fraction, rng
            )
            fit_features = prepared.subset(fit_idx)
            validation_features = prepared.subset(validation_idx)
        else:
            fit_features = prepared
            validation_features = prepared

        candidates: Dict[str, ConformalFusionModel] = {
            "early_fusion": EarlyFusionModel(self.config),
            "late_fusion": LateFusionModel(self.config),
        }
        validation_scores: Dict[str, float] = {}
        for name, model in candidates.items():
            model.fit(fit_features)
            probabilities = model.predict_proba(validation_features)[:, 1]
            validation_scores[name] = brier_score(probabilities, validation_features.labels)
        winner = min(validation_scores, key=validation_scores.get)

        # Refit the winner (and keep the runner-up fitted for inspection) on
        # the full prepared training data.
        final_model = (
            EarlyFusionModel(self.config) if winner == "early_fusion" else LateFusionModel(self.config)
        )
        final_model.fit(prepared)
        self._candidates = candidates
        self._model = final_model
        self._report = NoodleReport(
            winner=winner,
            validation_scores=validation_scores,
            strategies=list(candidates),
            amplified_training_size=len(prepared),
            original_training_size=original_size,
        )
        return self._report

    # -- inference ---------------------------------------------------------------
    @property
    def report(self) -> NoodleReport:
        if self._report is None:
            raise RuntimeError("NOODLE has not been fitted yet")
        return self._report

    @property
    def model(self) -> ConformalFusionModel:
        """The winning fusion model."""
        if self._model is None:
            raise RuntimeError("NOODLE has not been fitted yet")
        return self._model

    def candidate(self, name: str) -> ConformalFusionModel:
        """Access one of the candidate models fitted during selection."""
        if name not in self._candidates:
            raise KeyError(f"unknown candidate {name!r}; have {sorted(self._candidates)}")
        return self._candidates[name]

    def predict_proba(self, features: MultimodalFeatures) -> np.ndarray:
        return self.model.predict_proba(features)

    def predict(self, features: MultimodalFeatures) -> np.ndarray:
        return self.model.predict(features)

    def p_values(self, features: MultimodalFeatures) -> np.ndarray:
        return self.model.p_values(features)

    def evaluate(self, features: MultimodalFeatures) -> FusionEvaluation:
        """Evaluate the winning model on a labelled split."""
        return evaluate_fusion_model(self.model, features, self.config.confidence_level)

    def decide(
        self, features: MultimodalFeatures, include_truth: bool = True
    ) -> List[TrojanDecision]:
        """Produce a risk-aware decision per design (Algorithm 2 output)."""
        p_values = self.p_values(features)
        names = features.names or [f"design{i}" for i in range(len(features))]
        return build_decisions(
            names,
            p_values,
            self.config.confidence_level,
            true_labels=features.labels if include_truth else None,
        )
