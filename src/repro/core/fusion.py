"""Fusion strategies: single modality, early fusion and late fusion.

All three share the same conformal backbone (train CNN -> calibrate Mondrian
ICP -> p-values -> normalised probabilities); they differ only in *where*
information from the modalities is combined:

* :class:`SingleModalityModel` — no fusion; the reference rows of Table I.
* :class:`EarlyFusionModel` — feature-level fusion: modality feature vectors
  are concatenated before the (single) CNN classifier.
* :class:`LateFusionModel` — decision-level fusion: one CNN + ICP per
  modality, per-class p-values combined with a p-value combination test
  statistic (Algorithm 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..conformal import (
    InductiveConformalClassifier,
    combine_p_value_matrices,
    forced_predictions,
    p_values_to_probabilities,
    prediction_regions,
)
from ..conformal.regions import PredictionRegion
from ..features.pipeline import MultimodalFeatures
from .classifiers import CNNModalityClassifier
from .config import NoodleConfig


def _stratified_calibration_split(
    labels: np.ndarray, calibration_fraction: float, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Indices of (proper-training, calibration) with per-class proportions."""
    train_idx: List[int] = []
    calibration_idx: List[int] = []
    for label in np.unique(labels):
        members = np.flatnonzero(labels == label)
        rng.shuffle(members)
        n_cal = max(1, int(round(len(members) * calibration_fraction)))
        if n_cal >= len(members):
            n_cal = max(len(members) - 1, 1)
        calibration_idx.extend(int(i) for i in members[:n_cal])
        train_idx.extend(int(i) for i in members[n_cal:])
    return np.asarray(sorted(train_idx)), np.asarray(sorted(calibration_idx))


class ConformalFusionModel:
    """Shared backbone: CNN classifier(s) + Mondrian ICP + p-value outputs."""

    #: Human-readable strategy name, overridden by subclasses.
    strategy = "abstract"

    def __init__(self, config: Optional[NoodleConfig] = None) -> None:
        self.config = config or NoodleConfig()
        self.config.validate()
        self._fitted = False
        self._backend = "numpy"

    # -- hooks implemented by subclasses ------------------------------------
    def _fit_models(
        self,
        features: MultimodalFeatures,
        train_idx: np.ndarray,
        calibration_idx: np.ndarray,
    ) -> None:
        raise NotImplementedError

    def _test_p_values(self, features: MultimodalFeatures) -> np.ndarray:
        raise NotImplementedError

    # -- common API ----------------------------------------------------------
    def fit(self, features: MultimodalFeatures) -> "ConformalFusionModel":
        """Train classifier(s) and calibrate conformal predictor(s)."""
        labels = features.labels
        if len(np.unique(labels)) < 2:
            raise ValueError("training data must contain both classes")
        rng = np.random.default_rng(self.config.seed)
        train_idx, calibration_idx = _stratified_calibration_split(
            labels, self.config.calibration_fraction, rng
        )
        self._fit_models(features, train_idx, calibration_idx)
        self._fitted = True
        if self.backend != "numpy":
            # _fit_models rebuilds the classifiers; re-apply the selection
            # (fresh weights mean any cached quantized state is stale).
            self.set_backend(self._backend)
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} must be fitted before prediction")

    # -- compute backend ------------------------------------------------------
    def _classifier_components(self) -> Dict[str, CNNModalityClassifier]:
        """Component-name -> classifier map (matches the artifact layout)."""
        mapping = getattr(self, "_classifiers", None)
        if mapping:
            return dict(mapping)
        classifier = getattr(self, "_classifier", None)
        if classifier is None:
            return {}
        return {getattr(self, "modality", None) or "joint": classifier}

    @property
    def backend(self) -> str:
        """Name of the inference backend applied to the classifier(s)."""
        return getattr(self, "_backend", "numpy")

    def set_backend(
        self,
        name: str,
        quant_state: Optional[Dict[str, Dict[str, np.ndarray]]] = None,
    ) -> "ConformalFusionModel":
        """Select the compute backend for every underlying CNN classifier.

        ``quant_state`` optionally maps component names (as in the artifact
        layout: the modality name, ``"joint"``, or one entry per late-fusion
        modality) to that classifier's cached int8 quantization arrays.
        Raises ``ValueError`` for unknown backend names.
        """
        from ..nn.backend import get_backend

        get_backend(name)  # validate before touching any classifier
        self._backend = name
        for component, classifier in self._classifier_components().items():
            classifier.set_backend(
                name, (quant_state or {}).get(component)
            )
        return self

    def p_values(self, features: MultimodalFeatures) -> np.ndarray:
        """Conformal p-value matrix ``(N, 2)`` for TF (col 0) and TI (col 1)."""
        self._require_fitted()
        return self._test_p_values(features)

    def predict_proba(self, features: MultimodalFeatures) -> np.ndarray:
        """Normalised p-values as a pseudo-probability matrix ``(N, 2)``."""
        return p_values_to_probabilities(self.p_values(features))

    def predict(self, features: MultimodalFeatures) -> np.ndarray:
        """Forced point predictions (label with the largest p-value)."""
        return forced_predictions(self.p_values(features))

    def prediction_regions(
        self, features: MultimodalFeatures, confidence: Optional[float] = None
    ) -> List[PredictionRegion]:
        """Conformal prediction regions at the configured confidence level."""
        level = confidence if confidence is not None else self.config.confidence_level
        return prediction_regions(self.p_values(features), confidence=level)


class SingleModalityModel(ConformalFusionModel):
    """One modality, one CNN, one conformal predictor (no fusion)."""

    strategy = "single"

    def __init__(self, modality: str, config: Optional[NoodleConfig] = None) -> None:
        super().__init__(config)
        self.modality = modality
        self.strategy = f"single[{modality}]"
        self._classifier: Optional[CNNModalityClassifier] = None
        self._icp: Optional[InductiveConformalClassifier] = None

    def _fit_models(
        self,
        features: MultimodalFeatures,
        train_idx: np.ndarray,
        calibration_idx: np.ndarray,
    ) -> None:
        x = features.modality(self.modality)
        y = features.labels
        self._classifier = CNNModalityClassifier(x.shape[1], self.config.classifier)
        self._classifier.fit(x[train_idx], y[train_idx])
        self._icp = InductiveConformalClassifier(
            nonconformity=self.config.nonconformity,
            mondrian=self.config.mondrian,
            rng=np.random.default_rng(self.config.seed + 17),
        ).calibrate(self._classifier.predict_proba(x[calibration_idx]), y[calibration_idx])

    def _test_p_values(self, features: MultimodalFeatures) -> np.ndarray:
        assert self._classifier is not None and self._icp is not None
        x = features.modality(self.modality)
        return self._icp.p_values(self._classifier.predict_proba(x))

    def classifier_proba(self, features: MultimodalFeatures) -> np.ndarray:
        """Raw CNN probabilities (before conformal calibration)."""
        self._require_fitted()
        assert self._classifier is not None
        return self._classifier.predict_proba(features.modality(self.modality))


class EarlyFusionModel(ConformalFusionModel):
    """Feature-level fusion: concatenated modalities -> single CNN -> ICP."""

    strategy = "early_fusion"

    def __init__(self, config: Optional[NoodleConfig] = None) -> None:
        super().__init__(config)
        self._classifier: Optional[CNNModalityClassifier] = None
        self._icp: Optional[InductiveConformalClassifier] = None

    def _joint_features(self, features: MultimodalFeatures) -> np.ndarray:
        return np.hstack([features.modality(name) for name in self.config.modalities])

    def _fit_models(
        self,
        features: MultimodalFeatures,
        train_idx: np.ndarray,
        calibration_idx: np.ndarray,
    ) -> None:
        x = self._joint_features(features)
        y = features.labels
        self._classifier = CNNModalityClassifier(x.shape[1], self.config.classifier)
        self._classifier.fit(x[train_idx], y[train_idx])
        self._icp = InductiveConformalClassifier(
            nonconformity=self.config.nonconformity,
            mondrian=self.config.mondrian,
            rng=np.random.default_rng(self.config.seed + 17),
        ).calibrate(self._classifier.predict_proba(x[calibration_idx]), y[calibration_idx])

    def _test_p_values(self, features: MultimodalFeatures) -> np.ndarray:
        assert self._classifier is not None and self._icp is not None
        x = self._joint_features(features)
        return self._icp.p_values(self._classifier.predict_proba(x))

    def classifier_proba(self, features: MultimodalFeatures) -> np.ndarray:
        """Raw CNN probabilities on the fused feature vector."""
        self._require_fitted()
        assert self._classifier is not None
        return self._classifier.predict_proba(self._joint_features(features))


class LateFusionModel(ConformalFusionModel):
    """Decision-level fusion: per-modality ICP p-values combined per class."""

    strategy = "late_fusion"

    def __init__(self, config: Optional[NoodleConfig] = None) -> None:
        super().__init__(config)
        self._classifiers: Dict[str, CNNModalityClassifier] = {}
        self._icps: Dict[str, InductiveConformalClassifier] = {}

    def _fit_models(
        self,
        features: MultimodalFeatures,
        train_idx: np.ndarray,
        calibration_idx: np.ndarray,
    ) -> None:
        y = features.labels
        self._classifiers = {}
        self._icps = {}
        for offset, modality in enumerate(self.config.modalities):
            x = features.modality(modality)
            classifier = CNNModalityClassifier(x.shape[1], self.config.classifier)
            classifier.fit(x[train_idx], y[train_idx])
            icp = InductiveConformalClassifier(
                nonconformity=self.config.nonconformity,
                mondrian=self.config.mondrian,
                rng=np.random.default_rng(self.config.seed + 17 + offset),
            ).calibrate(classifier.predict_proba(x[calibration_idx]), y[calibration_idx])
            self._classifiers[modality] = classifier
            self._icps[modality] = icp

    def per_modality_p_values(self, features: MultimodalFeatures) -> Dict[str, np.ndarray]:
        """The un-fused ``(N, 2)`` p-value matrix of every modality."""
        self._require_fitted()
        matrices: Dict[str, np.ndarray] = {}
        for modality in self.config.modalities:
            x = features.modality(modality)
            probabilities = self._classifiers[modality].predict_proba(x)
            matrices[modality] = self._icps[modality].p_values(probabilities)
        return matrices

    def _test_p_values(self, features: MultimodalFeatures) -> np.ndarray:
        matrices = self.per_modality_p_values(features)
        ordered = [matrices[m] for m in self.config.modalities]
        return combine_p_value_matrices(ordered, method=self.config.combination_method)

    def classifier_proba(self, features: MultimodalFeatures) -> np.ndarray:
        """Average of the per-modality CNN probabilities (non-conformal fusion)."""
        self._require_fitted()
        stacked = [
            self._classifiers[m].predict_proba(features.modality(m))
            for m in self.config.modalities
        ]
        return np.mean(stacked, axis=0)


def build_fusion_model(
    strategy: str, config: Optional[NoodleConfig] = None, modality: Optional[str] = None
) -> ConformalFusionModel:
    """Factory: ``'early'``, ``'late'`` or ``'single'`` (with ``modality``)."""
    if strategy == "early":
        return EarlyFusionModel(config)
    if strategy == "late":
        return LateFusionModel(config)
    if strategy == "single":
        if modality is None:
            raise ValueError("single-modality strategy requires a modality name")
        return SingleModalityModel(modality, config)
    raise ValueError(f"unknown fusion strategy {strategy!r}")
