"""Result containers produced by the NOODLE pipeline and the scan engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class TrojanDecision:
    """Risk-aware decision for one design (Algorithm 2's output ``D``).

    Besides the binary decision, the conformal machinery contributes the
    quantities a decision-maker needs for triage: the fused probability, the
    per-class p-values, the prediction region at the configured confidence
    and the credibility/confidence scores.
    """

    name: str
    predicted_label: int
    probability_infected: float
    p_value_trojan_free: float
    p_value_trojan_infected: float
    region_labels: Tuple[int, ...]
    credibility: float
    confidence: float
    true_label: Optional[int] = None

    @property
    def is_uncertain(self) -> bool:
        """True when the prediction region contains more than one label."""
        return len(self.region_labels) > 1

    @property
    def is_empty(self) -> bool:
        """True when every label was rejected at the confidence level."""
        return len(self.region_labels) == 0

    @property
    def verdict(self) -> str:
        """Human-readable decision string used by the examples and reports."""
        if self.is_empty:
            return "anomalous (no label fits)"
        if self.is_uncertain:
            return "uncertain (needs manual review)"
        return "trojan_infected" if self.predicted_label == 1 else "trojan_free"


@dataclass
class ScanRecord:
    """One design's triage outcome from the batched scan engine.

    Wraps the per-design :class:`TrojanDecision` with the provenance the
    engine tracks on top of it: the SHA-256 content hash the result cache is
    keyed by, where the source came from, whether the record was served from
    cache, and any front-end error (a design whose HDL failed to lex/parse
    gets ``error`` set and no decision).

    Records round-trip through :meth:`to_dict` / :meth:`from_dict` so scan
    results can be persisted as JSON and re-loaded by ``python -m repro
    report``.
    """

    name: str
    sha256: str
    decision: Optional[TrojanDecision] = None
    source_path: Optional[str] = None
    cached: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the design was scanned successfully (has a decision)."""
        return self.decision is not None and self.error is None

    @property
    def verdict(self) -> str:
        """The decision's verdict string, or ``"error"`` for failed designs."""
        if self.decision is None:
            return "error"
        return self.decision.verdict

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (used by the scan cache and results files)."""
        data: Dict[str, Any] = {
            "name": self.name,
            "sha256": self.sha256,
            "source_path": self.source_path,
            "cached": self.cached,
            "error": self.error,
            "decision": None,
        }
        if self.decision is not None:
            decision = self.decision
            data["decision"] = {
                "name": decision.name,
                "predicted_label": decision.predicted_label,
                "probability_infected": decision.probability_infected,
                "p_value_trojan_free": decision.p_value_trojan_free,
                "p_value_trojan_infected": decision.p_value_trojan_infected,
                "region_labels": list(decision.region_labels),
                "credibility": decision.credibility,
                "confidence": decision.confidence,
                "true_label": decision.true_label,
            }
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScanRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        decision_data = data.get("decision")
        decision = None
        if decision_data is not None:
            decision_data = dict(decision_data)
            decision_data["region_labels"] = tuple(decision_data["region_labels"])
            decision = TrojanDecision(**decision_data)
        return cls(
            name=data["name"],
            sha256=data["sha256"],
            decision=decision,
            source_path=data.get("source_path"),
            cached=bool(data.get("cached", False)),
            error=data.get("error"),
        )


@dataclass
class FusionEvaluation:
    """Evaluation of one fusion strategy on one dataset split."""

    strategy: str
    brier_score: float
    auc: float
    accuracy: float
    coverage: float
    average_region_size: float
    uncertain_fraction: float
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        base = {
            "brier_score": self.brier_score,
            "auc": self.auc,
            "accuracy": self.accuracy,
            "coverage": self.coverage,
            "average_region_size": self.average_region_size,
            "uncertain_fraction": self.uncertain_fraction,
        }
        base.update(self.extra)
        return base


@dataclass
class NoodleReport:
    """What NOODLE.fit() learned: per-strategy validation scores and the winner."""

    winner: str
    validation_scores: Dict[str, float]
    strategies: List[str]
    amplified_training_size: int
    original_training_size: int

    def summary_lines(self) -> List[str]:
        lines = [
            f"training designs: {self.original_training_size}"
            + (
                f" (amplified to {self.amplified_training_size})"
                if self.amplified_training_size != self.original_training_size
                else ""
            ),
            f"strategies evaluated: {', '.join(self.strategies)}",
        ]
        for name, score in sorted(self.validation_scores.items(), key=lambda kv: kv[1]):
            marker = " <- winner" if name == self.winner else ""
            lines.append(f"  validation Brier[{name}] = {score:.4f}{marker}")
        return lines
