"""Result containers produced by the NOODLE pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class TrojanDecision:
    """Risk-aware decision for one design (Algorithm 2's output ``D``).

    Besides the binary decision, the conformal machinery contributes the
    quantities a decision-maker needs for triage: the fused probability, the
    per-class p-values, the prediction region at the configured confidence
    and the credibility/confidence scores.
    """

    name: str
    predicted_label: int
    probability_infected: float
    p_value_trojan_free: float
    p_value_trojan_infected: float
    region_labels: Tuple[int, ...]
    credibility: float
    confidence: float
    true_label: Optional[int] = None

    @property
    def is_uncertain(self) -> bool:
        """True when the prediction region contains more than one label."""
        return len(self.region_labels) > 1

    @property
    def is_empty(self) -> bool:
        """True when every label was rejected at the confidence level."""
        return len(self.region_labels) == 0

    @property
    def verdict(self) -> str:
        """Human-readable decision string used by the examples and reports."""
        if self.is_empty:
            return "anomalous (no label fits)"
        if self.is_uncertain:
            return "uncertain (needs manual review)"
        return "trojan_infected" if self.predicted_label == 1 else "trojan_free"


@dataclass
class FusionEvaluation:
    """Evaluation of one fusion strategy on one dataset split."""

    strategy: str
    brier_score: float
    auc: float
    accuracy: float
    coverage: float
    average_region_size: float
    uncertain_fraction: float
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        base = {
            "brier_score": self.brier_score,
            "auc": self.auc,
            "accuracy": self.accuracy,
            "coverage": self.coverage,
            "average_region_size": self.average_region_size,
            "uncertain_fraction": self.uncertain_fraction,
        }
        base.update(self.extra)
        return base


@dataclass
class NoodleReport:
    """What NOODLE.fit() learned: per-strategy validation scores and the winner."""

    winner: str
    validation_scores: Dict[str, float]
    strategies: List[str]
    amplified_training_size: int
    original_training_size: int

    def summary_lines(self) -> List[str]:
        lines = [
            f"training designs: {self.original_training_size}"
            + (
                f" (amplified to {self.amplified_training_size})"
                if self.amplified_training_size != self.original_training_size
                else ""
            ),
            f"strategies evaluated: {', '.join(self.strategies)}",
        ]
        for name, score in sorted(self.validation_scores.items(), key=lambda kv: kv[1]):
            marker = " <- winner" if name == self.winner else ""
            lines.append(f"  validation Brier[{name}] = {score:.4f}{marker}")
        return lines
