"""Per-modality CNN classifiers.

The paper uses CNN-based classifiers for both modalities.  Here each
modality's flat feature vector is treated as a one-channel 1-D signal and
classified by a small convolutional network (two conv blocks, global
average pooling, a dense head); a 2-D variant consumes the adjacency-image
representation of the graph modality.  Both expose the
``fit`` / ``predict_proba`` protocol the conformal layer expects.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..features.scaling import StandardScaler
from ..nn.dtype import as_float
from ..nn import (
    Conv1d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    MaxPool1d,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
)
from ..nn.backend import DEFAULT_BACKEND, InferencePlan, get_backend
from .config import ClassifierConfig


class _BackendMixin:
    """Compute-backend selection shared by the CNN classifiers.

    The golden ``numpy`` backend routes inference through the model's own
    float64 forward pass (bit-identical to training); any other backend
    lazily compiles an inference plan (fused float32 / int8) on first use
    and reuses it — including its scratch buffers — across calls.  Fitting
    invalidates the plan because plans snapshot the weights at compile.
    """

    _model: Sequential

    def set_backend(
        self,
        name: str,
        quant_state: Optional[Dict[str, np.ndarray]] = None,
    ) -> "_BackendMixin":
        """Select the inference backend (and optional cached quantized state).

        ``quant_state`` carries precomputed per-channel int8 weights (as
        produced by :meth:`quantized_state`) so a loaded artifact does not
        re-quantize; it is ignored by backends that do not use it.  Raises
        ``ValueError`` for unknown backend names.
        """
        get_backend(name)  # validate eagerly so callers get a clear error
        self._backend = name
        self._quant_state = quant_state
        self._plan = None
        return self

    @property
    def backend(self) -> str:
        """Name of the active inference backend."""
        return getattr(self, "_backend", DEFAULT_BACKEND)

    def quantized_state(self) -> Dict[str, np.ndarray]:
        """The int8 backend's cacheable arrays (per-channel weights/scales)."""
        return get_backend("int8").compile(self._model).export_state()

    def _invalidate_plan(self) -> None:
        self._plan = None

    def _infer_proba(self, x: np.ndarray) -> np.ndarray:
        """Model probabilities via the active backend's inference plan."""
        if self.backend == DEFAULT_BACKEND:
            return self._model.predict_proba(x)
        plan: Optional[InferencePlan] = getattr(self, "_plan", None)
        if plan is None:
            plan = get_backend(self._backend).compile(
                self._model, state=getattr(self, "_quant_state", None)
            )
            self._plan = plan
        return plan.predict_proba(x)


class CNNModalityClassifier(_BackendMixin):
    """1-D CNN over a flat feature vector (one modality)."""

    def __init__(self, n_features: int, config: Optional[ClassifierConfig] = None) -> None:
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        self.config = config or ClassifierConfig()
        self.config.validate()
        self.n_features = n_features
        self._scaler = StandardScaler()
        self._rng = np.random.default_rng(self.config.seed)
        self._model = self._build()
        self.set_backend(DEFAULT_BACKEND)

    def _build(self) -> Sequential:
        c1, c2 = self.config.channels
        k = self.config.kernel_size
        padding = k // 2
        pooled_length = self.n_features // 2
        if pooled_length < 1:
            raise ValueError("n_features too small for the CNN architecture")
        layers = [
            Conv1d(1, c1, kernel_size=k, padding=padding, rng=self._rng),
            ReLU(),
            MaxPool1d(2),
            Conv1d(c1, c2, kernel_size=k, padding=padding, rng=self._rng),
            ReLU(),
            Flatten(),
            Dense(c2 * pooled_length, self.config.dense_units, rng=self._rng),
            ReLU(),
        ]
        if self.config.dropout > 0:
            layers.append(Dropout(self.config.dropout, rng=self._rng))
        layers.extend([Dense(self.config.dense_units, 1, rng=self._rng), Sigmoid()])
        return Sequential(
            layers,
            loss="bce",
            optimizer="adam",
            learning_rate=self.config.learning_rate,
        )

    # -- data plumbing ------------------------------------------------------
    def _reshape(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], 1, self.n_features)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "CNNModalityClassifier":
        x = as_float(x)
        y = as_float(y).reshape(-1)
        if x.ndim != 2 or x.shape[1] != self.n_features:
            raise ValueError(f"expected shape (N, {self.n_features}), got {x.shape}")
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must align")
        scaled = self._scaler.fit_transform(x)
        self._model.fit(
            self._reshape(scaled),
            y,
            epochs=self.config.epochs,
            batch_size=self.config.batch_size,
            rng=np.random.default_rng(self.config.seed + 1),
        )
        self._invalidate_plan()
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x)
        if x.ndim != 2 or x.shape[1] != self.n_features:
            raise ValueError(f"expected shape (N, {self.n_features}), got {x.shape}")
        scaled = self._scaler.transform(x)
        positive = self._infer_proba(self._reshape(scaled)).reshape(-1)
        positive = np.clip(positive, 0.0, 1.0)
        return np.column_stack([1.0 - positive, positive])

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(x)[:, 1] >= threshold).astype(int)


class ImageCNNClassifier(_BackendMixin):
    """2-D CNN over adjacency images ``(N, 1, K, K)`` (graph modality variant)."""

    def __init__(self, image_size: int, config: Optional[ClassifierConfig] = None) -> None:
        if image_size < 4:
            raise ValueError("image_size must be at least 4")
        self.config = config or ClassifierConfig()
        self.config.validate()
        self.image_size = image_size
        self._rng = np.random.default_rng(self.config.seed)
        self._model = self._build()
        self.set_backend(DEFAULT_BACKEND)

    def _build(self) -> Sequential:
        c1, c2 = self.config.channels
        k = self.config.kernel_size
        padding = k // 2
        pooled = self.image_size // 2 // 2
        if pooled < 1:
            raise ValueError("image_size too small for two pooling stages")
        layers = [
            Conv2d(1, c1, kernel_size=k, padding=padding, rng=self._rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(c1, c2, kernel_size=k, padding=padding, rng=self._rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Dense(c2 * pooled * pooled, self.config.dense_units, rng=self._rng),
            ReLU(),
        ]
        if self.config.dropout > 0:
            layers.append(Dropout(self.config.dropout, rng=self._rng))
        layers.extend([Dense(self.config.dense_units, 1, rng=self._rng), Sigmoid()])
        return Sequential(
            layers,
            loss="bce",
            optimizer="adam",
            learning_rate=self.config.learning_rate,
        )

    def fit(self, images: np.ndarray, y: np.ndarray) -> "ImageCNNClassifier":
        images = as_float(images)
        y = as_float(y).reshape(-1)
        expected = (1, self.image_size, self.image_size)
        if images.ndim != 4 or images.shape[1:] != expected:
            raise ValueError(f"expected images of shape (N, {expected}), got {images.shape}")
        self._model.fit(
            images,
            y,
            epochs=self.config.epochs,
            batch_size=self.config.batch_size,
            rng=np.random.default_rng(self.config.seed + 1),
        )
        self._invalidate_plan()
        return self

    def predict_proba(self, images: np.ndarray) -> np.ndarray:
        images = as_float(images)
        positive = self._infer_proba(images).reshape(-1)
        positive = np.clip(positive, 0.0, 1.0)
        return np.column_stack([1.0 - positive, positive])

    def predict(self, images: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(images)[:, 1] >= threshold).astype(int)
