"""The NOODLE framework: multimodal fusion with conformal uncertainty.

Public entry points:

* :class:`NoodleConfig` / :func:`default_config` — configuration;
* :class:`CNNModalityClassifier` — the per-modality CNN;
* :class:`SingleModalityModel`, :class:`EarlyFusionModel`,
  :class:`LateFusionModel` — the fusion strategies of Table I;
* :class:`NOODLE` — Algorithm 2 end to end (fit both fusions, pick the
  winner by Brier score, emit risk-aware decisions).
"""

from .classifiers import CNNModalityClassifier, ImageCNNClassifier
from .config import ClassifierConfig, NoodleConfig, default_config
from .fusion import (
    ConformalFusionModel,
    EarlyFusionModel,
    LateFusionModel,
    SingleModalityModel,
    build_fusion_model,
)
from .noodle import NOODLE, evaluate_fusion_model
from .results import FusionEvaluation, NoodleReport, ScanRecord, TrojanDecision

__all__ = [
    "CNNModalityClassifier",
    "ClassifierConfig",
    "ConformalFusionModel",
    "EarlyFusionModel",
    "FusionEvaluation",
    "ImageCNNClassifier",
    "LateFusionModel",
    "NOODLE",
    "NoodleConfig",
    "NoodleReport",
    "ScanRecord",
    "SingleModalityModel",
    "TrojanDecision",
    "build_fusion_model",
    "default_config",
    "evaluate_fusion_model",
]
