"""Graph modality: fixed-length feature embedding of the data-flow graph.

The CNN classifiers need a fixed-size numeric representation per design.
Two complementary representations are produced from the data-flow graph:

* :func:`graph_feature_vector` — a vector of structural graph statistics
  (size, degree profile, connectivity, spectral summary, role counts),
  loosely following the statistics graph-kernel methods aggregate;
* :mod:`repro.features.image` — a 2-D "adjacency image" fed to the Conv2d
  classifier (see that module).

Trojan logic perturbs these statistics: triggers add high-fan-in comparator
nodes and weakly connected counter chains; payload muxes add edges from the
trigger wire into otherwise stable output cones.
"""

from __future__ import annotations

from typing import Dict, List, Union

import networkx as nx
import numpy as np

from ..hdl import ast_nodes as ast
from .graph_builder import build_dataflow_graph

#: Number of histogram bins used for the degree profile.
_DEGREE_BINS = 6
#: Number of leading Laplacian eigenvalues included in the embedding.
_SPECTRAL_COMPONENTS = 6


def _degree_histogram(degrees: List[int]) -> np.ndarray:
    """Histogram of degrees over fixed bins [0,1,2,3,4-7,8+]."""
    bins = np.zeros(_DEGREE_BINS)
    for degree in degrees:
        if degree <= 3:
            bins[degree] += 1
        elif degree <= 7:
            bins[4] += 1
        else:
            bins[5] += 1
    total = max(len(degrees), 1)
    return bins / total


def _spectral_summary(undirected: nx.Graph) -> np.ndarray:
    """Leading eigenvalues of the normalised Laplacian of the undirected view."""
    if undirected.number_of_nodes() < 2:
        return np.zeros(_SPECTRAL_COMPONENTS)
    laplacian = nx.normalized_laplacian_matrix(undirected).toarray()
    eigenvalues = np.sort(np.linalg.eigvalsh(laplacian))[::-1]
    summary = np.zeros(_SPECTRAL_COMPONENTS)
    count = min(_SPECTRAL_COMPONENTS, eigenvalues.shape[0])
    summary[:count] = eigenvalues[:count]
    return summary


def _longest_path_estimate(graph: nx.DiGraph) -> float:
    """Longest path in the acyclic condensation (logic-depth proxy)."""
    if graph.number_of_nodes() == 0:
        return 0.0
    condensation = nx.condensation(graph)
    if condensation.number_of_nodes() == 0:
        return 0.0
    return float(nx.dag_longest_path_length(condensation))


def _extract_graph_features_reference(graph: nx.DiGraph) -> Dict[str, float]:
    """Golden networkx implementation of :func:`extract_graph_features`.

    Kept as the reference the vectorized fast path is verified against
    (``tests/test_features_graph.py``), mirroring the golden-kernel pattern
    of :mod:`repro.nn._reference`.
    """
    n_nodes = graph.number_of_nodes()
    n_edges = graph.number_of_edges()
    in_degrees = [d for _, d in graph.in_degree()]
    out_degrees = [d for _, d in graph.out_degree()]
    roles = [data.get("role", "implicit") for _, data in graph.nodes(data=True)]
    widths = [data.get("width", 1) or 1 for _, data in graph.nodes(data=True)]
    sequential = sum(1 for _, data in graph.nodes(data=True) if data.get("sequential"))
    control_edges = sum(
        1 for _, _, data in graph.edges(data=True) if data.get("kind") == "control"
    )
    undirected = graph.to_undirected()

    # Control-role statistics: signals that *steer* other signals (mux selects
    # and branch guards).  A Trojan trigger wire is the extreme case — its only
    # use is a single control edge into the payload's target — so these
    # features give the graph modality a view of trigger/payload wiring.
    control_sources = set()
    control_only = []
    single_use_control = 0
    for node in graph.nodes:
        out_edges = list(graph.out_edges(node, data=True))
        control_out = [e for e in out_edges if e[2].get("kind") == "control"]
        if control_out:
            control_sources.add(node)
            if len(control_out) == len(out_edges):
                control_only.append(node)
                if len(out_edges) == 1:
                    single_use_control += 1

    features: Dict[str, float] = {
        "n_nodes": float(n_nodes),
        "n_edges": float(n_edges),
        "density": nx.density(graph) if n_nodes > 1 else 0.0,
        "avg_in_degree": float(np.mean(in_degrees)) if in_degrees else 0.0,
        "avg_out_degree": float(np.mean(out_degrees)) if out_degrees else 0.0,
        "max_in_degree": float(max(in_degrees)) if in_degrees else 0.0,
        "max_out_degree": float(max(out_degrees)) if out_degrees else 0.0,
        "std_in_degree": float(np.std(in_degrees)) if in_degrees else 0.0,
        "high_fanin_nodes": float(sum(1 for d in in_degrees if d >= 5)),
        "isolated_nodes": float(sum(1 for d in undirected.degree() if d[1] == 0)),
        "n_weakly_connected": float(nx.number_weakly_connected_components(graph))
        if n_nodes
        else 0.0,
        "n_strongly_connected": float(nx.number_strongly_connected_components(graph))
        if n_nodes
        else 0.0,
        "avg_clustering": float(nx.average_clustering(undirected)) if n_nodes > 1 else 0.0,
        "longest_path": _longest_path_estimate(graph),
        "n_self_loops": float(nx.number_of_selfloops(graph)),
        "n_sequential_nodes": float(sequential),
        "sequential_fraction": float(sequential) / max(n_nodes, 1),
        "control_edge_fraction": float(control_edges) / max(n_edges, 1),
        "n_control_edges": float(control_edges),
        "n_control_sources": float(len(control_sources)),
        "n_control_only_signals": float(len(control_only)),
        "n_single_use_control_signals": float(single_use_control),
        "control_source_fraction": float(len(control_sources)) / max(n_nodes, 1),
        "n_input_nodes": float(roles.count("input")),
        "n_output_nodes": float(roles.count("output")),
        "n_reg_nodes": float(roles.count("reg")),
        "n_wire_nodes": float(roles.count("wire")),
        "n_implicit_nodes": float(roles.count("implicit")),
        "n_instance_nodes": float(roles.count("instance")),
        "total_signal_width": float(sum(widths)),
        "max_signal_width": float(max(widths)) if widths else 0.0,
        "avg_signal_width": float(np.mean(widths)) if widths else 0.0,
    }
    for i, value in enumerate(_degree_histogram(in_degrees)):
        features[f"in_degree_hist_{i}"] = float(value)
    for i, value in enumerate(_degree_histogram(out_degrees)):
        features[f"out_degree_hist_{i}"] = float(value)
    for i, value in enumerate(_spectral_summary(undirected)):
        features[f"laplacian_eig_{i}"] = float(value)
    return features


def extract_graph_features(graph: nx.DiGraph) -> Dict[str, float]:
    """Structural feature dictionary for one data-flow graph.

    Vectorized implementation: degree statistics, clustering, component
    counts and the normalised-Laplacian spectrum are computed from one dense
    adjacency matrix (scipy ``csgraph`` for the component counts) instead of
    per-node networkx traversals.  Produces bit-identical values to
    :func:`_extract_graph_features_reference` — edge weights are integer
    counts, so every intermediate sum is exact in float64 and the remaining
    float operations replicate the reference's order.
    """
    n_nodes = graph.number_of_nodes()
    if n_nodes == 0:
        return _extract_graph_features_reference(graph)

    n_edges = graph.number_of_edges()
    # One pass over the edge list fills the dense weighted adjacency (node
    # order matches ``graph.nodes``, like ``nx.to_numpy_array``) and counts
    # control edges.  Edge weights are use counts (always >= 1), so the
    # weight matrix also encodes edge existence.
    index = {node: i for i, node in enumerate(graph.nodes)}
    weights = np.zeros((n_nodes, n_nodes))
    control = np.zeros((n_nodes, n_nodes), dtype=bool)
    for source, target, data in graph.edges(data=True):
        weights[index[source], index[target]] = data.get("weight", 1.0)
        if data.get("kind") == "control":
            control[index[source], index[target]] = True
    exist = weights > 0
    control_edges = int(control.sum())

    in_degrees = exist.sum(axis=0)
    out_degrees = exist.sum(axis=1)
    node_data = [data for _, data in graph.nodes(data=True)]
    roles = [data.get("role", "implicit") for data in node_data]
    widths = [data.get("width", 1) or 1 for data in node_data]
    sequential = sum(1 for data in node_data if data.get("sequential"))

    und_exist = exist | exist.T
    isolated = int((und_exist.sum(axis=1) == 0).sum())
    edge_sources, edge_targets = np.nonzero(exist)
    edge_list = list(zip(edge_sources.tolist(), edge_targets.tolist()))
    n_weak = _count_weak_components(n_nodes, edge_list)
    n_strong, scc_labels = _strongly_connected_components(n_nodes, edge_list)

    # Average clustering, replicating networkx's per-node arithmetic: the
    # triangle counts and degrees are integers, so only the final divisions
    # and the (node-ordered) sum touch floats.
    simple = und_exist.copy()
    np.fill_diagonal(simple, False)
    adjacency = simple.astype(np.int64)
    triangle_paths = (adjacency @ adjacency * adjacency).sum(axis=1)
    simple_degrees = adjacency.sum(axis=1)
    coefficients = np.zeros(n_nodes)
    positive = triangle_paths > 0
    coefficients[positive] = triangle_paths[positive] / (
        simple_degrees[positive] * (simple_degrees[positive] - 1.0)
    )
    avg_clustering = (
        float(sum(coefficients.tolist()) / n_nodes) if n_nodes > 1 else 0.0
    )

    # Control-role statistics (see the reference implementation for intent),
    # as comparisons on the per-node out-edge and control-out-edge counts.
    control_out_counts = control.sum(axis=1)
    has_control_out = control_out_counts > 0
    n_control_sources = int(has_control_out.sum())
    control_only_mask = has_control_out & (control_out_counts == out_degrees)
    n_control_only = int(control_only_mask.sum())
    single_use_control = int((control_only_mask & (out_degrees == 1)).sum())

    features: Dict[str, float] = {
        "n_nodes": float(n_nodes),
        "n_edges": float(n_edges),
        "density": nx.density(graph) if n_nodes > 1 else 0.0,
        "avg_in_degree": float(np.mean(in_degrees)),
        "avg_out_degree": float(np.mean(out_degrees)),
        "max_in_degree": float(in_degrees.max()),
        "max_out_degree": float(out_degrees.max()),
        "std_in_degree": float(np.std(in_degrees)),
        "high_fanin_nodes": float((in_degrees >= 5).sum()),
        "isolated_nodes": float(isolated),
        "n_weakly_connected": float(n_weak),
        "n_strongly_connected": float(n_strong),
        "avg_clustering": avg_clustering,
        "longest_path": _longest_path_from_sccs(
            edge_sources, edge_targets, scc_labels, n_strong
        ),
        "n_self_loops": float(np.diagonal(exist).sum()),
        "n_sequential_nodes": float(sequential),
        "sequential_fraction": float(sequential) / max(n_nodes, 1),
        "control_edge_fraction": float(control_edges) / max(n_edges, 1),
        "n_control_edges": float(control_edges),
        "n_control_sources": float(n_control_sources),
        "n_control_only_signals": float(n_control_only),
        "n_single_use_control_signals": float(single_use_control),
        "control_source_fraction": float(n_control_sources) / max(n_nodes, 1),
        "n_input_nodes": float(roles.count("input")),
        "n_output_nodes": float(roles.count("output")),
        "n_reg_nodes": float(roles.count("reg")),
        "n_wire_nodes": float(roles.count("wire")),
        "n_implicit_nodes": float(roles.count("implicit")),
        "n_instance_nodes": float(roles.count("instance")),
        "total_signal_width": float(sum(widths)),
        "max_signal_width": float(max(widths)) if widths else 0.0,
        "avg_signal_width": float(np.mean(widths)) if widths else 0.0,
    }
    for i, value in enumerate(_degree_histogram([int(d) for d in in_degrees])):
        features[f"in_degree_hist_{i}"] = float(value)
    for i, value in enumerate(_degree_histogram([int(d) for d in out_degrees])):
        features[f"out_degree_hist_{i}"] = float(value)
    for i, value in enumerate(
        _spectral_summary_dense(weights, exist, n_nodes)
    ):
        features[f"laplacian_eig_{i}"] = float(value)
    return features


def _count_weak_components(n_nodes: int, edges: List[tuple]) -> int:
    """Number of weakly connected components, via union-find.

    The data-flow graphs are tiny (tens of nodes), where a plain union-find
    beats the scipy ``csgraph`` call's validation overhead several-fold.
    """
    parent = list(range(n_nodes))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    count = n_nodes
    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            count -= 1
    return count


def _strongly_connected_components(
    n_nodes: int, edges: List[tuple]
) -> "tuple[int, np.ndarray]":
    """``(count, labels)`` of strongly connected components (iterative Tarjan)."""
    successors: List[List[int]] = [[] for _ in range(n_nodes)]
    for u, v in edges:
        successors[u].append(v)
    UNVISITED = -1
    order = [UNVISITED] * n_nodes
    low = [0] * n_nodes
    on_stack = [False] * n_nodes
    scc_stack: List[int] = []
    labels = np.empty(n_nodes, dtype=np.int64)
    counter = 0
    n_scc = 0
    for root in range(n_nodes):
        if order[root] != UNVISITED:
            continue
        # Explicit DFS stack of (node, iterator index into successors).
        work = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                order[node] = low[node] = counter
                counter += 1
                scc_stack.append(node)
                on_stack[node] = True
            advanced = False
            children = successors[node]
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if order[child] == UNVISITED:
                    work.append((node, child_index))
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack[child] and order[child] < low[node]:
                    low[node] = order[child]
            if advanced:
                continue
            if low[node] == order[node]:
                while True:
                    member = scc_stack.pop()
                    on_stack[member] = False
                    labels[member] = n_scc
                    if member == node:
                        break
                n_scc += 1
            if work:
                parent_node = work[-1][0]
                if low[node] < low[parent_node]:
                    low[parent_node] = low[node]
    return n_scc, labels


def _longest_path_from_sccs(
    sources: np.ndarray, targets: np.ndarray, scc_labels: np.ndarray, n_scc: int
) -> float:
    """Longest path (edge count) in the SCC condensation — a DAG.

    Integer dynamic program over the condensation's edges, equivalent to
    ``nx.dag_longest_path_length(nx.condensation(graph))`` in
    :func:`_longest_path_estimate` but reusing the already-computed SCC
    labels and edge arrays.
    """
    if n_scc == 0:
        return 0.0
    src_comp = scc_labels[sources]
    dst_comp = scc_labels[targets]
    cross = src_comp != dst_comp
    edges = set(zip(src_comp[cross].tolist(), dst_comp[cross].tolist()))
    if not edges:
        return 0.0
    # Kahn topological order over the (small) condensation, then a longest-
    # path relaxation per edge in that order.
    successors: Dict[int, List[int]] = {}
    indegree = np.zeros(n_scc, dtype=np.int64)
    for u, v in edges:
        successors.setdefault(int(u), []).append(int(v))
        indegree[v] += 1
    ready = [int(c) for c in range(n_scc) if indegree[c] == 0]
    longest = np.zeros(n_scc, dtype=np.int64)
    while ready:
        u = ready.pop()
        base = longest[u] + 1
        for v in successors.get(u, ()):
            if base > longest[v]:
                longest[v] = base
            indegree[v] -= 1
            if indegree[v] == 0:
                ready.append(v)
    return float(longest.max())


def _spectral_summary_dense(
    weights: np.ndarray, exist: np.ndarray, n_nodes: int
) -> np.ndarray:
    """Dense replication of ``_spectral_summary(graph.to_undirected())``.

    Rebuilds the undirected weighted adjacency exactly as
    ``DiGraph.to_undirected`` merges reciprocal edges (the edge whose source
    comes later in node order wins), then forms the normalised Laplacian
    with the same operation order as ``nx.normalized_laplacian_matrix`` so
    the eigenvalues match the reference bit for bit.
    """
    if n_nodes < 2:
        return np.zeros(_SPECTRAL_COMPONENTS)
    merged = np.where(exist.T, weights.T, weights)
    upper = np.triu(merged, 1)
    undirected = upper + upper.T
    np.fill_diagonal(undirected, np.diagonal(weights))
    diagonal = undirected.sum(axis=1)
    with np.errstate(divide="ignore"):
        inv_sqrt = 1.0 / np.sqrt(diagonal)
    inv_sqrt[np.isinf(inv_sqrt)] = 0.0
    laplacian = np.diag(diagonal) - undirected
    normalized = (laplacian * inv_sqrt[None, :]) * inv_sqrt[:, None]
    eigenvalues = np.sort(np.linalg.eigvalsh(normalized))[::-1]
    summary = np.zeros(_SPECTRAL_COMPONENTS)
    count = min(_SPECTRAL_COMPONENTS, eigenvalues.shape[0])
    summary[:count] = eigenvalues[:count]
    return summary


#: Canonical feature ordering for the graph modality, derived from a probe
#: design the same way as the tabular ordering.
GRAPH_FEATURE_NAMES: List[str] = sorted(
    extract_graph_features(
        build_dataflow_graph(
            "module __probe (clk, a, y); input clk; input [3:0] a; output y;\n"
            "  assign y = a == 4'd3;\nendmodule\n"
        )
    )
)


def graph_feature_vector(design: Union[str, ast.Module, nx.DiGraph]) -> np.ndarray:
    """Graph statistics as a fixed-order numpy vector for one design."""
    graph = design if isinstance(design, nx.DiGraph) else build_dataflow_graph(design)
    features = extract_graph_features(graph)
    return np.asarray([features[name] for name in GRAPH_FEATURE_NAMES], dtype=np.float64)


def graph_feature_matrix(designs: List[Union[str, ast.Module, nx.DiGraph]]) -> np.ndarray:
    """Stack graph feature vectors into an ``(N, G)`` matrix."""
    if not designs:
        return np.empty((0, len(GRAPH_FEATURE_NAMES)))
    return np.vstack([graph_feature_vector(design) for design in designs])
