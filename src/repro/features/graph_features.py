"""Graph modality: fixed-length feature embedding of the data-flow graph.

The CNN classifiers need a fixed-size numeric representation per design.
Two complementary representations are produced from the data-flow graph:

* :func:`graph_feature_vector` — a vector of structural graph statistics
  (size, degree profile, connectivity, spectral summary, role counts),
  loosely following the statistics graph-kernel methods aggregate;
* :mod:`repro.features.image` — a 2-D "adjacency image" fed to the Conv2d
  classifier (see that module).

Trojan logic perturbs these statistics: triggers add high-fan-in comparator
nodes and weakly connected counter chains; payload muxes add edges from the
trigger wire into otherwise stable output cones.
"""

from __future__ import annotations

from typing import Dict, List, Union

import networkx as nx
import numpy as np

from ..hdl import ast_nodes as ast
from .graph_builder import build_dataflow_graph

#: Number of histogram bins used for the degree profile.
_DEGREE_BINS = 6
#: Number of leading Laplacian eigenvalues included in the embedding.
_SPECTRAL_COMPONENTS = 6


def _degree_histogram(degrees: List[int]) -> np.ndarray:
    """Histogram of degrees over fixed bins [0,1,2,3,4-7,8+]."""
    bins = np.zeros(_DEGREE_BINS)
    for degree in degrees:
        if degree <= 3:
            bins[degree] += 1
        elif degree <= 7:
            bins[4] += 1
        else:
            bins[5] += 1
    total = max(len(degrees), 1)
    return bins / total


def _spectral_summary(graph: nx.DiGraph) -> np.ndarray:
    """Leading eigenvalues of the normalised Laplacian of the undirected view."""
    if graph.number_of_nodes() < 2:
        return np.zeros(_SPECTRAL_COMPONENTS)
    undirected = graph.to_undirected()
    laplacian = nx.normalized_laplacian_matrix(undirected).toarray()
    eigenvalues = np.sort(np.linalg.eigvalsh(laplacian))[::-1]
    summary = np.zeros(_SPECTRAL_COMPONENTS)
    count = min(_SPECTRAL_COMPONENTS, eigenvalues.shape[0])
    summary[:count] = eigenvalues[:count]
    return summary


def _longest_path_estimate(graph: nx.DiGraph) -> float:
    """Longest path in the acyclic condensation (logic-depth proxy)."""
    if graph.number_of_nodes() == 0:
        return 0.0
    condensation = nx.condensation(graph)
    if condensation.number_of_nodes() == 0:
        return 0.0
    return float(nx.dag_longest_path_length(condensation))


def extract_graph_features(graph: nx.DiGraph) -> Dict[str, float]:
    """Structural feature dictionary for one data-flow graph."""
    n_nodes = graph.number_of_nodes()
    n_edges = graph.number_of_edges()
    in_degrees = [d for _, d in graph.in_degree()]
    out_degrees = [d for _, d in graph.out_degree()]
    roles = [data.get("role", "implicit") for _, data in graph.nodes(data=True)]
    widths = [data.get("width", 1) or 1 for _, data in graph.nodes(data=True)]
    sequential = sum(1 for _, data in graph.nodes(data=True) if data.get("sequential"))
    control_edges = sum(
        1 for _, _, data in graph.edges(data=True) if data.get("kind") == "control"
    )
    undirected = graph.to_undirected()

    # Control-role statistics: signals that *steer* other signals (mux selects
    # and branch guards).  A Trojan trigger wire is the extreme case — its only
    # use is a single control edge into the payload's target — so these
    # features give the graph modality a view of trigger/payload wiring.
    control_sources = set()
    control_only = []
    single_use_control = 0
    for node in graph.nodes:
        out_edges = list(graph.out_edges(node, data=True))
        control_out = [e for e in out_edges if e[2].get("kind") == "control"]
        if control_out:
            control_sources.add(node)
            if len(control_out) == len(out_edges):
                control_only.append(node)
                if len(out_edges) == 1:
                    single_use_control += 1

    features: Dict[str, float] = {
        "n_nodes": float(n_nodes),
        "n_edges": float(n_edges),
        "density": nx.density(graph) if n_nodes > 1 else 0.0,
        "avg_in_degree": float(np.mean(in_degrees)) if in_degrees else 0.0,
        "avg_out_degree": float(np.mean(out_degrees)) if out_degrees else 0.0,
        "max_in_degree": float(max(in_degrees)) if in_degrees else 0.0,
        "max_out_degree": float(max(out_degrees)) if out_degrees else 0.0,
        "std_in_degree": float(np.std(in_degrees)) if in_degrees else 0.0,
        "high_fanin_nodes": float(sum(1 for d in in_degrees if d >= 5)),
        "isolated_nodes": float(sum(1 for d in undirected.degree() if d[1] == 0)),
        "n_weakly_connected": float(nx.number_weakly_connected_components(graph))
        if n_nodes
        else 0.0,
        "n_strongly_connected": float(nx.number_strongly_connected_components(graph))
        if n_nodes
        else 0.0,
        "avg_clustering": float(nx.average_clustering(undirected)) if n_nodes > 1 else 0.0,
        "longest_path": _longest_path_estimate(graph),
        "n_self_loops": float(nx.number_of_selfloops(graph)),
        "n_sequential_nodes": float(sequential),
        "sequential_fraction": float(sequential) / max(n_nodes, 1),
        "control_edge_fraction": float(control_edges) / max(n_edges, 1),
        "n_control_edges": float(control_edges),
        "n_control_sources": float(len(control_sources)),
        "n_control_only_signals": float(len(control_only)),
        "n_single_use_control_signals": float(single_use_control),
        "control_source_fraction": float(len(control_sources)) / max(n_nodes, 1),
        "n_input_nodes": float(roles.count("input")),
        "n_output_nodes": float(roles.count("output")),
        "n_reg_nodes": float(roles.count("reg")),
        "n_wire_nodes": float(roles.count("wire")),
        "n_implicit_nodes": float(roles.count("implicit")),
        "n_instance_nodes": float(roles.count("instance")),
        "total_signal_width": float(sum(widths)),
        "max_signal_width": float(max(widths)) if widths else 0.0,
        "avg_signal_width": float(np.mean(widths)) if widths else 0.0,
    }
    for i, value in enumerate(_degree_histogram(in_degrees)):
        features[f"in_degree_hist_{i}"] = float(value)
    for i, value in enumerate(_degree_histogram(out_degrees)):
        features[f"out_degree_hist_{i}"] = float(value)
    for i, value in enumerate(_spectral_summary(graph)):
        features[f"laplacian_eig_{i}"] = float(value)
    return features


#: Canonical feature ordering for the graph modality, derived from a probe
#: design the same way as the tabular ordering.
GRAPH_FEATURE_NAMES: List[str] = sorted(
    extract_graph_features(
        build_dataflow_graph(
            "module __probe (clk, a, y); input clk; input [3:0] a; output y;\n"
            "  assign y = a == 4'd3;\nendmodule\n"
        )
    )
)


def graph_feature_vector(design: Union[str, ast.Module, nx.DiGraph]) -> np.ndarray:
    """Graph statistics as a fixed-order numpy vector for one design."""
    graph = design if isinstance(design, nx.DiGraph) else build_dataflow_graph(design)
    features = extract_graph_features(graph)
    return np.asarray([features[name] for name in GRAPH_FEATURE_NAMES], dtype=np.float64)


def graph_feature_matrix(designs: List[Union[str, ast.Module, nx.DiGraph]]) -> np.ndarray:
    """Stack graph feature vectors into an ``(N, G)`` matrix."""
    if not designs:
        return np.empty((0, len(GRAPH_FEATURE_NAMES)))
    return np.vstack([graph_feature_vector(design) for design in designs])
