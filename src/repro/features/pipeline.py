"""Modality-extraction pipeline: from RTL designs to the two NOODLE modalities.

The :class:`MultimodalFeatures` container holds, for a population of designs:

* ``tabular``       -- the (N, F_t) code-branching feature matrix;
* ``graph``         -- the (N, F_g) graph-statistics feature matrix;
* ``graph_images``  -- the (N, 1, K, K) adjacency images for the Conv2d path;
* ``labels``        -- ground-truth labels;
* ``names``         -- design names (for reporting).

Missing modalities (the practical concern the paper addresses with GAN
imputation) are represented as rows of ``NaN``; :meth:`with_missing_modality`
simulates them and :mod:`repro.gan.imputation` repairs them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..hdl.parser import parse_module
from ..trojan.dataset import TrojanDataset
from .graph_builder import build_dataflow_graph
from .graph_features import GRAPH_FEATURE_NAMES, graph_feature_vector
from .image import DEFAULT_IMAGE_SIZE, adjacency_image
from .tabular import TABULAR_FEATURE_NAMES, tabular_feature_vector

#: Modality identifiers used across the fusion code.
MODALITY_TABULAR = "tabular"
MODALITY_GRAPH = "graph"
MODALITIES = (MODALITY_GRAPH, MODALITY_TABULAR)

#: Version of the feature-extraction *code*.  Bump this whenever a change
#: to the extractors (:mod:`repro.features.tabular`,
#: :mod:`repro.features.graph_features`, :mod:`repro.features.image`, the
#: HDL front-end they parse with, or this pipeline) can alter the numbers
#: produced for unchanged source text.  The bump changes
#: :func:`feature_schema_fingerprint`, which moves the model-independent
#: feature cache (:class:`repro.engine.feature_store.FeatureStore`) to a
#: fresh namespace, so stale rows are never served.
FEATURE_EXTRACTION_VERSION = 1


def feature_schema_fingerprint(image_size: int = DEFAULT_IMAGE_SIZE) -> str:
    """SHA-256 fingerprint of the feature schema produced by this pipeline.

    Covers everything that determines the *meaning and shape* of an
    extracted feature row: the extraction-code version, both ordered
    feature-name lists and the adjacency-image size.  Two processes agree
    on this fingerprint exactly when their extracted rows are
    interchangeable.
    """
    payload = json.dumps(
        {
            "extraction_version": FEATURE_EXTRACTION_VERSION,
            "tabular": list(TABULAR_FEATURE_NAMES),
            "graph": list(GRAPH_FEATURE_NAMES),
            "image_size": int(image_size),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class MultimodalFeatures:
    """Extracted modalities for a population of designs."""

    tabular: np.ndarray
    graph: np.ndarray
    graph_images: np.ndarray
    labels: np.ndarray
    names: List[str] = field(default_factory=list)
    tabular_feature_names: List[str] = field(
        default_factory=lambda: list(TABULAR_FEATURE_NAMES)
    )
    graph_feature_names: List[str] = field(
        default_factory=lambda: list(GRAPH_FEATURE_NAMES)
    )

    def __post_init__(self) -> None:
        n = len(self.labels)
        if not (
            self.tabular.shape[0] == self.graph.shape[0] == self.graph_images.shape[0] == n
        ):
            raise ValueError("all modality arrays must have the same number of samples")

    def __len__(self) -> int:
        return len(self.labels)

    # -- views ---------------------------------------------------------------
    def modality(self, name: str) -> np.ndarray:
        """The flat feature matrix for one modality by name."""
        if name == MODALITY_TABULAR:
            return self.tabular
        if name == MODALITY_GRAPH:
            return self.graph
        raise ValueError(f"unknown modality {name!r}; known: {MODALITIES}")

    def subset(self, indices: Sequence[int]) -> "MultimodalFeatures":
        indices = np.asarray(list(indices), dtype=int)
        return replace(
            self,
            tabular=self.tabular[indices],
            graph=self.graph[indices],
            graph_images=self.graph_images[indices],
            labels=self.labels[indices],
            names=[self.names[i] for i in indices] if self.names else [],
        )

    def missing_mask(self, name: str) -> np.ndarray:
        """Boolean mask of samples whose given modality is missing (NaN)."""
        return np.isnan(self.modality(name)).any(axis=1)

    # -- dataset manipulation ---------------------------------------------
    def with_missing_modality(
        self,
        name: str,
        fraction: float,
        rng: Optional[np.random.Generator] = None,
    ) -> "MultimodalFeatures":
        """Return a copy where ``fraction`` of samples lose modality ``name``.

        This simulates the practical data-collection gaps the paper
        motivates GAN imputation with.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        rng = rng or np.random.default_rng()
        n = len(self)
        n_missing = int(round(fraction * n))
        chosen = rng.choice(n, size=n_missing, replace=False) if n_missing else []
        tabular = self.tabular.copy()
        graph = self.graph.copy()
        if name == MODALITY_TABULAR:
            tabular[list(chosen), :] = np.nan
        elif name == MODALITY_GRAPH:
            graph[list(chosen), :] = np.nan
        else:
            raise ValueError(f"unknown modality {name!r}")
        return replace(self, tabular=tabular, graph=graph)

    def stratified_split(
        self, test_fraction: float = 0.25, rng: Optional[np.random.Generator] = None
    ) -> Tuple["MultimodalFeatures", "MultimodalFeatures"]:
        """Split into train/test preserving class balance."""
        rng = rng or np.random.default_rng()
        train_idx: List[int] = []
        test_idx: List[int] = []
        for label in np.unique(self.labels):
            members = np.flatnonzero(self.labels == label)
            rng.shuffle(members)
            n_test = max(1, int(round(len(members) * test_fraction)))
            if n_test >= len(members):
                n_test = max(len(members) - 1, 0)
            test_idx.extend(int(i) for i in members[:n_test])
            train_idx.extend(int(i) for i in members[n_test:])
        return self.subset(sorted(train_idx)), self.subset(sorted(test_idx))


def extract_design_modalities(
    source: str, image_size: int = DEFAULT_IMAGE_SIZE
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract ``(tabular, graph, graph_image)`` for a single design."""
    module = parse_module(source)
    graph = build_dataflow_graph(module)
    return (
        tabular_feature_vector(module),
        graph_feature_vector(graph),
        adjacency_image(graph, size=image_size),
    )


def extract_modalities(
    dataset: TrojanDataset, image_size: int = DEFAULT_IMAGE_SIZE
) -> MultimodalFeatures:
    """Extract both modalities for every design in ``dataset``."""
    tabular_rows: List[np.ndarray] = []
    graph_rows: List[np.ndarray] = []
    images: List[np.ndarray] = []
    for benchmark in dataset:
        tab, gra, img = extract_design_modalities(benchmark.source, image_size=image_size)
        tabular_rows.append(tab)
        graph_rows.append(gra)
        images.append(img)
    n = len(dataset)
    return MultimodalFeatures(
        tabular=np.vstack(tabular_rows) if n else np.empty((0, len(TABULAR_FEATURE_NAMES))),
        graph=np.vstack(graph_rows) if n else np.empty((0, len(GRAPH_FEATURE_NAMES))),
        graph_images=np.stack(images, axis=0)
        if n
        else np.empty((0, 1, image_size, image_size)),
        labels=dataset.labels,
        names=dataset.names,
    )
