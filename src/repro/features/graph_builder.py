"""Graph modality: data-flow graph construction from the RTL AST.

Following the hw2vec approach referenced by the paper, each design is
converted into a signal-level data-flow graph: nodes are declared signals
(ports, wires, regs), and a directed edge ``a -> b`` means the value of ``a``
flows into the computation of ``b`` — either directly through an assignment
right-hand side or through the control condition (if/case guard) under which
``b`` is assigned.  Node attributes record signal role and width so the
feature stage can build role-aware statistics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import networkx as nx

from ..hdl import ast_nodes as ast
from ..hdl.parser import parse_module
from ..hdl.visitor import walk


def _base_identifier(node: ast.Node) -> Optional[str]:
    """Name of the signal a (possibly selected) assignment target refers to."""
    base = node
    while isinstance(base, (ast.BitSelect, ast.PartSelect)):
        base = base.base
    if isinstance(base, ast.Identifier):
        return base.name
    return None


def _identifiers_in(node: ast.Node) -> List[str]:
    # Inlined pre-order walk (hot path): same visit order as
    # ``visitor.walk`` without the generator machinery.
    names: List[str] = []
    stack = [node]
    while stack:
        current = stack.pop()
        if type(current) is ast.Identifier:
            names.append(current.name)
        else:
            stack.extend(reversed(current.children()))
    return names


class DataFlowGraphBuilder:
    """Builds the signal data-flow graph of a single module."""

    def __init__(self, module: ast.Module) -> None:
        self.module = module
        self.graph = nx.DiGraph(name=module.name)

    # -- nodes ------------------------------------------------------------
    def _add_signal_nodes(self) -> None:
        for decl in self.module.port_declarations():
            role = decl.direction
            for name in decl.names:
                self.graph.add_node(name, role=role, width=decl.width(), kind="port")
        for decl in self.module.net_declarations():
            role = "reg" if decl.net_type == "reg" else "wire"
            for name in decl.names:
                if name in self.graph:
                    # output reg declared both as port and as reg: keep the
                    # port role but remember the storage kind.
                    self.graph.nodes[name]["storage"] = decl.net_type
                    continue
                self.graph.add_node(name, role=role, width=decl.width(), kind="net")

    def _ensure_node(self, name: str) -> None:
        if name not in self.graph:
            self.graph.add_node(name, role="implicit", width=1, kind="implicit")

    # -- edges ------------------------------------------------------------
    def _add_edge(self, source: str, target: str, kind: str) -> None:
        self._ensure_node(source)
        if self.graph.has_edge(source, target):
            self.graph[source][target]["weight"] += 1
            # A control use upgrades an existing data edge so the security
            # relevant role is never lost.
            if kind == "control":
                self.graph[source][target]["kind"] = "control"
        else:
            self.graph.add_edge(source, target, kind=kind, weight=1)

    def _add_expression_edges(self, target: str, expression: ast.Node, kind: str) -> None:
        """Add edges for an expression, treating ternary selects as control.

        Multiplexer select signals (the condition of ``cond ? a : b``) steer
        which value reaches ``target`` rather than contributing bits to it —
        exactly the role a Trojan trigger plays on a payload mux — so they
        are recorded as control edges regardless of the surrounding context.
        """
        if isinstance(expression, ast.Ternary):
            for source in _identifiers_in(expression.condition):
                self._add_edge(source, target, "control")
            self._add_expression_edges(target, expression.if_true, kind)
            self._add_expression_edges(target, expression.if_false, kind)
            return
        children = expression.children()
        if isinstance(expression, ast.Identifier):
            self._add_edge(expression.name, target, kind)
            return
        if not children:
            return
        for child in children:
            self._add_expression_edges(target, child, kind)

    def _add_data_edges(self, target: Optional[str], expression: ast.Node, kind: str) -> None:
        if target is None:
            return
        self._ensure_node(target)
        self._add_expression_edges(target, expression, kind)

    def _walk_statement(self, statement: ast.Node, conditions: List[ast.Node]) -> None:
        if isinstance(statement, ast.Block):
            for inner in statement.statements:
                self._walk_statement(inner, conditions)
        elif isinstance(statement, ast.If):
            nested = conditions + [statement.condition]
            self._walk_statement(statement.then_branch, nested)
            if statement.else_branch is not None:
                self._walk_statement(statement.else_branch, nested)
        elif isinstance(statement, ast.Case):
            nested = conditions + [statement.subject]
            for item in statement.items:
                self._walk_statement(item.body, nested)
        elif isinstance(statement, ast.ForLoop):
            self._walk_statement(statement.body, conditions + [statement.condition])
        elif isinstance(statement, (ast.BlockingAssign, ast.NonBlockingAssign)):
            target = _base_identifier(statement.target)
            self._add_data_edges(target, statement.value, kind="data")
            for condition in conditions:
                self._add_data_edges(target, condition, kind="control")
        # System tasks and other statements carry no data flow.

    def build(self) -> nx.DiGraph:
        self._add_signal_nodes()
        for item in self.module.items:
            if isinstance(item, ast.ContinuousAssign):
                target = _base_identifier(item.target)
                self._add_data_edges(target, item.value, kind="data")
            elif isinstance(item, ast.Always):
                clock_conditions: List[ast.Node] = []
                # Edge-triggered sensitivity signals act as control sources.
                for sens in item.sensitivity:
                    if sens.edge is not None:
                        clock_conditions.append(sens.signal)
                self._walk_statement(item.body, clock_conditions)
            elif isinstance(item, ast.Initial):
                self._walk_statement(item.body, [])
            elif isinstance(item, ast.Instantiation):
                self._add_instantiation_edges(item)
        self._annotate_sequential_nodes()
        return self.graph

    def _add_instantiation_edges(self, inst: ast.Instantiation) -> None:
        """Connect instance connections through a pseudo-node for the instance."""
        instance_node = f"{inst.module_name}.{inst.instance_name}"
        self.graph.add_node(instance_node, role="instance", width=0, kind="instance")
        for connection in inst.connections:
            if connection.expr is None:
                continue
            for signal in _identifiers_in(connection.expr):
                self._ensure_node(signal)
                # Direction is unknown without the child module: connect both ways.
                self.graph.add_edge(signal, instance_node, kind="port", weight=1)
                self.graph.add_edge(instance_node, signal, kind="port", weight=1)

    def _annotate_sequential_nodes(self) -> None:
        """Mark signals assigned in edge-triggered always blocks as sequential."""
        for always in self.module.always_blocks():
            if not always.is_sequential:
                continue
            for node in walk(always.body):
                if isinstance(node, ast.NonBlockingAssign):
                    target = _base_identifier(node.target)
                    if target is not None and target in self.graph:
                        self.graph.nodes[target]["sequential"] = True


def build_dataflow_graph(design: Union[str, ast.Module]) -> nx.DiGraph:
    """Build the signal data-flow graph for one design (source or parsed)."""
    module = parse_module(design) if isinstance(design, str) else design
    return DataFlowGraphBuilder(module).build()


def graph_summary(graph: nx.DiGraph) -> Dict[str, float]:
    """Tiny structural summary used for logging and sanity checks."""
    return {
        "n_nodes": float(graph.number_of_nodes()),
        "n_edges": float(graph.number_of_edges()),
        "n_sequential": float(
            sum(1 for _, data in graph.nodes(data=True) if data.get("sequential"))
        ),
        "n_inputs": float(
            sum(1 for _, data in graph.nodes(data=True) if data.get("role") == "input")
        ),
        "n_outputs": float(
            sum(1 for _, data in graph.nodes(data=True) if data.get("role") == "output")
        ),
    }
