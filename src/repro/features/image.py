"""Adjacency-image representation of the data-flow graph.

The per-modality classifiers in the paper are CNNs.  For the graph modality
we give the Conv2d network something genuinely convolutional to work on: a
fixed-size ``(1, K, K)`` "image" derived from the graph's adjacency
structure.  Nodes are ordered canonically (by role, then degree, then name)
and the weighted adjacency matrix is pooled down (or zero-padded up) to a
``K x K`` grid, so local connectivity patterns — e.g. the dense comparator
fan-in of a Trojan trigger — appear as localised intensity patterns.
"""

from __future__ import annotations

from typing import List, Union

import networkx as nx
import numpy as np

from ..hdl import ast_nodes as ast
from .graph_builder import build_dataflow_graph

#: Default image side length used throughout the experiments.
DEFAULT_IMAGE_SIZE = 16

_ROLE_ORDER = {
    "input": 0,
    "output": 1,
    "inout": 2,
    "reg": 3,
    "wire": 4,
    "instance": 5,
    "implicit": 6,
}


def _canonical_node_order(graph: nx.DiGraph) -> List[str]:
    """Deterministic node ordering: role, then total degree (desc), then name."""
    in_degrees = dict(graph.in_degree())
    out_degrees = dict(graph.out_degree())

    def sort_key(name: str):
        data = graph.nodes[name]
        role = _ROLE_ORDER.get(data.get("role", "implicit"), len(_ROLE_ORDER))
        degree = in_degrees[name] + out_degrees[name]
        return (role, -degree, str(name))

    return sorted(graph.nodes, key=sort_key)


def _weighted_adjacency(graph: nx.DiGraph, order: List[str]) -> np.ndarray:
    index = {name: i for i, name in enumerate(order)}
    matrix = np.zeros((len(order), len(order)))
    for source, target, data in graph.edges(data=True):
        matrix[index[source], index[target]] = float(data.get("weight", 1))
    return matrix


def _pool_to_size(matrix: np.ndarray, size: int) -> np.ndarray:
    """Sum-pool (or zero-pad) a square matrix to ``size x size``."""
    n = matrix.shape[0]
    if n == 0:
        return np.zeros((size, size))
    if n <= size:
        padded = np.zeros((size, size))
        padded[:n, :n] = matrix
        return padded
    # Sum-pool blocks of (roughly) equal size.  ``reduceat`` sums each
    # contiguous block per axis in one vectorized pass (block edges are
    # strictly increasing because n > size here).
    edges = np.linspace(0, n, size + 1).astype(int)
    return np.add.reduceat(np.add.reduceat(matrix, edges[:-1], axis=0), edges[:-1], axis=1)


def adjacency_image(
    design: Union[str, ast.Module, nx.DiGraph], size: int = DEFAULT_IMAGE_SIZE
) -> np.ndarray:
    """The ``(1, size, size)`` adjacency image for one design.

    Values are log-scaled and normalised to [0, 1] so the CNN sees a stable
    input range regardless of design size.
    """
    if size <= 0:
        raise ValueError("image size must be positive")
    graph = design if isinstance(design, nx.DiGraph) else build_dataflow_graph(design)
    order = _canonical_node_order(graph)
    matrix = _weighted_adjacency(graph, order)
    pooled = _pool_to_size(matrix, size)
    scaled = np.log1p(pooled)
    peak = scaled.max()
    if peak > 0:
        scaled = scaled / peak
    return scaled[np.newaxis, :, :]


def adjacency_image_batch(
    designs: List[Union[str, ast.Module, nx.DiGraph]], size: int = DEFAULT_IMAGE_SIZE
) -> np.ndarray:
    """Stack adjacency images into an ``(N, 1, size, size)`` batch."""
    if not designs:
        return np.empty((0, 1, size, size))
    return np.stack([adjacency_image(design, size) for design in designs], axis=0)
