"""Tabular (Euclidean) modality: code-branching features from the RTL AST.

This mirrors the Trust-Hub "code branching" feature dataset the paper uses
for its tabular modality: per-design scalar features summarising how the RTL
source branches, assigns and compares.  Trojan triggers show up here as
unusual comparison-against-wide-constant patterns, extra rare branches and
additional counters, without any feature explicitly encoding "is a Trojan".

The extractor is deterministic and purely structural (no simulation), so it
works on any design the :mod:`repro.hdl` front-end can parse.
"""

from __future__ import annotations

from typing import Dict, List, Union

import numpy as np

from ..hdl import ast_nodes as ast
from ..hdl.parser import parse_module

_COMPARISON_OPS = {"==", "!=", "===", "!==", "<", "<=", ">", ">="}
_LOGICAL_OPS = {"&&", "||"}
_XOR_OPS = {"^", "~^", "^~"}


def _branch_nesting_depth(node: ast.Node, depth: int = 0) -> int:
    """Maximum nesting depth counting only branching constructs (if/case)."""
    here = depth + 1 if isinstance(node, (ast.If, ast.Case)) else depth
    best = here
    for child in node.children():
        best = max(best, _branch_nesting_depth(child, here))
    return best


def _scan_ast(module: ast.Module):
    """One pre-order walk computing everything the extractor needs.

    Returns ``(buckets, node_count, max_depth, branch_nesting_depth)``.
    Bucketing by concrete type is equivalent to per-type ``collect`` calls
    (the AST hierarchy is flat), and both depth statistics fold into the
    same traversal, so the whole module is visited exactly once.
    """
    buckets: Dict[type, List[ast.Node]] = {}
    count = 0
    deepest = 0
    branch_deepest = 0
    branching = (ast.If, ast.Case)
    # Stack entries: (node, depth-from-root, enclosing branch nesting).
    stack: List[tuple] = [(module, 0, 0)]
    while stack:
        node, depth, branch_depth = stack.pop()
        count += 1
        buckets.setdefault(type(node), []).append(node)
        if depth > deepest:
            deepest = depth
        if isinstance(node, branching):
            branch_depth += 1
            if branch_depth > branch_deepest:
                branch_deepest = branch_depth
        child_depth = depth + 1
        stack.extend(
            (child, child_depth, branch_depth) for child in reversed(node.children())
        )
    return buckets, count, deepest + 1, branch_deepest


def _is_constant_comparison(node: ast.BinaryOp) -> bool:
    return node.op in ("==", "!=") and (
        isinstance(node.left, ast.Number) or isinstance(node.right, ast.Number)
    )


def _constant_bitwidth(node: ast.BinaryOp) -> int:
    for side in (node.left, node.right):
        if isinstance(side, ast.Number):
            if side.width:
                return side.width
            if side.value:
                return max(1, int(side.value).bit_length())
    return 0


def _is_counter_increment(node: ast.Node) -> bool:
    """Detect ``x <= x + c`` / ``x = x + c`` self-increment patterns."""
    if not isinstance(node, (ast.NonBlockingAssign, ast.BlockingAssign)):
        return False
    target = node.target
    value = node.value
    if not isinstance(target, ast.Identifier) or not isinstance(value, ast.BinaryOp):
        return False
    if value.op not in ("+", "-"):
        return False
    sides = (value.left, value.right)
    has_self = any(isinstance(s, ast.Identifier) and s.name == target.name for s in sides)
    has_const = any(isinstance(s, ast.Number) for s in sides)
    return has_self and has_const


def extract_tabular_features(design: Union[str, ast.Module]) -> Dict[str, float]:
    """Extract the named code-branching feature dictionary for one design."""
    module = parse_module(design) if isinstance(design, str) else design

    always_blocks = module.always_blocks()
    sequential = [a for a in always_blocks if a.is_sequential]
    combinational = [a for a in always_blocks if not a.is_sequential]
    assigns = module.continuous_assigns()
    port_decls = module.port_declarations()
    net_decls = module.net_declarations()

    # One pre-order traversal buckets every node by concrete type and folds
    # in both depth statistics; the per-type lists below are dictionary
    # lookups instead of 15+ separate full-AST walks (the scan engine's
    # hottest tabular-modality path).
    buckets, n_nodes, ast_depth, branch_nesting = _scan_ast(module)

    ifs = buckets.get(ast.If, [])
    cases = buckets.get(ast.Case, [])
    case_items = buckets.get(ast.CaseItem, [])
    default_items = [c for c in case_items if c.is_default]
    ternaries = buckets.get(ast.Ternary, [])
    nonblocking = buckets.get(ast.NonBlockingAssign, [])
    blocking = buckets.get(ast.BlockingAssign, [])
    binaries = buckets.get(ast.BinaryOp, [])
    unaries = buckets.get(ast.UnaryOp, [])
    concats = buckets.get(ast.Concat, [])
    bit_selects = buckets.get(ast.BitSelect, [])
    part_selects = buckets.get(ast.PartSelect, [])
    numbers = buckets.get(ast.Number, [])
    identifiers = buckets.get(ast.Identifier, [])
    instantiations = module.instantiations()

    comparisons = [b for b in binaries if b.op in _COMPARISON_OPS]
    const_comparisons = [b for b in binaries if _is_constant_comparison(b)]
    wide_const_comparisons = [b for b in const_comparisons if _constant_bitwidth(b) >= 8]
    logical = [b for b in binaries if b.op in _LOGICAL_OPS]
    xors = [b for b in binaries if b.op in _XOR_OPS]
    arithmetic = [b for b in binaries if b.op in ("+", "-", "*", "/", "%")]
    shifts = [b for b in binaries if b.op in ("<<", ">>", "<<<", ">>>")]

    counter_increments = [
        n
        for bucket_type in (ast.NonBlockingAssign, ast.BlockingAssign)
        for n in buckets.get(bucket_type, [])
        if _is_counter_increment(n)
    ]

    inputs = [d for d in port_decls if d.direction == "input"]
    outputs = [d for d in port_decls if d.direction == "output"]
    wires = [d for d in net_decls if d.net_type == "wire"]
    regs = [d for d in net_decls if d.net_type == "reg"]
    reg_widths = [d.width() for d in regs] or [0]
    input_widths = [d.width() * len(d.names) for d in inputs] or [0]
    output_widths = [d.width() * len(d.names) for d in outputs] or [0]

    total_statements = len(nonblocking) + len(blocking) + len(assigns)
    total_branches = len(ifs) + len(case_items)
    unique_signals = {name for decl in port_decls + net_decls for name in decl.names}

    statements_per_always = (
        (len(nonblocking) + len(blocking)) / len(always_blocks) if always_blocks else 0.0
    )

    features: Dict[str, float] = {
        # Raw structural counts.
        "n_always": len(always_blocks),
        "n_sequential_always": len(sequential),
        "n_combinational_always": len(combinational),
        "n_continuous_assigns": len(assigns),
        "n_if": len(ifs),
        "n_case": len(cases),
        "n_case_items": len(case_items),
        "n_default_items": len(default_items),
        "n_ternary": len(ternaries),
        "n_nonblocking_assigns": len(nonblocking),
        "n_blocking_assigns": len(blocking),
        "n_instantiations": len(instantiations),
        "n_ports": len(module.ports),
        "n_inputs": sum(len(d.names) for d in inputs),
        "n_outputs": sum(len(d.names) for d in outputs),
        "n_wires": sum(len(d.names) for d in wires),
        "n_regs": sum(len(d.names) for d in regs),
        "n_parameters": len(module.parameters()),
        "n_unique_signals": len(unique_signals),
        "n_identifier_refs": len(identifiers),
        "n_numeric_literals": len(numbers),
        # Operator profile.
        "n_binary_ops": len(binaries),
        "n_unary_ops": len(unaries),
        "n_comparison_ops": len(comparisons),
        "n_constant_comparisons": len(const_comparisons),
        "n_wide_constant_comparisons": len(wide_const_comparisons),
        "n_logical_ops": len(logical),
        "n_xor_ops": len(xors),
        "n_arithmetic_ops": len(arithmetic),
        "n_shift_ops": len(shifts),
        "n_concats": len(concats),
        "n_bit_selects": len(bit_selects),
        "n_part_selects": len(part_selects),
        # Trigger-proxy features.
        "n_counter_increments": len(counter_increments),
        "max_constant_bitwidth": max(
            [_constant_bitwidth(b) for b in const_comparisons] or [0]
        ),
        # Structure / size.
        "ast_node_count": n_nodes,
        "ast_depth": ast_depth,
        "branch_nesting_depth": branch_nesting,
        "statements_per_always": statements_per_always,
        # Width profile.
        "total_input_width": float(sum(input_widths)),
        "total_output_width": float(sum(output_widths)),
        "total_reg_bits": float(sum(d.width() * len(d.names) for d in regs)),
        "max_reg_width": float(max(reg_widths)),
        # Densities (guarded against empty designs).
        "branch_density": total_branches / max(total_statements, 1),
        "comparison_density": len(comparisons) / max(n_nodes, 1),
        "assign_ratio": len(assigns) / max(total_statements, 1),
        "xor_density": len(xors) / max(n_nodes, 1),
        "constant_density": len(numbers) / max(n_nodes, 1),
    }
    return {key: float(value) for key, value in features.items()}


#: Canonical feature ordering, derived once from a trivial design so the
#: vectorised representation is stable across designs and library versions.
TABULAR_FEATURE_NAMES: List[str] = sorted(
    extract_tabular_features(
        "module __probe (clk, a, y); input clk; input [3:0] a; output y;\n"
        "  assign y = a == 4'd3;\nendmodule\n"
    )
)


def tabular_feature_vector(design: Union[str, ast.Module]) -> np.ndarray:
    """The code-branching features as a fixed-order numpy vector."""
    features = extract_tabular_features(design)
    return np.asarray([features[name] for name in TABULAR_FEATURE_NAMES], dtype=np.float64)


def tabular_feature_matrix(designs: List[Union[str, ast.Module]]) -> np.ndarray:
    """Stack feature vectors for a list of designs into an ``(N, F)`` matrix."""
    if not designs:
        return np.empty((0, len(TABULAR_FEATURE_NAMES)))
    return np.vstack([tabular_feature_vector(design) for design in designs])
