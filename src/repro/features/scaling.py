"""Feature scaling utilities.

Small fit/transform scalers in the scikit-learn style, kept dependency-free.
The tabular and graph feature matrices mix counts, densities and widths with
wildly different ranges, so scaling is required both for the CNN classifiers
and for the GAN (which generates samples in scaled space).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class StandardScaler:
    """Zero-mean / unit-variance scaling per feature column."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("StandardScaler expects a 2-D matrix")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        # Constant columns keep their value (scale of 1) instead of dividing by 0.
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted before transform")
        x = np.asarray(x, dtype=np.float64)
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted before inverse_transform")
        return np.asarray(x, dtype=np.float64) * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale each feature column to the [0, 1] range."""

    def __init__(self) -> None:
        self.min_: Optional[np.ndarray] = None
        self.range_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("MinMaxScaler expects a 2-D matrix")
        self.min_ = x.min(axis=0)
        span = x.max(axis=0) - self.min_
        self.range_ = np.where(span > 1e-12, span, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("MinMaxScaler must be fitted before transform")
        x = np.asarray(x, dtype=np.float64)
        return (x - self.min_) / self.range_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("MinMaxScaler must be fitted before inverse_transform")
        return np.asarray(x, dtype=np.float64) * self.range_ + self.min_
