"""Feature extraction: the two NOODLE modalities from RTL source.

* Tabular (Euclidean) modality — code-branching features of the AST
  (:mod:`repro.features.tabular`).
* Graph modality — signal data-flow graph statistics and adjacency images
  (:mod:`repro.features.graph_builder`, :mod:`repro.features.graph_features`,
  :mod:`repro.features.image`).
"""

from .graph_builder import DataFlowGraphBuilder, build_dataflow_graph, graph_summary
from .graph_features import (
    GRAPH_FEATURE_NAMES,
    extract_graph_features,
    graph_feature_matrix,
    graph_feature_vector,
)
from .image import DEFAULT_IMAGE_SIZE, adjacency_image, adjacency_image_batch
from .pipeline import (
    MODALITIES,
    MODALITY_GRAPH,
    MODALITY_TABULAR,
    MultimodalFeatures,
    extract_design_modalities,
    extract_modalities,
)
from .scaling import MinMaxScaler, StandardScaler
from .tabular import (
    TABULAR_FEATURE_NAMES,
    extract_tabular_features,
    tabular_feature_matrix,
    tabular_feature_vector,
)

__all__ = [
    "DEFAULT_IMAGE_SIZE",
    "DataFlowGraphBuilder",
    "GRAPH_FEATURE_NAMES",
    "MODALITIES",
    "MODALITY_GRAPH",
    "MODALITY_TABULAR",
    "MinMaxScaler",
    "MultimodalFeatures",
    "StandardScaler",
    "TABULAR_FEATURE_NAMES",
    "adjacency_image",
    "adjacency_image_batch",
    "build_dataflow_graph",
    "extract_design_modalities",
    "extract_graph_features",
    "extract_modalities",
    "extract_tabular_features",
    "graph_feature_matrix",
    "graph_feature_vector",
    "graph_summary",
    "tabular_feature_matrix",
    "tabular_feature_vector",
]
