"""NOODLE reproduction: uncertainty-aware hardware Trojan detection using
multimodal deep learning (DATE 2024).

Quickstart
----------
>>> from repro import TrojanDataset, SuiteConfig, extract_modalities, NOODLE
>>> dataset = TrojanDataset.generate(SuiteConfig(n_trojan_free=20, n_trojan_infected=10))
>>> features = extract_modalities(dataset)
>>> train, test = features.stratified_split(0.25)
>>> detector = NOODLE()
>>> report = detector.fit(train)
>>> decisions = detector.decide(test)

Subpackages
-----------
``repro.nn``
    From-scratch numpy neural-network library (layers, losses, optimizers).
``repro.hdl``
    Verilog subset front-end (lexer, parser, AST, emitter).
``repro.trojan``
    Synthetic Trust-Hub-style benchmark generator and Trojan insertion.
``repro.features``
    Graph and tabular (Euclidean) modality extraction from RTL.
``repro.gan``
    GAN-based data amplification and missing-modality imputation.
``repro.conformal``
    (Mondrian) inductive conformal prediction and p-value combination.
``repro.core``
    The NOODLE pipeline: multimodal datasets, early/late fusion,
    uncertainty-aware fusion, winner selection.
``repro.baselines``
    Classical ML baselines (logistic regression, SVM, trees, forests,
    gradient boosting, MLP).
``repro.metrics``
    Brier score and decomposition, calibration, ROC-AUC, radar consolidation.
``repro.experiments``
    Runners that regenerate each table and figure of the paper.
``repro.engine``
    Scan engine: artifact persistence (train once, scan many times),
    batched content-cached scanning, and the ``python -m repro`` CLI
    with ``train`` / ``calibrate`` / ``scan`` / ``report`` / ``serve`` /
    ``bench`` / ``bench-serve``.
``repro.serve``
    Online scan service: long-lived micro-batching HTTP server with a
    hot model registry (``python -m repro serve``), client, and load
    benchmark.
``repro.perf``
    Micro-benchmark timing harness behind the committed ``BENCH_*.json``.
"""

from .core import (
    NOODLE,
    EarlyFusionModel,
    LateFusionModel,
    NoodleConfig,
    SingleModalityModel,
    TrojanDecision,
    default_config,
)
from .features import MultimodalFeatures, extract_design_modalities, extract_modalities
from .trojan import Benchmark, SuiteConfig, TrojanDataset, insert_trojan

#: Single source of truth for the package version: surfaced by
#: ``python -m repro --version`` and the scan service's ``/healthz``.
__version__ = "1.1.0"

__all__ = [
    "Benchmark",
    "EarlyFusionModel",
    "LateFusionModel",
    "MultimodalFeatures",
    "NOODLE",
    "NoodleConfig",
    "SingleModalityModel",
    "SuiteConfig",
    "TrojanDataset",
    "TrojanDecision",
    "default_config",
    "extract_design_modalities",
    "extract_modalities",
    "insert_trojan",
    "__version__",
]
