"""Model-independent feature cache: extracted modalities keyed by content hash.

The scan pipeline is two-stage: expensive per-design feature extraction
(HDL lex/parse, graph construction, adjacency-image rendering — all pure
Python) followed by a cheap batched CNN forward pass + ``searchsorted``
conformal p-values.  The result cache (:mod:`repro.engine.cache`) sits
*above* both stages and is namespaced by model fingerprint, so the exact
workflow the serving layer promotes — recalibrate, hot-reload, rescan —
used to invalidate everything and re-pay the dominant extraction cost for
designs whose source never changed.

:class:`FeatureStore` is the missing tier underneath: a content-addressed
store of the assembled multimodal feature rows
(``(tabular, graph, graph_image)`` as produced by
:func:`repro.features.pipeline.extract_design_modalities`), keyed by the
design's SHA-256 content hash and **independent of any model**.  With it,
a rescan under a fresh fingerprint pays only the forward pass: feature
rows are looked up by content hash, assembled into the batch matrix and
pushed straight through inference.

Correctness of the tier rests on two invariants:

* **Content addressing** — a design's features are a pure function of its
  source text (and the image size), so a row written once is valid for
  every future scan of identical source bytes, under any model.
* **Schema fingerprinting** — the store is namespaced by a fingerprint of
  the feature *schema* (:func:`feature_schema_fingerprint`): the feature
  name lists, the image size and
  :data:`repro.features.pipeline.FEATURE_EXTRACTION_VERSION`.  Changing
  feature-extraction code bumps the version, which moves the store to a
  fresh namespace — stale rows are never looked up again (invalidation by
  construction, exactly like the result tier's model fingerprint).

On disk the store mirrors the result cache's concurrency discipline while
packing rows densely for zero-copy batch assembly: rows live in per-shard
``.npz`` files under ``<root>/<schema16>/shards/`` keyed by a prefix of
the content hash, each holding stacked ``tabular`` / ``graph`` /
``images`` matrices plus the parallel ``keys`` array.  Shard files are
written atomically (temp file + ``os.replace``); flushes run under the
namespace ``flock`` lockfile with a read-merge-write cycle so concurrent
writers (two schedulers, a scheduler and a service) cannot clobber each
other; unreadable files are quarantined as ``*.corrupt`` and their rows
simply re-extracted.  Loaded rows are *views* into the shard matrices —
serving a warm batch never copies per-design arrays.
"""

from __future__ import annotations

import io
import json
import logging
import os
import zipfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

import numpy as np

from ..features.image import DEFAULT_IMAGE_SIZE
from ..features.pipeline import feature_schema_fingerprint
from .cache import _NamespaceLock, _file_size, _quarantine

logger = logging.getLogger(__name__)

#: One extracted design: ``(tabular_row, graph_row, graph_image)``.
FeatureRow = Tuple[np.ndarray, np.ndarray, np.ndarray]

#: Bump when the on-disk shard layout (not the feature schema) changes.
FEATURE_STORE_VERSION = 1

#: Subdirectory of a schema namespace that holds the packed shard files.
SHARDS_DIRNAME = "shards"

#: Default number of leading hex characters of the content hash that pick
#: a row's shard file (1 -> up to 16 shard files per namespace).  Denser
#: than the result cache's 256-way default on purpose: a warm scan opens
#: every shard its batch touches, and ``np.load``'s per-file zip/header
#: parsing dominates the warm path — 16 larger files keep a whole-corpus
#: lookup at a handful of opens while read-merge-write flushes stay
#: well-bounded for realistic corpus sizes.
DEFAULT_SHARD_PREFIX_LEN = 1


def default_feature_store_dir(cache_dir: Union[str, Path]) -> Path:
    """The feature tier's conventional location under a cache root."""
    return Path(cache_dir) / "features"


class FeatureStore:
    """Packed, content-addressed store of extracted feature rows.

    Parameters
    ----------
    directory:
        Feature-tier root shared by every schema fingerprint (conventionally
        ``<cache_dir>/features``, see :func:`default_feature_store_dir`).
    image_size:
        Adjacency-image side length; part of the schema fingerprint, so
        stores with different image sizes never mix rows.
    shard_prefix_len:
        How many leading hex characters of a row's content hash select its
        shard file.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        image_size: int = DEFAULT_IMAGE_SIZE,
        shard_prefix_len: int = DEFAULT_SHARD_PREFIX_LEN,
    ) -> None:
        self.directory = Path(directory)
        self.image_size = image_size
        self.shard_prefix_len = shard_prefix_len
        self.schema_fingerprint = feature_schema_fingerprint(image_size=image_size)
        self.namespace_dir = self.directory / self.schema_fingerprint[:16]
        self._shards_dir = self.namespace_dir / SHARDS_DIRNAME
        self._lock = _NamespaceLock(self.namespace_dir / ".lock")
        #: Rows visible in memory (loaded shard views + fresh puts).
        self._rows: Dict[str, FeatureRow] = {}
        #: Content hashes put since the last flush.
        self._dirty_keys: Set[str] = set()
        #: Shard prefixes whose on-disk file has been read already.
        self._loaded_prefixes: Set[str] = set()
        #: Lookup statistics for ``cache-info`` / profiling.
        self.n_hits = 0
        self.n_misses = 0

    # -- shard addressing ----------------------------------------------------
    def _prefix(self, sha256: str) -> str:
        """The shard prefix a content hash belongs to."""
        return sha256[: self.shard_prefix_len]

    def _shard_path(self, prefix: str) -> Path:
        """The shard file for a hash prefix."""
        return self._shards_dir / f"{prefix}.npz"

    # -- loading -------------------------------------------------------------
    def _read_shard_file(self, path: Path) -> Dict[str, FeatureRow]:
        """Read one packed shard; corrupt files are quarantined, not fatal.

        Returns rows as views into the loaded matrices (no per-row copy).
        A shard written under a different full schema fingerprint (a
        16-hex-prefix collision, or a hand-moved file) is ignored.
        """
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(bytes(data["meta"]).decode("utf-8"))
                if meta.get("store_version") != FEATURE_STORE_VERSION:
                    return {}
                if meta.get("schema_fingerprint") != self.schema_fingerprint:
                    return {}
                keys = [str(k) for k in data["keys"]]
                tabular = data["tabular"]
                graph = data["graph"]
                images = data["images"]
        except (OSError, ValueError, KeyError, zipfile.BadZipFile,
                json.JSONDecodeError, UnicodeDecodeError) as exc:
            _quarantine(path, exc if isinstance(exc, Exception) else ValueError(exc))
            return {}
        if not (len(keys) == tabular.shape[0] == graph.shape[0] == images.shape[0]):
            _quarantine(path, ValueError("shard arrays have mismatched lengths"))
            return {}
        return {
            key: (tabular[i], graph[i], images[i]) for i, key in enumerate(keys)
        }

    def _ensure_prefix_loaded(self, prefix: str) -> None:
        """Lazily read the shard file backing a hash prefix (once)."""
        if prefix in self._loaded_prefixes:
            return
        self._loaded_prefixes.add(prefix)
        path = self._shard_path(prefix)
        if path.is_file():
            loaded = self._read_shard_file(path)
            # Fresh unflushed rows win over the disk copy for their keys.
            for key, row in loaded.items():
                self._rows.setdefault(key, row)

    # -- mapping-ish protocol ------------------------------------------------
    def get(self, sha256: str) -> Optional[FeatureRow]:
        """The stored feature row for a content hash, or ``None``.

        The returned arrays are read-only views into the packed shard
        matrices (or the arrays handed to :meth:`put`); batch assembly
        copies them into the batch matrix exactly once.
        """
        self._ensure_prefix_loaded(self._prefix(sha256))
        row = self._rows.get(sha256)
        if row is None:
            self.n_misses += 1
        else:
            self.n_hits += 1
        return row

    def put(self, sha256: str, row: FeatureRow) -> None:
        """Insert (or overwrite) the feature row for a content hash."""
        tabular, graph, image = row
        self._rows[sha256] = (
            np.asarray(tabular),
            np.asarray(graph),
            np.asarray(image),
        )
        self._dirty_keys.add(sha256)

    # -- persistence ---------------------------------------------------------
    def _write_shard(self, path: Path, rows: Dict[str, FeatureRow]) -> None:
        """Atomically write one packed shard file (lock held).

        Keys are written sorted so a shard's bytes are a pure function of
        its contents — byte-identical across writers and runs.
        """
        keys = sorted(rows)
        tabular = np.stack([rows[k][0] for k in keys], axis=0)
        graph = np.stack([rows[k][1] for k in keys], axis=0)
        images = np.stack([rows[k][2] for k in keys], axis=0)
        meta = json.dumps(
            {
                "store_version": FEATURE_STORE_VERSION,
                "schema_fingerprint": self.schema_fingerprint,
            },
            sort_keys=True,
        ).encode("utf-8")
        buffer = io.BytesIO()
        np.savez(
            buffer,
            meta=np.frombuffer(meta, dtype=np.uint8),
            keys=np.array(keys),
            tabular=tabular,
            graph=graph,
            images=images,
        )
        tmp_path = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp_path.write_bytes(buffer.getvalue())
        os.replace(tmp_path, path)

    def flush(self) -> Optional[Path]:
        """Atomically persist dirty rows to their packed shard files.

        Runs under the namespace lockfile with a read-merge-write cycle per
        affected shard: rows another process flushed meanwhile are kept
        (and absorbed into this store's in-memory view), our dirty rows win
        for their own keys.  Returns the namespace directory when anything
        was written, ``None`` otherwise.
        """
        if not self._dirty_keys:
            return None
        self._shards_dir.mkdir(parents=True, exist_ok=True)
        by_prefix: Dict[str, List[str]] = {}
        for key in self._dirty_keys:
            by_prefix.setdefault(self._prefix(key), []).append(key)
        with self._lock:
            for prefix in sorted(by_prefix):
                path = self._shard_path(prefix)
                on_disk = self._read_shard_file(path) if path.is_file() else {}
                merged = dict(on_disk)
                merged.update((key, self._rows[key]) for key in by_prefix[prefix])
                self._write_shard(path, merged)
                # Deliberately do NOT absorb on_disk rows into _rows:
                # feature rows are heavy (the adjacency image dominates),
                # and a long-lived service must not grow resident memory
                # with rows other processes wrote but it never looked up.
                # The worst case of staying blind to them is a re-extract.
        self._dirty_keys.clear()
        return self.namespace_dir


def _shard_row_count(path: Path) -> int:
    """Number of rows in a packed shard file (0 for unreadable files)."""
    try:
        with np.load(path, allow_pickle=False) as data:
            return int(data["keys"].shape[0])
    except (OSError, ValueError, KeyError, zipfile.BadZipFile):
        return 0


def describe_feature_tier(directory: Union[str, Path]) -> Dict[str, Any]:
    """Describe every schema namespace under a feature-tier root.

    Pure directory walking — no store is opened and no lock is taken, so
    this is safe to run against a live cache (``cache-info`` does).
    """
    root = Path(directory)
    namespaces: List[Dict[str, Any]] = []
    if root.is_dir():
        for namespace in sorted(p for p in root.iterdir() if p.is_dir()):
            shards = sorted((namespace / SHARDS_DIRNAME).glob("*.npz"))
            namespaces.append(
                {
                    "schema": namespace.name,
                    "n_shards": len(shards),
                    "n_rows": sum(_shard_row_count(p) for p in shards),
                    "bytes": sum(_file_size(p) for p in shards),
                }
            )
    return {
        "directory": str(root),
        "namespaces": namespaces,
        "n_rows": sum(ns["n_rows"] for ns in namespaces),
        "bytes": sum(ns["bytes"] for ns in namespaces),
    }
