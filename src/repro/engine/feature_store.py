"""Model-independent feature cache: extracted modalities keyed by content hash.

The scan pipeline is two-stage: expensive per-design feature extraction
(HDL lex/parse, graph construction, adjacency-image rendering — all pure
Python) followed by a cheap batched CNN forward pass + ``searchsorted``
conformal p-values.  The result cache (:mod:`repro.engine.cache`) sits
*above* both stages and is namespaced by model fingerprint, so the exact
workflow the serving layer promotes — recalibrate, hot-reload, rescan —
used to invalidate everything and re-pay the dominant extraction cost for
designs whose source never changed.

:class:`FeatureStore` is the missing tier underneath: a content-addressed
store of the assembled multimodal feature rows
(``(tabular, graph, graph_image)`` as produced by
:func:`repro.features.pipeline.extract_design_modalities`), keyed by the
design's SHA-256 content hash and **independent of any model**.  With it,
a rescan under a fresh fingerprint pays only the forward pass: feature
rows are looked up by content hash, assembled into the batch matrix and
pushed straight through inference.

Correctness of the tier rests on two invariants:

* **Content addressing** — a design's features are a pure function of its
  source text (and the image size), so a row written once is valid for
  every future scan of identical source bytes, under any model.
* **Schema fingerprinting** — the store is namespaced by a fingerprint of
  the feature *schema* (:func:`feature_schema_fingerprint`): the feature
  name lists, the image size and
  :data:`repro.features.pipeline.FEATURE_EXTRACTION_VERSION`.  Changing
  feature-extraction code bumps the version, which moves the store to a
  fresh namespace — stale rows are never looked up again (invalidation by
  construction, exactly like the result tier's model fingerprint).

On disk the store mirrors the result cache's concurrency discipline while
packing rows densely for zero-copy batch assembly: rows live in per-shard
``.npz`` files under ``<root>/<schema16>/shards/`` keyed by a prefix of
the content hash, each holding stacked ``tabular`` / ``graph`` /
``images`` matrices plus the parallel ``keys`` array.  All files are
written atomically (temp file + ``os.replace``); unreadable files are
quarantined as ``*.corrupt`` and their rows simply re-extracted.  Loaded
rows are *views* into the shard matrices — serving a warm batch never
copies per-design arrays.

Flushes are **append-only**: dirty rows are written as new *segment*
files (``<prefix>.<seq>.seg.npz``, same packed format) next to the base
shard instead of rewriting it, so a flush costs O(dirty rows) no matter
how large the shard has grown.  Reads merge newest-segment-first over the
base shard, so a later flush of the same content hash wins.  Segments are
folded back into the base shard by :meth:`FeatureStore.compact` — run
automatically once a prefix accumulates
:data:`SEGMENT_COMPACT_THRESHOLD` segments, and on demand by
``python -m repro cache-gc``.  Both flush and compaction run under the
namespace ``flock`` lockfile so concurrent writers (two schedulers, a
scheduler and a service) cannot clobber each other.
"""

from __future__ import annotations

import io
import json
import logging
import os
import struct
import threading
import zipfile
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

import numpy as np

from ..faults import corrupting_failpoint, failpoint
from ..features.image import DEFAULT_IMAGE_SIZE
from ..features.pipeline import feature_schema_fingerprint
from ..obs.metrics import REGISTRY
from .cache import _NamespaceLock, _file_size, _quarantine

logger = logging.getLogger(__name__)

#: One extracted design: ``(tabular_row, graph_row, graph_image)``.
FeatureRow = Tuple[np.ndarray, np.ndarray, np.ndarray]

#: Bump when the on-disk shard layout (not the feature schema) changes.
FEATURE_STORE_VERSION = 1

# Feature-tier telemetry (process-wide; see docs/OBSERVABILITY.md).
_FEATURE_HITS = REGISTRY.counter(
    "repro_featurestore_hits_total", "Feature-store lookups served from a shard."
)
_FEATURE_MISSES = REGISTRY.counter(
    "repro_featurestore_misses_total", "Feature-store lookups that missed."
)

#: Subdirectory of a schema namespace that holds the packed shard files.
SHARDS_DIRNAME = "shards"

#: Default number of leading hex characters of the content hash that pick
#: a row's shard file (1 -> up to 16 shard files per namespace).  Denser
#: than the result cache's 256-way default on purpose: a warm scan opens
#: every shard its batch touches, and ``np.load``'s per-file zip/header
#: parsing dominates the warm path — 16 larger files keep a whole-corpus
#: lookup at a handful of opens while read-merge-write flushes stay
#: well-bounded for realistic corpus sizes.
DEFAULT_SHARD_PREFIX_LEN = 1

#: A flush that finds this many segment files for one shard prefix folds
#: them into the base shard right away (bounds merge-on-read work while
#: keeping the common flush append-only).
SEGMENT_COMPACT_THRESHOLD = 16

#: Filename suffix distinguishing append-only segment files from base shards.
SEGMENT_SUFFIX = ".seg.npz"


def default_feature_store_dir(cache_dir: Union[str, Path]) -> Path:
    """The feature tier's conventional location under a cache root."""
    return Path(cache_dir) / "features"


class FeatureStore:
    """Packed, content-addressed store of extracted feature rows.

    Parameters
    ----------
    directory:
        Feature-tier root shared by every schema fingerprint (conventionally
        ``<cache_dir>/features``, see :func:`default_feature_store_dir`).
    image_size:
        Adjacency-image side length; part of the schema fingerprint, so
        stores with different image sizes never mix rows.
    shard_prefix_len:
        How many leading hex characters of a row's content hash select its
        shard file.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        image_size: int = DEFAULT_IMAGE_SIZE,
        shard_prefix_len: int = DEFAULT_SHARD_PREFIX_LEN,
    ) -> None:
        self.directory = Path(directory)
        self.image_size = image_size
        self.shard_prefix_len = shard_prefix_len
        self.schema_fingerprint = feature_schema_fingerprint(image_size=image_size)
        self.namespace_dir = self.directory / self.schema_fingerprint[:16]
        self._shards_dir = self.namespace_dir / SHARDS_DIRNAME
        self._lock = _NamespaceLock(self.namespace_dir / ".lock")
        #: Guards the in-memory state (_rows/_dirty_keys/_loaded_prefixes):
        #: the store is shared by every model lane of a serving process,
        #: whose batch workers get/put/flush it from separate threads.
        #: (The namespace lockfile above only orders *processes*.)
        self._mem_lock = threading.RLock()
        #: Rows visible in memory (loaded shard views + fresh puts).
        self._rows: Dict[str, FeatureRow] = {}
        #: Content hashes put since the last flush.
        self._dirty_keys: Set[str] = set()
        #: Shard prefixes whose on-disk file has been read already.
        self._loaded_prefixes: Set[str] = set()
        #: Lookup statistics for ``cache-info`` / profiling.
        self.n_hits = 0
        self.n_misses = 0

    # -- shard addressing ----------------------------------------------------
    def _prefix(self, sha256: str) -> str:
        """The shard prefix a content hash belongs to."""
        return sha256[: self.shard_prefix_len]

    def _shard_path(self, prefix: str) -> Path:
        """The base shard file for a hash prefix."""
        return self._shards_dir / f"{prefix}.npz"

    def _segment_paths(self, prefix: str) -> List[Path]:
        """A prefix's segment files, oldest first (sequence-number order)."""
        return sorted(self._shards_dir.glob(f"{prefix}.*{SEGMENT_SUFFIX}"))

    def _next_segment_path(self, prefix: str) -> Path:
        """The next free segment filename for a prefix (lock held)."""
        last = -1
        for path in self._segment_paths(prefix):
            seq = path.name[len(prefix) + 1 : -len(SEGMENT_SUFFIX)]
            if seq.isdigit():
                last = max(last, int(seq))
        return self._shards_dir / f"{prefix}.{last + 1:08d}{SEGMENT_SUFFIX}"

    # -- loading -------------------------------------------------------------
    def _read_shard_file(self, path: Path) -> Dict[str, FeatureRow]:
        """Read one packed shard; corrupt files are quarantined, not fatal.

        Returns rows as views into the loaded matrices (no per-row copy).
        A shard written under a different full schema fingerprint (a
        16-hex-prefix collision, or a hand-moved file) is ignored.
        """
        try:
            # Read the whole file up front (no handle for np.load to leak
            # when the zip header parse raises on a truncated shard).
            raw = corrupting_failpoint("features.shard.read", path.read_bytes())
            with np.load(io.BytesIO(raw), allow_pickle=False) as data:
                meta = json.loads(bytes(data["meta"]).decode("utf-8"))
                if meta.get("store_version") != FEATURE_STORE_VERSION:
                    return {}
                if meta.get("schema_fingerprint") != self.schema_fingerprint:
                    return {}
                keys = [str(k) for k in data["keys"]]
                tabular = data["tabular"]
                graph = data["graph"]
                images = data["images"]
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile,
                zlib.error, struct.error,
                json.JSONDecodeError, UnicodeDecodeError) as exc:
            _quarantine(path, exc if isinstance(exc, Exception) else ValueError(exc))
            return {}
        if not (len(keys) == tabular.shape[0] == graph.shape[0] == images.shape[0]):
            _quarantine(path, ValueError("shard arrays have mismatched lengths"))
            return {}
        return {
            key: (tabular[i], graph[i], images[i]) for i, key in enumerate(keys)
        }

    def _ensure_prefix_loaded(self, prefix: str) -> None:
        """Lazily read the files backing a hash prefix (once).

        Merge order is newest-first with ``setdefault`` — fresh unflushed
        rows win over any disk copy, newer segments win over older ones,
        and every segment wins over the base shard.  A segment that
        vanishes mid-read (a concurrent compaction folded it into the
        base) is harmless: the base shard is read last and carries its
        rows.
        """
        if prefix in self._loaded_prefixes:
            return
        self._loaded_prefixes.add(prefix)
        paths = list(reversed(self._segment_paths(prefix)))
        paths.append(self._shard_path(prefix))
        for path in paths:
            if path.is_file():
                for key, row in self._read_shard_file(path).items():
                    self._rows.setdefault(key, row)

    # -- mapping-ish protocol ------------------------------------------------
    def get(self, sha256: str) -> Optional[FeatureRow]:
        """The stored feature row for a content hash, or ``None``.

        The returned arrays are read-only views into the packed shard
        matrices (or the arrays handed to :meth:`put`); batch assembly
        copies them into the batch matrix exactly once.
        """
        with self._mem_lock:
            self._ensure_prefix_loaded(self._prefix(sha256))
            row = self._rows.get(sha256)
            if row is None:
                self.n_misses += 1
                _FEATURE_MISSES.inc()
            else:
                self.n_hits += 1
                _FEATURE_HITS.inc()
            return row

    def put(self, sha256: str, row: FeatureRow) -> None:
        """Insert (or overwrite) the feature row for a content hash."""
        tabular, graph, image = row
        with self._mem_lock:
            self._rows[sha256] = (
                np.asarray(tabular),
                np.asarray(graph),
                np.asarray(image),
            )
            self._dirty_keys.add(sha256)

    # -- persistence ---------------------------------------------------------
    def _write_shard(self, path: Path, rows: Dict[str, FeatureRow]) -> None:
        """Atomically write one packed shard file (lock held).

        Keys are written sorted so a shard's bytes are a pure function of
        its contents — byte-identical across writers and runs.
        """
        keys = sorted(rows)
        tabular = np.stack([rows[k][0] for k in keys], axis=0)
        graph = np.stack([rows[k][1] for k in keys], axis=0)
        images = np.stack([rows[k][2] for k in keys], axis=0)
        meta = json.dumps(
            {
                "store_version": FEATURE_STORE_VERSION,
                "schema_fingerprint": self.schema_fingerprint,
            },
            sort_keys=True,
        ).encode("utf-8")
        buffer = io.BytesIO()
        np.savez(
            buffer,
            meta=np.frombuffer(meta, dtype=np.uint8),
            keys=np.array(keys),
            tabular=tabular,
            graph=graph,
            images=images,
        )
        tmp_path = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp_path.write_bytes(buffer.getvalue())
        os.replace(tmp_path, path)

    def flush(self) -> Optional[Path]:
        """Persist dirty rows as new append-only segment files.

        Each affected shard prefix gets one fresh ``.seg.npz`` segment
        holding only this store's dirty rows — the base shard is never
        read or rewritten, so a flush costs O(dirty rows) even against a
        huge warm store.  Runs under the namespace lockfile (segment
        sequence numbers must be allocated atomically); rows another
        process flushed meanwhile live in their own segments and are
        merged on read.  A prefix that reaches
        :data:`SEGMENT_COMPACT_THRESHOLD` segments is folded into its
        base shard on the spot.  Returns the namespace directory when
        anything was written, ``None`` otherwise.
        """
        # Snapshot the dirty rows under the memory lock, then write them
        # outside it: a concurrent lane worker keeps putting rows while
        # the disk write runs, and anything it adds stays dirty for the
        # next flush (only the snapshotted keys are cleared below).
        with self._mem_lock:
            if not self._dirty_keys:
                return None
            flushed_keys = set(self._dirty_keys)
            by_prefix: Dict[str, Dict[str, FeatureRow]] = {}
            for key in flushed_keys:
                by_prefix.setdefault(self._prefix(key), {})[key] = self._rows[key]
            self._dirty_keys.clear()
        self._shards_dir.mkdir(parents=True, exist_ok=True)
        try:
            with self._lock:
                failpoint("features.flush.io")
                for prefix in sorted(by_prefix):
                    self._write_shard(self._next_segment_path(prefix), by_prefix[prefix])
                    if len(self._segment_paths(prefix)) >= SEGMENT_COMPACT_THRESHOLD:
                        self._compact_prefix(prefix)
        except BaseException:  # re-mark dirty rows for retry, then re-raise
            # The write failed mid-way: re-mark everything so the rows
            # are retried rather than silently lost.
            with self._mem_lock:
                self._dirty_keys |= flushed_keys
            raise
        return self.namespace_dir

    def _compact_prefix(self, prefix: str) -> int:
        """Fold a prefix's segments into its base shard (lock held).

        Merges base-then-oldest-to-newest so the newest write of every
        content hash wins, rewrites the base shard atomically, then
        removes the merged segment files.  Returns how many segments were
        folded in.
        """
        segments = self._segment_paths(prefix)
        if not segments:
            return 0
        base_path = self._shard_path(prefix)
        merged: Dict[str, FeatureRow] = (
            self._read_shard_file(base_path) if base_path.is_file() else {}
        )
        for path in segments:
            merged.update(self._read_shard_file(path))
        if merged:
            self._write_shard(base_path, merged)
        for path in segments:
            try:
                path.unlink()
            except OSError:
                pass  # already quarantined or removed
        return len(segments)

    def compact(self) -> int:
        """Fold every segment file in the namespace into its base shard.

        The maintenance entry point behind ``python -m repro cache-gc``:
        merge-on-read work drops back to one file open per prefix.  Safe
        against live readers and writers (runs under the namespace lock;
        readers fall back to the base shard for any segment that vanishes
        under them).  Returns the number of segment files removed.
        """
        if not self._shards_dir.is_dir():
            return 0
        prefixes = sorted(
            {
                path.name.split(".", 1)[0]
                for path in self._shards_dir.glob(f"*{SEGMENT_SUFFIX}")
            }
        )
        folded = 0
        with self._lock:
            for prefix in prefixes:
                folded += self._compact_prefix(prefix)
        return folded


def _shard_row_count(path: Path) -> int:
    """Number of rows in a packed shard file (0 for unreadable files)."""
    try:
        with open(path, "rb") as handle, np.load(handle, allow_pickle=False) as data:
            return int(data["keys"].shape[0])
    except (OSError, ValueError, KeyError, zipfile.BadZipFile):
        return 0


def describe_feature_tier(directory: Union[str, Path]) -> Dict[str, Any]:
    """Describe every schema namespace under a feature-tier root.

    Pure directory walking — no store is opened and no lock is taken, so
    this is safe to run against a live cache (``cache-info`` does).  Row
    counts sum base shards and append-only segments, so a hash rewritten
    in a segment counts once per file until the next compaction.
    """
    root = Path(directory)
    namespaces: List[Dict[str, Any]] = []
    if root.is_dir():
        for namespace in sorted(p for p in root.iterdir() if p.is_dir()):
            files = sorted((namespace / SHARDS_DIRNAME).glob("*.npz"))
            segments = [p for p in files if p.name.endswith(SEGMENT_SUFFIX)]
            shards = [p for p in files if not p.name.endswith(SEGMENT_SUFFIX)]
            namespaces.append(
                {
                    "schema": namespace.name,
                    "n_shards": len(shards),
                    "n_segments": len(segments),
                    "n_rows": sum(_shard_row_count(p) for p in files),
                    "bytes": sum(_file_size(p) for p in files),
                }
            )
    return {
        "directory": str(root),
        "namespaces": namespaces,
        "n_rows": sum(ns["n_rows"] for ns in namespaces),
        "bytes": sum(ns["bytes"] for ns in namespaces),
    }


def gc_feature_tier(
    directory: Union[str, Path], image_size: int = DEFAULT_IMAGE_SIZE
) -> Dict[str, Any]:
    """Garbage-collect a feature-tier root (``python -m repro cache-gc``).

    Two maintenance passes:

    * **Compact** the namespace of the *current* feature schema (for the
      given image size): every append-only segment file is folded into
      its base shard, restoring one-open-per-prefix reads.
    * **Remove** retired schema namespaces — directories written under an
      older :data:`~repro.features.pipeline.FEATURE_EXTRACTION_VERSION`
      or a different image size.  Their rows can never be looked up
      again, so they are dead weight by construction.

    Returns a summary dict: the compacted namespace, segments folded,
    retired namespaces removed, and bytes reclaimed from them.
    """
    import shutil

    root = Path(directory)
    store = FeatureStore(root, image_size=image_size)
    current = store.namespace_dir.name
    folded = store.compact()
    removed: List[str] = []
    reclaimed = 0
    if root.is_dir():
        for namespace in sorted(p for p in root.iterdir() if p.is_dir()):
            if namespace.name == current:
                continue
            reclaimed += sum(
                _file_size(p) for p in namespace.rglob("*") if p.is_file()
            )
            shutil.rmtree(namespace, ignore_errors=True)
            removed.append(namespace.name)
    return {
        "directory": str(root),
        "current_schema": current,
        "n_segments_folded": folded,
        "retired_namespaces_removed": removed,
        "bytes_reclaimed": reclaimed,
    }
