"""Scan engine: train/calibrate once, scan many times.

This package turns the paper-reproduction pipeline into a servable
subsystem built from three parts:

* :mod:`repro.engine.artifacts` — a disk artifact store that persists a
  fitted fusion detector (CNN weights, feature scalers, Mondrian-ICP
  calibration caches and the full :class:`repro.core.NoodleConfig`) so
  training happens once and scanning happens many times;
* :mod:`repro.engine.scan` — a batched scan pipeline that accepts HDL
  sources (files, directories or in-memory strings), extracts features
  across a ``multiprocessing`` worker pool, pushes *all* designs through
  the vectorized forward pass and ``searchsorted`` p-values in single
  calls, and caches per-design results keyed by content hash in two
  tiers: the model-fingerprinted result cache (:mod:`repro.engine.cache`)
  and the model-independent feature store
  (:mod:`repro.engine.feature_store`), so recalibrated/reloaded models
  pay only the forward pass on already-seen designs;
* :mod:`repro.engine.scheduler` — the sharded parallel scan scheduler:
  shards a corpus across a persistent worker pool (extraction *and*
  inference), merges deterministically, retries failed shards and makes
  interrupted scans resumable via the sharded cache;
* :mod:`repro.engine.cli` — the ``python -m repro`` command line with
  ``train`` / ``calibrate`` / ``scan`` / ``report`` / ``serve`` /
  ``bench`` / ``bench-serve`` subcommands.

The long-lived serving layer on top of this engine lives in
:mod:`repro.serve` (``python -m repro serve``, ``docs/SERVING.md``).

See ``docs/ENGINE.md`` for the artifact format and a CLI walkthrough.
"""

from .artifacts import ArtifactError, load_detector, save_detector
from .cache import CacheLockTimeout, ScanCache
from .feature_store import FeatureStore, default_feature_store_dir
from .scan import ScanEngine, ScanReport, ScanSource, collect_sources, hash_source
from .scheduler import ScanJournal, ScanScheduler
from .training import TrainingResult, build_strategies, recalibrate_detector, train_detector

__all__ = [
    "ArtifactError",
    "CacheLockTimeout",
    "FeatureStore",
    "ScanCache",
    "ScanEngine",
    "ScanJournal",
    "ScanScheduler",
    "ScanReport",
    "ScanSource",
    "TrainingResult",
    "build_strategies",
    "collect_sources",
    "default_feature_store_dir",
    "hash_source",
    "load_detector",
    "recalibrate_detector",
    "save_detector",
    "train_detector",
]
