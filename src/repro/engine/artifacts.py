"""Disk artifact store for trained NOODLE detectors.

An *artifact* is a directory holding everything needed to reconstruct a
fitted :class:`repro.core.fusion.ConformalFusionModel` without retraining:

``manifest.json``
    The detector kind (single / early_fusion / late_fusion), the full
    :class:`repro.core.NoodleConfig` tree, per-component feature widths,
    a content fingerprint, and optional provenance (e.g. the NOODLE
    winner-selection report for detectors trained via Algorithm 2).

``arrays.npz``
    Every numerical array, flattened with ``/``-separated key prefixes by
    the helpers in :mod:`repro.nn.serialize`: CNN weights and feature-scaler
    statistics per classifier, plus each conformal predictor's calibration
    scores *and pre-sorted caches* — restored verbatim so a loaded detector
    produces bit-identical p-values to the one that was saved.

The *fingerprint* (SHA-256 over the manifest core and all array bytes)
identifies a specific trained model; the scan cache keys results by
``(fingerprint, source hash)`` so stale verdicts can never leak across
retrains.
"""

from __future__ import annotations

import hashlib
import io
import json
import logging
import os
import struct
import tempfile
import zipfile
import zlib
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ..core.config import NoodleConfig
from ..faults import corrupting_failpoint, failpoint
from ..core.fusion import (
    ConformalFusionModel,
    EarlyFusionModel,
    LateFusionModel,
    SingleModalityModel,
)
from ..core.noodle import NOODLE
from ..nn.serialize import classifier_state_dict, icp_state_dict, restore_classifier, restore_icp

logger = logging.getLogger(__name__)

#: Version stamped into every manifest; bumped on layout changes.
ARTIFACT_SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

#: Sidecar archive caching the int8 backend's per-channel quantized weights,
#: keyed by the detector fingerprint so a retrain invalidates it.
QUANT_CACHE_NAME = "quantized_int8.npz"

#: Filename of a fleet manifest: one JSON file naming several artifact
#: directories for multi-model serving (``python -m repro serve --fleet``).
FLEET_MANIFEST_NAME = "fleet.json"


def _current_umask() -> int:
    """The process umask, read non-destructively (set-and-restore)."""
    mask = os.umask(0)
    os.umask(mask)
    return mask

#: Component name used for the single fused classifier of early fusion.
_JOINT = "joint"


class ArtifactError(RuntimeError):
    """Raised when an artifact directory is missing, corrupt or unsupported."""


def _model_components(
    model: ConformalFusionModel,
) -> Tuple[str, Dict[str, Any], Dict[str, Any]]:
    """Return ``(kind, classifiers, icps)`` keyed by component name."""
    if isinstance(model, SingleModalityModel):
        return (
            "single",
            {model.modality: model._classifier},
            {model.modality: model._icp},
        )
    if isinstance(model, EarlyFusionModel):
        return "early_fusion", {_JOINT: model._classifier}, {_JOINT: model._icp}
    if isinstance(model, LateFusionModel):
        return "late_fusion", dict(model._classifiers), dict(model._icps)
    raise ArtifactError(f"cannot persist fusion model of type {type(model).__name__}")


def _fingerprint(manifest_core: Dict[str, Any], arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over the manifest core and every array's bytes, order-independent."""
    digest = hashlib.sha256()
    digest.update(json.dumps(manifest_core, sort_keys=True).encode("utf-8"))
    for key in sorted(arrays):
        digest.update(key.encode("utf-8"))
        value = np.ascontiguousarray(arrays[key])
        digest.update(str(value.dtype).encode("utf-8"))
        digest.update(str(value.shape).encode("utf-8"))
        digest.update(value.tobytes())
    return digest.hexdigest()


def save_detector(
    model: Union[ConformalFusionModel, NOODLE],
    path: Union[str, Path],
    extra: Optional[Dict[str, Any]] = None,
    noodle_report: Optional[Dict[str, Any]] = None,
) -> Path:
    """Persist a fitted detector to the artifact directory ``path``.

    Accepts either a fitted fusion model or a fitted :class:`NOODLE`
    instance; for the latter the *winning* fusion model is stored and the
    winner-selection report is recorded in the manifest.  ``extra`` entries
    are merged into the manifest under ``"extra"`` (must be
    JSON-serialisable).  ``noodle_report`` carries a previously-persisted
    winner-selection report forward when re-saving a bare fusion model
    (e.g. after recalibration); it is ignored when a :class:`NOODLE`
    instance supplies the authoritative report.

    Returns the artifact directory path.  Raises :class:`ArtifactError` if
    the model is not fitted.
    """
    manifest: Dict[str, Any] = {}
    if isinstance(model, NOODLE):
        report = model.report  # raises if unfitted
        manifest["noodle_report"] = {
            "winner": report.winner,
            "validation_scores": report.validation_scores,
            "strategies": report.strategies,
            "amplified_training_size": report.amplified_training_size,
            "original_training_size": report.original_training_size,
        }
        model = model.model
    elif noodle_report is not None:
        manifest["noodle_report"] = dict(noodle_report)
    if not getattr(model, "_fitted", False):
        raise ArtifactError("cannot persist an unfitted detector; call fit() first")

    kind, classifiers, icps = _model_components(model)
    arrays: Dict[str, np.ndarray] = {}
    n_features: Dict[str, int] = {}
    for name, classifier in classifiers.items():
        arrays.update(classifier_state_dict(classifier, prefix=f"classifiers/{name}/"))
        n_features[name] = classifier.n_features
    for name, icp in icps.items():
        arrays.update(icp_state_dict(icp, prefix=f"icps/{name}/"))

    manifest_core: Dict[str, Any] = {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "kind": kind,
        "strategy": model.strategy,
        "modality": getattr(model, "modality", None),
        "config": model.config.to_dict(),
        "n_features": n_features,
    }
    manifest.update(manifest_core)
    manifest["fingerprint"] = _fingerprint(manifest_core, arrays)
    if extra:
        manifest["extra"] = dict(extra)

    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    # Concurrent readers (a serving registry's hot-reload probe, another
    # scan process) may open these files mid-save: stage each one in a
    # sibling temp file and os.replace() it into place.  Arrays land
    # before the manifest so a reader that sees the new manifest always
    # finds matching arrays.
    fd, tmp_name = tempfile.mkstemp(dir=path, prefix=ARRAYS_NAME + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **arrays)
        # mkstemp creates 0600; restore the umask-derived mode a direct
        # np.savez(path) would have produced.
        os.chmod(tmp_name, 0o666 & ~_current_umask())
        os.replace(tmp_name, path / ARRAYS_NAME)
    except BaseException:  # never leave a torn temp archive behind
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    manifest_path = path / MANIFEST_NAME
    tmp_manifest = manifest_path.with_name(f"{MANIFEST_NAME}.{os.getpid()}.tmp")
    tmp_manifest.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    os.replace(tmp_manifest, manifest_path)
    return path


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and minimally validate an artifact's ``manifest.json``."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ArtifactError(f"no artifact manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"corrupt artifact manifest at {manifest_path}: {exc}") from exc
    version = manifest.get("schema_version")
    if version != ARTIFACT_SCHEMA_VERSION:
        raise ArtifactError(
            f"unsupported artifact schema version {version!r} "
            f"(this build reads version {ARTIFACT_SCHEMA_VERSION})"
        )
    return manifest


def save_fleet_manifest(
    path: Union[str, Path],
    artifacts: Dict[str, Union[str, Path]],
    default: Optional[str] = None,
) -> Path:
    """Write a fleet manifest naming several artifacts for one service.

    ``artifacts`` maps model names to artifact directories (stored
    relative to the manifest when possible, so a fleet directory can be
    moved wholesale); ``default`` names the initial champion (first entry
    otherwise).  Returns the manifest path.
    """
    path = Path(path)
    if not artifacts:
        raise ArtifactError("a fleet manifest needs at least one artifact")
    if default is not None and default not in artifacts:
        raise ArtifactError(f"default model {default!r} is not in the fleet")
    base = path.resolve().parent
    entries: Dict[str, str] = {}
    for name, artifact in artifacts.items():
        if not isinstance(name, str) or not name:
            raise ArtifactError(f"fleet model names must be non-empty strings: {name!r}")
        resolved = Path(artifact).resolve()
        try:
            entries[name] = str(resolved.relative_to(base))
        except ValueError:
            entries[name] = str(resolved)
    payload = {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "artifacts": entries,
        "default": default or next(iter(artifacts)),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp_path, path)
    return path


def load_fleet_manifest(
    path: Union[str, Path],
) -> Tuple[Dict[str, Path], str]:
    """Read a fleet manifest into ``(name -> artifact_path, default_name)``.

    Relative artifact paths are resolved against the manifest's own
    directory.  Every named artifact directory must carry a readable
    detector manifest — a fleet pointing at a missing model should fail
    at startup, not on the first routed request.
    """
    path = Path(path)
    if not path.is_file():
        raise ArtifactError(f"no fleet manifest at {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"corrupt fleet manifest at {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ArtifactError(f"fleet manifest at {path} must be a JSON object")
    raw = payload.get("artifacts")
    if not isinstance(raw, dict) or not raw:
        raise ArtifactError(
            f"fleet manifest at {path} needs a non-empty 'artifacts' object"
        )
    base = path.resolve().parent
    artifacts: Dict[str, Path] = {}
    for name, artifact in raw.items():
        if not isinstance(artifact, str):
            raise ArtifactError(f"fleet artifact path for {name!r} must be a string")
        resolved = Path(artifact)
        if not resolved.is_absolute():
            resolved = base / resolved
        load_manifest(resolved)  # fail fast on broken/missing members
        artifacts[name] = resolved
    default = payload.get("default") or next(iter(artifacts))
    if default not in artifacts:
        raise ArtifactError(
            f"fleet manifest default {default!r} is not among {sorted(artifacts)}"
        )
    return artifacts, default


def load_detector(
    path: Union[str, Path],
) -> Tuple[ConformalFusionModel, Dict[str, Any]]:
    """Reconstruct a fitted detector from :func:`save_detector` output.

    Returns ``(model, manifest)``.  The model's conformal predictors are
    restored from their persisted sorted-calibration caches, so its
    ``p_values`` output is bit-identical to the saved detector's (for the
    default non-smoothed predictors).  Raises :class:`ArtifactError` on a
    missing/corrupt artifact or an unknown detector kind.
    """
    path = Path(path)
    failpoint("artifact.load")
    manifest = load_manifest(path)
    arrays_path = path / ARRAYS_NAME
    if not arrays_path.is_file():
        raise ArtifactError(f"artifact is missing its array archive: {arrays_path}")
    with np.load(arrays_path) as archive:
        arrays = {key: archive[key] for key in archive.files}

    config = NoodleConfig.from_dict(manifest["config"])
    n_features: Dict[str, int] = manifest["n_features"]
    kind = manifest["kind"]

    def _classifier(name: str):
        return restore_classifier(
            int(n_features[name]), config.classifier, arrays, prefix=f"classifiers/{name}/"
        )

    def _icp(name: str):
        return restore_icp(arrays, prefix=f"icps/{name}/")

    model: ConformalFusionModel
    if kind == "single":
        modality = manifest["modality"]
        single = SingleModalityModel(modality, config)
        single._classifier = _classifier(modality)
        single._icp = _icp(modality)
        model = single
    elif kind == "early_fusion":
        early = EarlyFusionModel(config)
        early._classifier = _classifier(_JOINT)
        early._icp = _icp(_JOINT)
        model = early
    elif kind == "late_fusion":
        late = LateFusionModel(config)
        late._classifiers = {m: _classifier(m) for m in config.modalities}
        late._icps = {m: _icp(m) for m in config.modalities}
        model = late
    else:
        raise ArtifactError(f"unknown detector kind {kind!r} in {path}")
    model._fitted = True
    return model, manifest


# ---------------------------------------------------------------------------
# Quantized-weight sidecar cache (int8 backend)
# ---------------------------------------------------------------------------


def _quarantine_sidecar(cache_path: Path, reason: Exception) -> None:
    """Move a corrupt sidecar aside as ``<name>.corrupt`` so it is not re-read.

    Mirrors the result cache's quarantine discipline: the broken file is
    preserved for post-mortem, the engine recomputes, and the next
    :func:`save_quantized_state` writes a fresh sidecar in its place.
    """
    target = cache_path.with_name(cache_path.name + ".corrupt")
    logger.warning(
        "quarantining corrupt quantized sidecar %s -> %s (%s: %s)",
        cache_path,
        target.name,
        type(reason).__name__,
        reason,
    )
    try:
        os.replace(cache_path, target)
    except OSError:
        pass  # a concurrent loader may have quarantined it already


def load_quantized_state(
    path: Union[str, Path], fingerprint: str
) -> Optional[Dict[str, Dict[str, np.ndarray]]]:
    """Read the artifact's cached int8 quantization state, if valid.

    Returns the nested ``{component: {key: array}}`` mapping expected by
    ``ConformalFusionModel.set_backend('int8', ...)``, or ``None`` when the
    sidecar is absent, unreadable, or was written for a different detector
    fingerprint (e.g. after a retrain) — callers then re-quantize.  A
    corrupt sidecar (truncated archive, bad zlib stream, mangled entry) is
    quarantined as ``*.corrupt`` so the recompute is done once, not on
    every load.  A wrong-fingerprint sidecar is *not* corrupt — it is left
    in place and simply ignored.
    """
    cache_path = Path(path) / QUANT_CACHE_NAME
    if not cache_path.is_file():
        return None
    try:
        raw = corrupting_failpoint("artifact.quantized.read", cache_path.read_bytes())
        # Entry reads on a truncated npz raise mid-iteration (EOFError,
        # zlib.error, struct.error — not just BadZipFile at open), so the
        # whole decode sits under one try and any failure quarantines.
        with np.load(io.BytesIO(raw)) as archive:
            if str(archive["__fingerprint__"]) != fingerprint:
                return None
            state: Dict[str, Dict[str, np.ndarray]] = {}
            for key in archive.files:
                if key == "__fingerprint__":
                    continue
                component, _, entry = key.partition("/")
                state.setdefault(component, {})[entry] = archive[key]
            return state
    except KeyError:
        # Missing "__fingerprint__" (or entry) in a structurally sound
        # archive: not ours / legacy layout — ignore without quarantining.
        return None
    except OSError as exc:
        if not cache_path.is_file():
            return None  # vanished between the stat and the read
        _quarantine_sidecar(cache_path, exc)
        return None
    except (ValueError, EOFError, zipfile.BadZipFile, zlib.error, struct.error) as exc:
        _quarantine_sidecar(cache_path, exc)
        return None


def save_quantized_state(
    path: Union[str, Path],
    fingerprint: str,
    state: Dict[str, Dict[str, np.ndarray]],
) -> Path:
    """Atomically persist the int8 quantization sidecar next to the artifact.

    The nested component state is flattened to ``component/key`` archive
    entries with the owning fingerprint stored alongside, and the archive is
    written via a temp file + ``os.replace`` so concurrent readers never see
    a torn file.
    """
    path = Path(path)
    flat: Dict[str, np.ndarray] = {"__fingerprint__": np.array(fingerprint)}
    for component, entries in state.items():
        for key, value in entries.items():
            flat[f"{component}/{key}"] = value
    fd, tmp_name = tempfile.mkstemp(
        dir=path, prefix=QUANT_CACHE_NAME + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **flat)
        os.replace(tmp_name, path / QUANT_CACHE_NAME)
    except BaseException:  # never leave a torn temp archive behind
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path / QUANT_CACHE_NAME


def prepare_quantized_state(
    model: ConformalFusionModel, path: Union[str, Path], fingerprint: str
) -> Dict[str, Dict[str, np.ndarray]]:
    """Load — or compute once and cache — a detector's int8 weight prep.

    Per-channel weight scales depend only on the trained weights, so they
    are computed at most once per artifact: subsequent engine loads (and
    every scan worker process) read the sidecar instead of re-quantizing.
    A read-only artifact directory degrades gracefully to in-memory
    quantization.
    """
    state = load_quantized_state(path, fingerprint)
    if state is not None:
        return state
    _, classifiers, _ = _model_components(model)
    state = {name: clf.quantized_state() for name, clf in classifiers.items()}
    try:
        save_quantized_state(path, fingerprint, state)
    except OSError:
        pass  # read-only artifact dir: quantize per-process instead
    return state
