"""Batched end-to-end scan pipeline.

The sequential way to vet ``N`` designs is to run the whole pipeline once
per design.  :class:`ScanEngine` instead restructures the work into three
batch-friendly stages:

1. **Front-end** — lexing, parsing and feature extraction are per-design
   and embarrassingly parallel, so uncached designs are fanned out across a
   ``multiprocessing`` pool (one task per design, chunked by the pool).
2. **Inference** — all extracted designs are assembled into one
   :class:`repro.features.MultimodalFeatures` batch and pushed through the
   vectorized CNN forward pass and the ``searchsorted`` conformal p-values
   in *single* calls, amortising per-call overhead across the batch.
3. **Triage** — each design receives a :class:`repro.core.ScanRecord`
   carrying the risk-aware :class:`repro.core.TrojanDecision`.

Results are cached by content hash (:mod:`repro.engine.cache`); a rescan of
an unchanged design is a dictionary lookup.
"""

from __future__ import annotations

import hashlib
import logging
import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.fusion import ConformalFusionModel
from ..core.noodle import build_decisions
from ..core.results import ScanRecord
from ..features.image import DEFAULT_IMAGE_SIZE
from ..features.pipeline import MultimodalFeatures, extract_design_modalities
from ..nn.backend import DEFAULT_BACKEND, PROFILER, get_backend
from ..obs.metrics import REGISTRY
from ..obs.tracing import Tracer, trace_span
from .cache import CacheLockTimeout, ScanCache
from .feature_store import FeatureStore

logger = logging.getLogger(__name__)

#: File suffixes treated as HDL sources when collecting from a directory.
HDL_SUFFIXES = (".v", ".sv", ".verilog")

# Graceful-degradation telemetry: increments whenever a durability tier
# (result cache, feature store, worker pool) failed and the engine kept
# going without it — see docs/ROBUSTNESS.md for the degradation matrix.
_DEGRADED = REGISTRY.counter(
    "repro_engine_degraded_total",
    "Scans that lost a durability/parallelism tier but continued.",
    labels=("tier",),
)


def note_degraded(tier: str) -> None:
    """Count one graceful degradation of ``tier`` (``cache``/``features``/``pool``)."""
    _DEGRADED.labels(tier=tier).inc()


def hash_source(source: str) -> str:
    """SHA-256 content hash of a design's source text (the cache key)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass
class ScanSource:
    """One design queued for scanning: a name, its source text, provenance."""

    name: str
    source: str
    path: Optional[str] = None
    sha256: str = ""

    def __post_init__(self) -> None:
        if not self.sha256:
            self.sha256 = hash_source(self.source)


def collect_sources(inputs: Iterable[Union[str, Path]]) -> List[ScanSource]:
    """Resolve files and directories into a deterministic list of sources.

    Directories are searched recursively for the suffixes in
    :data:`HDL_SUFFIXES`; plain files are read as-is regardless of suffix.
    Raises ``FileNotFoundError`` for inputs that do not exist.

    The result is **order-stable and duplicate-safe**: directory walks are
    sorted by path (``rglob`` order is filesystem-dependent, and a stable
    corpus order is what keeps scan reports, scheduler shard identities
    and served batches reproducible across machines), and every candidate
    is deduplicated by its *resolved* path, so listing a file twice,
    passing both a directory and a file inside it, or reaching the same
    file through a symlink yields one scan source (the first occurrence
    wins, under its originally given path).
    """
    files: List[Path] = []
    seen: set = set()
    for item in inputs:
        path = Path(item)
        if path.is_dir():
            candidates = sorted(
                {
                    candidate
                    for suffix in HDL_SUFFIXES
                    for candidate in path.rglob(f"*{suffix}")
                    if candidate.is_file()
                }
            )
        elif path.is_file():
            candidates = [path]
        else:
            raise FileNotFoundError(f"scan input does not exist: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            files.append(candidate)
    return [
        ScanSource(name=path.stem, source=path.read_text(), path=str(path))
        for path in files
    ]


def sources_from_pairs(pairs: Iterable[Tuple[str, str]]) -> List[ScanSource]:
    """Build scan sources from in-memory ``(name, verilog_text)`` pairs."""
    return [ScanSource(name=name, source=source) for name, source in pairs]


# ---------------------------------------------------------------------------
# Parallel front-end (module-level worker so it pickles under spawn too)
# ---------------------------------------------------------------------------


def _extract_worker(
    task: Tuple[int, str, int],
) -> Tuple[int, Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]], Optional[str]]:
    """Pool worker: ``(index, source, image_size)`` -> features or error text."""
    index, source, image_size = task
    try:
        return index, extract_design_modalities(source, image_size=image_size), None
    except Exception as exc:  # front-end errors become per-design records
        return index, None, f"{type(exc).__name__}: {exc}"


def extract_feature_rows(
    sources: Sequence[ScanSource],
    image_size: int = DEFAULT_IMAGE_SIZE,
    workers: Optional[int] = None,
    store: Optional[FeatureStore] = None,
) -> Tuple[Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]], Dict[int, str]]:
    """Extract ``(tabular, graph, image)`` rows for every source.

    Returns ``(rows, errors)`` keyed by source index.  ``workers`` defaults
    to ``min(4, cpu_count)``; pass ``1`` (or fewer sources than 2) for the
    serial path.  Any pool-level failure falls back to serial extraction so
    a restricted environment degrades gracefully rather than crashing.

    With a :class:`repro.engine.feature_store.FeatureStore` attached, the
    store is consulted first — features are a pure function of source
    content, so a stored row is served without touching the HDL front-end
    — and every freshly extracted row is recorded in it (the caller
    flushes).  The store's ``n_hits`` / ``n_misses`` counters account for
    the lookups.
    """
    tasks: List[Tuple[int, str, int]] = []
    rows: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    for i, src in enumerate(sources):
        hit = store.get(src.sha256) if store is not None else None
        if hit is not None:
            rows[i] = hit
        else:
            tasks.append((i, src.source, image_size))
    if workers is None:
        workers = min(4, multiprocessing.cpu_count() or 1)
    results: List[Tuple[int, Optional[Tuple], Optional[str]]] = []
    if workers > 1 and len(tasks) > 1:
        try:
            with multiprocessing.Pool(processes=min(workers, len(tasks))) as pool:
                results = pool.map(_extract_worker, tasks)
        except (OSError, RuntimeError):
            results = []
    if not results:
        results = [_extract_worker(task) for task in tasks]
    errors: Dict[int, str] = {}
    for index, row, error in results:
        if error is not None:
            errors[index] = error
        else:
            rows[index] = row
            if store is not None:
                store.put(sources[index].sha256, row)
    return rows, errors


def assemble_features(
    rows: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    names: Sequence[str],
    image_size: int = DEFAULT_IMAGE_SIZE,
) -> MultimodalFeatures:
    """Assemble per-design feature rows into one batched feature container.

    The batch matrices are preallocated once and filled slice-by-slice in
    place — each source row (often a read-only view into a feature-store
    shard) is copied exactly once, with no intermediate per-design arrays
    or list-of-arrays staging (the ``vstack``/``stack`` path materialises
    both).  Labels are unknown at scan time and filled with ``-1``
    placeholders (never read by the inference path).
    """
    n = len(rows)
    if not n:
        return MultimodalFeatures(
            tabular=np.empty((0, 0)),
            graph=np.empty((0, 0)),
            graph_images=np.empty((0, 1, image_size, image_size)),
            labels=np.full(0, -1, dtype=int),
            names=list(names),
        )
    first_tab, first_graph, first_image = rows[0]
    tabular = np.empty((n, first_tab.shape[-1]), dtype=first_tab.dtype)
    graph = np.empty((n, first_graph.shape[-1]), dtype=first_graph.dtype)
    graph_images = np.empty((n, *first_image.shape), dtype=first_image.dtype)
    for j, (tab, gra, img) in enumerate(rows):
        tabular[j] = tab
        graph[j] = gra
        graph_images[j] = img
    return MultimodalFeatures(
        tabular=tabular,
        graph=graph,
        graph_images=graph_images,
        labels=np.full(n, -1, dtype=int),
        names=list(names),
    )


def resolve_cache_hits(
    cache: Optional[ScanCache],
    sources: Sequence[ScanSource],
    level: float,
) -> Tuple[List[Optional[ScanRecord]], List[int]]:
    """Serve whatever the cache already knows about a batch of sources.

    Returns ``(records, pending)``: a records list aligned with ``sources``
    (cache hits filled in, misses ``None``) and the indices still needing a
    scan.  Hits carry the (model-deterministic) cached p-values, but the
    triage decision is a pure function of those p-values and the
    *requested* confidence level, so it is rebuilt here — a hit at
    ``--confidence 0.99`` yields exactly the decision a fresh scan would.
    Shared by :class:`ScanEngine` and
    :class:`repro.engine.scheduler.ScanScheduler`.
    """
    records: List[Optional[ScanRecord]] = [None] * len(sources)
    pending: List[int] = []
    hits: List[int] = []
    for i, src in enumerate(sources):
        hit = cache.get(src.sha256) if cache is not None else None
        if hit is not None and hit.decision is not None:
            hit.name = src.name
            hit.source_path = src.path
            records[i] = hit
            hits.append(i)
        else:
            pending.append(i)
    if hits:
        hit_p_values = np.array(
            [
                [
                    records[i].decision.p_value_trojan_free,
                    records[i].decision.p_value_trojan_infected,
                ]
                for i in hits
            ]
        )
        rebuilt = build_decisions([sources[i].name for i in hits], hit_p_values, level)
        for i, decision in zip(hits, rebuilt):
            records[i].decision = decision
    return records, pending


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


#: Order in which per-stage profile timings are reported (collect is the
#: CLI's source-gathering stage; the engine fills the rest).
PROFILE_STAGES = (
    "collect",
    "cache_lookup",
    "extract",
    "infer",
    "p_value",
    "cache_flush",
)


@dataclass
class ScanReport:
    """Everything one scan run produced, plus its runtime breakdown."""

    records: List[ScanRecord] = field(default_factory=list)
    n_designs: int = 0
    n_cache_hits: int = 0
    n_feature_hits: int = 0
    n_errors: int = 0
    seconds_extract: float = 0.0
    seconds_inference: float = 0.0
    seconds_total: float = 0.0
    confidence_level: float = 0.9
    #: Shards requeued by the parallel scheduler after a recoverable error.
    n_shard_retries: int = 0
    #: Shards whose pool worker died or timed out (each also retried).
    n_worker_deaths: int = 0
    #: Shards that exhausted their retry budget and were failed outright.
    n_shard_failures: int = 0
    #: Name of the compute backend that ran inference (see
    #: :mod:`repro.nn.backend`); recorded in the results-JSON profile block.
    backend: str = DEFAULT_BACKEND
    #: Per-stage wall-time breakdown (:data:`PROFILE_STAGES` keys, plus
    #: ``infer/<sub-stage>`` entries for non-default backends), filled by
    #: the engine on every scan and surfaced by ``scan --profile``.
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def n_scanned(self) -> int:
        """Designs that went through the model this run (not cached/errored)."""
        return self.n_designs - self.n_cache_hits - self.n_errors

    def triage(self) -> Dict[str, List[ScanRecord]]:
        """Partition records into accept / reject / review / error queues."""
        queues: Dict[str, List[ScanRecord]] = {
            "accept": [],
            "reject": [],
            "review": [],
            "error": [],
        }
        for record in self.records:
            decision = record.decision
            if decision is None:
                queues["error"].append(record)
            elif decision.is_uncertain or decision.is_empty:
                queues["review"].append(record)
            elif decision.predicted_label == 1:
                queues["reject"].append(record)
            else:
                queues["accept"].append(record)
        return queues

    def summary_lines(self) -> List[str]:
        """Human-readable run summary used by the CLI."""
        queues = self.triage()
        feature = (
            f", {self.n_feature_hits} feature hits" if self.n_feature_hits else ""
        )
        lines = [
            f"designs scanned : {self.n_designs} "
            f"({self.n_cache_hits} cache hits{feature}, {self.n_errors} errors)",
            f"wall time       : {self.seconds_total:.3f}s "
            f"(extract {self.seconds_extract:.3f}s, "
            f"inference {self.seconds_inference:.3f}s)",
            f"triage @ {self.confidence_level:.0%} confidence: "
            f"{len(queues['accept'])} accept, {len(queues['reject'])} reject, "
            f"{len(queues['review'])} manual review",
        ]
        if self.n_shard_retries or self.n_worker_deaths or self.n_shard_failures:
            lines.append(
                f"scheduler       : {self.n_shard_retries} shard retries, "
                f"{self.n_worker_deaths} worker deaths, "
                f"{self.n_shard_failures} shards failed"
            )
        return lines

    def profile_lines(self) -> List[str]:
        """Per-stage timing breakdown (the ``scan --profile`` output).

        Stages are listed in pipeline order with their share of the total
        wall time, plus an ``(other)`` line for time the instrumented
        stages do not account for (record bookkeeping, report assembly).
        ``collect`` runs in the CLI before the engine's clock starts, so
        the total here is ``seconds_total`` plus the collect stage.
        Stages keyed with a ``_cpu`` suffix (the parallel scheduler's
        summed per-worker times) are CPU seconds, not slices of the wall
        clock, and are listed without a percentage.  Non-default compute
        backends additionally break the ``infer`` stage down into its
        ``infer/<sub-stage>`` components (prep / quantize / gemm /
        activation), indented under the infer line; sub-stages are part of
        the infer time, so they do not count toward the total again.
        """
        grand_total = self.seconds_total + self.stage_seconds.get("collect", 0.0)
        total = max(grand_total, 1e-12)
        lines = [f"stage timings ({self.backend} backend):"]
        accounted = 0.0
        for stage in PROFILE_STAGES:
            seconds = self.stage_seconds.get(stage)
            if seconds is None:
                continue
            accounted += seconds
            lines.append(f"  {stage:<12} {seconds:9.4f}s  {seconds / total:6.1%}")
            if stage == "infer":
                for sub in sorted(self.stage_seconds):
                    if sub.startswith("infer/"):
                        sub_seconds = self.stage_seconds[sub]
                        name = sub.split("/", 1)[1]
                        lines.append(f"    {name:<10} {sub_seconds:9.4f}s")
        other = max(grand_total - accounted, 0.0)
        lines.append(f"  {'(other)':<12} {other:9.4f}s  {other / total:6.1%}")
        lines.append(f"  {'total':<12} {grand_total:9.4f}s")
        for stage, seconds in sorted(self.stage_seconds.items()):
            if stage.endswith("_cpu"):
                lines.append(
                    f"  {stage:<12} {seconds:9.4f}s  (CPU, summed across workers)"
                )
        return lines

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (consumed by ``python -m repro report``)."""
        return {
            "n_designs": self.n_designs,
            "n_cache_hits": self.n_cache_hits,
            "n_feature_hits": self.n_feature_hits,
            "n_errors": self.n_errors,
            "seconds_extract": self.seconds_extract,
            "seconds_inference": self.seconds_inference,
            "seconds_total": self.seconds_total,
            "confidence_level": self.confidence_level,
            "scheduler": {
                "shard_retries": self.n_shard_retries,
                "worker_deaths": self.n_worker_deaths,
                "shard_failures": self.n_shard_failures,
            },
            "profile": {"backend": self.backend, **self.stage_seconds},
            "records": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScanReport":
        """Rebuild a report from :meth:`to_dict` output."""
        profile = dict(data.get("profile", {}))
        backend = str(profile.pop("backend", DEFAULT_BACKEND))
        scheduler = dict(data.get("scheduler", {}))
        return cls(
            records=[ScanRecord.from_dict(r) for r in data.get("records", [])],
            n_designs=int(data.get("n_designs", 0)),
            n_cache_hits=int(data.get("n_cache_hits", 0)),
            n_feature_hits=int(data.get("n_feature_hits", 0)),
            n_errors=int(data.get("n_errors", 0)),
            seconds_extract=float(data.get("seconds_extract", 0.0)),
            seconds_inference=float(data.get("seconds_inference", 0.0)),
            seconds_total=float(data.get("seconds_total", 0.0)),
            confidence_level=float(data.get("confidence_level", 0.9)),
            n_shard_retries=int(scheduler.get("shard_retries", 0)),
            n_worker_deaths=int(scheduler.get("worker_deaths", 0)),
            n_shard_failures=int(scheduler.get("shard_failures", 0)),
            backend=backend,
            stage_seconds=profile,
        )


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


class ScanEngine:
    """Batched scanner around a fitted fusion detector.

    Parameters
    ----------
    model:
        A fitted :class:`ConformalFusionModel` (typically restored via
        :func:`repro.engine.artifacts.load_detector`).
    fingerprint:
        The artifact fingerprint used to namespace the result cache; any
        stable identifier works for in-memory models.
    cache:
        Optional :class:`ScanCache`; omit to scan uncached.
    feature_store:
        Optional model-independent
        :class:`repro.engine.feature_store.FeatureStore`.  Designs whose
        content hash is in the store skip the HDL front-end entirely —
        a rescan under a fresh model fingerprint (recalibration, hot
        reload) pays only the forward pass.
    image_size:
        Adjacency-image size the feature pipeline was trained with.
    backend:
        Compute backend for the forward pass (see
        :mod:`repro.nn.backend`): ``"numpy"`` is the golden float64
        reference, ``"fused_f32"`` the fused float32 inference path,
        ``"int8"`` the dynamic-quantized path.  Raises ``ValueError`` for
        unknown names.
    quant_state:
        Optional precomputed int8 quantization state (the artifact
        sidecar's contents), forwarded to the model so the int8 backend
        does not re-quantize; ignored by the other backends.
    """

    def __init__(
        self,
        model: ConformalFusionModel,
        fingerprint: str = "unversioned",
        cache: Optional[ScanCache] = None,
        feature_store: Optional[FeatureStore] = None,
        image_size: int = DEFAULT_IMAGE_SIZE,
        backend: str = DEFAULT_BACKEND,
        quant_state: Optional[Dict[str, Dict[str, np.ndarray]]] = None,
    ) -> None:
        get_backend(backend)  # validate the name before any work happens
        self.model = model
        self.fingerprint = fingerprint
        self.cache = cache
        self.feature_store = feature_store
        self.image_size = image_size
        self.backend = backend
        #: Default tracer used when :meth:`scan_sources` is not handed one
        #: explicitly (the scheduler's serial path and pool workers set it).
        self.tracer: Optional[Tracer] = None
        if hasattr(model, "set_backend"):
            model.set_backend(backend, quant_state)
        elif backend != DEFAULT_BACKEND:
            raise ValueError(
                f"model {type(model).__name__} does not support compute-backend "
                f"selection; only the default {DEFAULT_BACKEND!r} backend works"
            )

    @classmethod
    def from_artifact(
        cls,
        artifact_path: Union[str, Path],
        cache_dir: Optional[Union[str, Path]] = None,
        feature_store_dir: Optional[Union[str, Path]] = None,
        image_size: int = DEFAULT_IMAGE_SIZE,
        backend: str = DEFAULT_BACKEND,
    ) -> "ScanEngine":
        """Load a persisted detector and (optionally) attach the cache tiers.

        ``cache_dir`` attaches the fingerprint-namespaced result tier;
        ``feature_store_dir`` attaches the model-independent feature tier
        (conventionally ``<cache_dir>/features`` — the CLI wires that up).
        For the ``int8`` backend the per-channel quantized weights are
        loaded from (or computed once and cached into) the artifact
        directory's ``quantized_int8.npz`` sidecar.
        """
        from .artifacts import load_detector, prepare_quantized_state

        get_backend(backend)  # fail fast, before the artifact load
        model, manifest = load_detector(artifact_path)
        fingerprint = manifest.get("fingerprint", "unversioned")
        quant_state = (
            prepare_quantized_state(model, artifact_path, fingerprint)
            if backend == "int8"
            else None
        )
        cache = ScanCache(cache_dir, fingerprint) if cache_dir is not None else None
        store = (
            FeatureStore(feature_store_dir, image_size=image_size)
            if feature_store_dir is not None
            else None
        )
        return cls(
            model,
            fingerprint=fingerprint,
            cache=cache,
            feature_store=store,
            image_size=image_size,
            backend=backend,
            quant_state=quant_state,
        )

    # -- scanning ------------------------------------------------------------
    def scan_sources(
        self,
        sources: Sequence[ScanSource],
        workers: Optional[int] = None,
        confidence: Optional[float] = None,
        flush_cache: bool = True,
        tracer: Optional[Tracer] = None,
    ) -> ScanReport:
        """Scan a batch of designs and return per-design triage records.

        Cached designs (same content hash, same model fingerprint) are
        served from the cache; the rest go through parallel feature
        extraction and one batched inference call.  With a feature store
        attached, designs whose features are stored skip extraction and go
        straight to inference (and fresh extractions are persisted into
        the store for every future model).  The record order always
        matches the input order.  ``flush_cache=False`` records fresh
        results in the cache tiers but defers the disk flushes to the
        caller (the serving layer flushes off the response critical path);
        the default keeps the one-shot behaviour of flushing before
        returning.  ``stage_seconds`` on the returned report carries the
        per-stage wall-time breakdown (``scan --profile``); the breakdown
        is measured with :func:`repro.obs.tracing.trace_span`, so passing
        a ``tracer`` additionally records the stage spans (``scan/extract``
        → ``scan/featurize`` → ``scan/infer`` → ``scan/fuse``, plus the
        cache stages) as children of the caller's current span.
        """
        t_start = time.perf_counter()
        if tracer is None:
            tracer = self.tracer
        level = confidence if confidence is not None else self.model.config.confidence_level
        report = ScanReport(
            n_designs=len(sources), confidence_level=level, backend=self.backend
        )

        # 1. result-cache lookups (decision rebuilt at the requested level).
        with trace_span(tracer, "scan/cache_lookup", designs=len(sources)) as sp_cache:
            records, pending = resolve_cache_hits(self.cache, sources, level)
        report.n_cache_hits = len(sources) - len(pending)
        report.stage_seconds["cache_lookup"] = sp_cache.duration_s

        # 2. feature store + parallel front-end for the result-cache misses
        store = self.feature_store
        hits_before = store.n_hits if store is not None else 0
        with trace_span(tracer, "scan/extract", designs=len(pending)) as sp_extract:
            rows, errors = (
                extract_feature_rows(
                    [sources[i] for i in pending],
                    image_size=self.image_size,
                    workers=workers,
                    store=store,
                )
                if pending
                else ({}, {})
            )
        report.n_feature_hits = (store.n_hits - hits_before) if store is not None else 0
        report.seconds_extract = sp_extract.duration_s
        report.stage_seconds["extract"] = report.seconds_extract

        for local_index, message in errors.items():
            i = pending[local_index]
            src = sources[i]
            records[i] = ScanRecord(
                name=src.name, sha256=src.sha256, source_path=src.path, error=message
            )
            report.n_errors += 1

        # 3. one batched forward pass + searchsorted p-values for the rest
        scanned = [i for local, i in enumerate(pending) if local in rows]
        with trace_span(tracer, "scan/infer", designs=len(scanned)) as sp_infer:
            if scanned:
                ordered_rows = [
                    rows[local] for local, i in enumerate(pending) if local in rows
                ]
                with trace_span(tracer, "scan/featurize", designs=len(scanned)):
                    batch = assemble_features(
                        ordered_rows,
                        [sources[i].name for i in scanned],
                        self.image_size,
                    )
                profiled = self.backend != DEFAULT_BACKEND
                if profiled:
                    PROFILER.reset()
                p_values = self.model.p_values(batch)
                if profiled:
                    for sub_stage, sub_seconds in PROFILER.snapshot().items():
                        key = f"infer/{sub_stage}"
                        report.stage_seconds[key] = (
                            report.stage_seconds.get(key, 0.0) + sub_seconds
                        )
        with trace_span(tracer, "scan/fuse", designs=len(scanned)) as sp_fuse:
            if scanned:
                decisions = build_decisions(batch.names, p_values, level)
                for i, decision in zip(scanned, decisions):
                    src = sources[i]
                    records[i] = ScanRecord(
                        name=src.name,
                        sha256=src.sha256,
                        decision=decision,
                        source_path=src.path,
                    )
        report.seconds_inference = sp_infer.duration_s + sp_fuse.duration_s
        report.stage_seconds["infer"] = sp_infer.duration_s
        report.stage_seconds["p_value"] = sp_fuse.duration_s

        # 4. persist fresh results (both tiers).  Tier flushes degrade, never
        # fail the scan: the verdicts are already computed and in memory, so
        # a full disk or contended lock costs durability, not correctness.
        with trace_span(tracer, "scan/cache_flush") as sp_flush:
            report.records = [r for r in records if r is not None]
            if self.cache is not None:
                for record in report.records:
                    if not record.cached:
                        self.cache.put(record)
                if flush_cache:
                    try:
                        self.cache.flush()
                    except (OSError, CacheLockTimeout) as exc:
                        note_degraded("cache")
                        logger.warning(
                            "result-cache flush failed (%s: %s); scan continues "
                            "without result durability",
                            type(exc).__name__,
                            exc,
                        )
            if store is not None and flush_cache:
                try:
                    store.flush()
                except (OSError, CacheLockTimeout) as exc:
                    note_degraded("features")
                    logger.warning(
                        "feature-store flush failed (%s: %s); scan continues "
                        "without feature durability",
                        type(exc).__name__,
                        exc,
                    )
        report.stage_seconds["cache_flush"] = sp_flush.duration_s
        report.seconds_total = time.perf_counter() - t_start
        return report

    def scan_paths(
        self,
        inputs: Iterable[Union[str, Path]],
        workers: Optional[int] = None,
        confidence: Optional[float] = None,
    ) -> ScanReport:
        """Convenience wrapper: :func:`collect_sources` then :meth:`scan_sources`."""
        return self.scan_sources(
            collect_sources(inputs), workers=workers, confidence=confidence
        )
