"""Sharded parallel scan scheduler: the whole pipeline across a worker pool.

:class:`repro.engine.scan.ScanEngine` parallelises only the front-end
(lex/parse/feature extraction); inference still runs in the parent.
:class:`ScanScheduler` parallelises the **entire** pipeline: the corpus is
split into shards of ``shard_size`` designs, each shard runs feature
extraction *and* batched inference inside a persistent worker pool (each
worker loads the detector once, at pool start-up, and reuses it for every
shard it serves), and the per-shard reports are merged deterministically —
records come back in input order with p-values identical to a serial scan.

On top of the raw fan-out the scheduler adds the operational behaviour a
scan-a-whole-corpus service needs:

* **Resumability** — shard results are flushed into the sharded
  :class:`repro.engine.cache.ScanCache` as each shard completes, so a scan
  killed mid-run loses at most its in-flight shards; the next run serves
  every completed design from the cache and only rescans the remainder.  A
  per-corpus :class:`ScanJournal` in the cache namespace records shard
  progress for observability (``--resume`` reuses it instead of starting a
  fresh one).
* **Bounded retry** — a shard whose worker dies or raises is re-queued up
  to ``max_retries`` times; designs in a shard that keeps failing get
  explicit error records instead of poisoning the whole scan.
* **Graceful degradation** — if the pool cannot be created (restricted
  environments) or ``jobs=1``, shards run serially in the parent through
  the exact same merge path.

See ``docs/ENGINE.md`` for the full resume/retry semantics.
"""

from __future__ import annotations

import hashlib
import json
import logging
import multiprocessing
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.config import NoodleConfig
from ..core.fusion import ConformalFusionModel
from ..core.results import ScanRecord
from ..faults import SHARD_DEADLINE_S, SHARD_RETRY_POLICY, failpoint
from ..features.image import DEFAULT_IMAGE_SIZE
from ..obs.metrics import REGISTRY
from ..obs.tracing import Tracer, trace_span
from .cache import CacheLockTimeout, ScanCache, atomic_write_json
from .feature_store import FeatureStore
from .scan import (
    ScanEngine,
    ScanReport,
    ScanSource,
    collect_sources,
    note_degraded,
    resolve_cache_hits,
)

logger = logging.getLogger(__name__)

#: Default number of designs per scheduler shard.
DEFAULT_SHARD_SIZE = 16

#: Default bounded-retry budget for failed shards (total tries = 1 + retries).
#: Sourced from the system-wide policy table (see docs/ROBUSTNESS.md).
DEFAULT_MAX_RETRIES = SHARD_RETRY_POLICY.max_retries

#: Default per-shard result deadline (seconds).  ``multiprocessing.Pool``
#: never delivers a result for a task whose worker was killed hard (OOM,
#: SIGKILL), so an unbounded ``get()`` would hang the scan forever; a
#: deadline converts that into a normal shard failure that the bounded
#: retry re-queues.  Sourced from :data:`repro.faults.policy.SHARD_DEADLINE_S`.
DEFAULT_SHARD_TIMEOUT = SHARD_DEADLINE_S

JOURNAL_SCHEMA_VERSION = 1

# Scheduler reliability telemetry (process-wide; surfaced in the scan
# summary line and, under serve, in /metrics — see docs/OBSERVABILITY.md).
_SHARD_RETRIES = REGISTRY.counter(
    "repro_engine_shard_retries_total", "Shards requeued after a recoverable failure."
)
_WORKER_DEATHS = REGISTRY.counter(
    "repro_engine_worker_deaths_total",
    "Shards whose pool worker died or missed its result deadline.",
)
_SHARD_FAILURES = REGISTRY.counter(
    "repro_engine_shard_failures_total",
    "Shards failed permanently after exhausting the retry budget.",
)


def default_jobs() -> int:
    """Default worker count: ``min(4, cpu_count)`` like the front-end pool."""
    return min(4, multiprocessing.cpu_count() or 1)


def corpus_digest(sources: Sequence[ScanSource]) -> str:
    """Stable SHA-256 identity of a scan corpus (order-sensitive).

    Keys the scheduler's journal so a resumed run can tell whether it is
    looking at the same corpus as the interrupted one.
    """
    digest = hashlib.sha256()
    for src in sources:
        digest.update(src.sha256.encode("ascii"))
        digest.update(b"\0")
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Worker-side machinery (module level so it pickles under spawn too)
# ---------------------------------------------------------------------------

_WORKER_ENGINE: Optional[ScanEngine] = None


def _init_scan_worker(payload: Tuple[str, Any, str, int, Optional[str], str]) -> None:
    """Pool initializer: build the per-process engine exactly once.

    ``payload`` is ``("artifact", path, fingerprint, image_size,
    feature_store_dir, backend)`` — each worker loads the persisted
    detector itself — or ``("model", pickled_model, fingerprint,
    image_size, feature_store_dir, backend)`` for in-memory models.  The
    compute backend is applied per worker; artifact workers pick the int8
    sidecar up from the artifact directory (it was prepared by the parent
    before the pool started).  Workers never touch the
    *result* cache (the parent owns all result-cache I/O, so a scan keeps
    a single writer per process tree), but each worker opens its own
    handle on the shared model-independent feature store: the store's
    ``flock`` + read-merge-write flush discipline makes any number of
    concurrent writers safe, and sharing it means a shard full of
    already-seen designs skips extraction inside the worker too.
    """
    global _WORKER_ENGINE
    kind, spec, fingerprint, image_size, feature_store_dir, backend = payload
    quant_state = None
    if kind == "artifact":
        from .artifacts import load_detector, prepare_quantized_state

        model, _ = load_detector(spec)
        if backend == "int8":
            quant_state = prepare_quantized_state(model, spec, fingerprint)
    else:
        model = pickle.loads(spec)
    store = (
        FeatureStore(feature_store_dir, image_size=image_size)
        if feature_store_dir is not None
        else None
    )
    _WORKER_ENGINE = ScanEngine(
        model,
        fingerprint=fingerprint,
        cache=None,
        feature_store=store,
        image_size=image_size,
        backend=backend,
        quant_state=quant_state,
    )


def _scan_shard_worker(
    task: Tuple[str, List[ScanSource], float],
) -> Tuple[str, Optional[List[dict]], float, float, int, Optional[str], List[dict]]:
    """Pool worker: scan one shard end-to-end with the per-process engine.

    ``task`` is ``(shard_id, sources, level)`` with an optional fourth
    ``(trace_id, parent_span_id)`` element; when present, the worker runs
    a private :class:`repro.obs.tracing.Tracer` (span ids prefixed with
    the shard id for cross-process uniqueness) and ships the finished
    spans home as the trailing element of the result tuple.

    Returns ``(shard_id, record_dicts, seconds_extract, seconds_inference,
    n_feature_hits, error, spans)``; any exception is folded into
    ``error`` so the parent can re-queue the shard instead of crashing the
    pool.  The engine's default flush persists fresh feature rows per
    shard, matching the result cache's per-shard durability in the parent.
    """
    shard_id, shard_sources, level = task[0], task[1], task[2]
    trace_ctx = task[3] if len(task) > 3 else None
    tracer: Optional[Tracer] = None
    parent_span_id: Optional[str] = None
    if trace_ctx is not None:
        trace_id, parent_span_id = trace_ctx
        tracer = Tracer(trace_id=trace_id, id_prefix=f"{shard_id}.")
    try:
        failpoint("scheduler.worker.body")
        assert _WORKER_ENGINE is not None, "worker initializer did not run"
        _WORKER_ENGINE.tracer = tracer
        with trace_span(
            tracer,
            "scheduler/shard",
            parent_id=parent_span_id,
            shard=shard_id,
            designs=len(shard_sources),
        ):
            report = _WORKER_ENGINE.scan_sources(
                shard_sources, workers=1, confidence=level
            )
        _WORKER_ENGINE.tracer = None
        return (
            shard_id,
            [record.to_dict() for record in report.records],
            report.seconds_extract,
            report.seconds_inference,
            report.n_feature_hits,
            None,
            tracer.export() if tracer is not None else [],
        )
    except Exception as exc:  # pragma: no cover - exercised via retry tests
        return shard_id, None, 0.0, 0.0, 0, f"{type(exc).__name__}: {exc}", []


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------


class ScanJournal:
    """Atomic per-corpus progress journal living in the cache namespace.

    One JSON file per ``(fingerprint, corpus)`` pair, rewritten atomically
    after every shard, recording which shards completed or failed and how
    many runs have touched this corpus.  The journal is *observability*:
    the correctness of resume comes from the sharded result cache (every
    completed design is served from it), the journal tells an operator how
    an interrupted or retried scan actually progressed.
    """

    def __init__(self, path: Path, fingerprint: str, digest: str) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.digest = digest
        self.state: Dict[str, Any] = {}

    def _matches(self, state: Dict[str, Any]) -> bool:
        return (
            state.get("schema_version") == JOURNAL_SCHEMA_VERSION
            and state.get("fingerprint") == self.fingerprint
            and state.get("corpus_digest") == self.digest
        )

    def start(self, n_designs: int, shard_size: int, resume: bool) -> None:
        """Begin (or with ``resume=True`` continue) a run of this corpus."""
        previous: Dict[str, Any] = {}
        if resume and self.path.is_file():
            try:
                candidate = json.loads(self.path.read_text())
            except (json.JSONDecodeError, OSError):
                candidate = {}
            if isinstance(candidate, dict) and self._matches(candidate):
                previous = candidate
        self.state = {
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "corpus_digest": self.digest,
            "n_designs": n_designs,
            "shard_size": shard_size,
            "status": "running",
            "runs": int(previous.get("runs", 0)) + 1,
            "shards": dict(previous.get("shards", {})),
        }
        self._write()

    def record_shard(
        self, shard_id: str, status: str, n_records: int, attempts: int
    ) -> None:
        """Record one shard's outcome (``"done"`` or ``"failed"``)."""
        self.state["shards"][shard_id] = {
            "status": status,
            "n_records": n_records,
            "attempts": attempts,
        }
        self._write()

    def complete(self) -> None:
        """Mark the run finished."""
        self.state["status"] = "complete"
        self._write()

    def _write(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(self.path, self.state)


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------


@dataclass
class _Shard:
    """One unit of scheduled work: a slice of pending source indices."""

    shard_id: str
    indices: List[int] = field(default_factory=list)
    attempts: int = 0


class ScanScheduler:
    """Sharded, resumable, retrying parallel scanner.

    Parameters
    ----------
    model:
        A fitted :class:`ConformalFusionModel` (mutually optional with
        ``artifact_path``; at least one is required).  In-memory models are
        pickled once into each pool worker.
    artifact_path:
        A saved detector directory; pool workers each load it once at
        start-up, which is cheaper and more robust than pickling for the
        CLI path.
    fingerprint:
        Cache namespace; defaults to the artifact's fingerprint when
        loading from disk.
    cache:
        Optional :class:`ScanCache` shared with plain engines; required
        for resumable scans.
    feature_store_dir:
        Optional root of the model-independent feature tier.  Every pool
        worker (and the serial-path parent engine) opens its own
        :class:`repro.engine.feature_store.FeatureStore` handle on it —
        the store's ``flock`` + read-merge-write flush discipline makes
        concurrent writers safe, the same guarantee the result cache
        gives the parent.
    jobs:
        Worker-pool size (:func:`default_jobs` when omitted); ``1`` scans
        shards serially in the parent through the same merge path.
    shard_size:
        Designs per shard — the granularity of parallelism, retry and
        incremental cache flushes.
    max_retries:
        How many times a failed shard is re-queued before its designs get
        error records.
    shard_timeout:
        Seconds to wait for one shard's result before treating it as
        failed (and re-queueing it under the retry budget).  Guards
        against pool workers that died hard (OOM, SIGKILL), whose results
        would otherwise never arrive; ``None`` disables the deadline.
    front_end_workers:
        Feature-extraction processes for shards scanned in the parent
        (the ``jobs=1`` / degraded path); defaults to the engine's own
        ``min(4, cpu_count)``.  Pool workers always extract in-process —
        they are daemonic and may not spawn a nested pool, and the shard
        fan-out already owns the cores.
    image_size:
        Adjacency-image size the feature pipeline was trained with.
    default_confidence:
        Confidence level used when a scan does not specify one; resolved
        from the model config (or artifact manifest) when omitted.
    backend:
        Compute backend (see :mod:`repro.nn.backend`) applied by every
        pool worker and the serial-path parent engine.
    """

    def __init__(
        self,
        model: Optional[ConformalFusionModel] = None,
        artifact_path: Optional[Union[str, Path]] = None,
        fingerprint: str = "unversioned",
        cache: Optional[ScanCache] = None,
        feature_store_dir: Optional[Union[str, Path]] = None,
        jobs: Optional[int] = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        max_retries: int = DEFAULT_MAX_RETRIES,
        shard_timeout: Optional[float] = DEFAULT_SHARD_TIMEOUT,
        front_end_workers: Optional[int] = None,
        image_size: int = DEFAULT_IMAGE_SIZE,
        default_confidence: Optional[float] = None,
        backend: str = "numpy",
    ) -> None:
        if model is None and artifact_path is None:
            raise ValueError("ScanScheduler needs a model or an artifact_path")
        if shard_size < 1:
            raise ValueError("shard_size must be at least 1")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.model = model
        self.artifact_path = Path(artifact_path) if artifact_path is not None else None
        self.fingerprint = fingerprint
        self.cache = cache
        self.feature_store_dir = (
            Path(feature_store_dir) if feature_store_dir is not None else None
        )
        self.jobs = jobs if jobs is not None else default_jobs()
        self.shard_size = shard_size
        self.max_retries = max_retries
        self.shard_timeout = shard_timeout
        self.front_end_workers = front_end_workers
        self.image_size = image_size
        from ..nn.backend import get_backend

        get_backend(backend)  # validate the name before any pool spins up
        self.backend = backend
        if default_confidence is None:
            if model is not None:
                default_confidence = model.config.confidence_level
            else:
                from .artifacts import load_manifest

                manifest = load_manifest(self.artifact_path)
                default_confidence = NoodleConfig.from_dict(
                    manifest["config"]
                ).confidence_level
        self.default_confidence = default_confidence
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._pool_broken = False
        self._parent_engine_cache: Optional[ScanEngine] = None

    @classmethod
    def from_artifact(
        cls,
        artifact_path: Union[str, Path],
        cache_dir: Optional[Union[str, Path]] = None,
        feature_store_dir: Optional[Union[str, Path]] = None,
        jobs: Optional[int] = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        max_retries: int = DEFAULT_MAX_RETRIES,
        shard_timeout: Optional[float] = DEFAULT_SHARD_TIMEOUT,
        front_end_workers: Optional[int] = None,
        image_size: int = DEFAULT_IMAGE_SIZE,
        backend: str = "numpy",
    ) -> "ScanScheduler":
        """Build a scheduler over a persisted detector (the CLI path).

        Workers load the artifact themselves at pool start-up; the parent
        only reads the manifest (for the fingerprint and default
        confidence) and optionally attaches the sharded result cache and
        the shared feature-store root.  For the ``int8`` backend the
        quantized-weight sidecar is prepared in the artifact directory up
        front, so pool workers all read it instead of re-quantizing.
        """
        from .artifacts import load_manifest

        manifest = load_manifest(artifact_path)
        fingerprint = manifest.get("fingerprint", "unversioned")
        if backend == "int8":
            from .artifacts import load_detector, prepare_quantized_state

            model, _ = load_detector(artifact_path)
            prepare_quantized_state(model, artifact_path, fingerprint)
        cache = ScanCache(cache_dir, fingerprint) if cache_dir is not None else None
        return cls(
            artifact_path=artifact_path,
            fingerprint=fingerprint,
            cache=cache,
            feature_store_dir=feature_store_dir,
            jobs=jobs,
            shard_size=shard_size,
            max_retries=max_retries,
            shard_timeout=shard_timeout,
            front_end_workers=front_end_workers,
            image_size=image_size,
            backend=backend,
        )

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Shut the persistent worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ScanScheduler":
        """Context-manager entry: the scheduler itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: release the worker pool."""
        self.close()

    # -- internals -----------------------------------------------------------
    def _worker_payload(self) -> Tuple[str, Any, str, int, Optional[str], str]:
        store_dir = (
            str(self.feature_store_dir) if self.feature_store_dir is not None else None
        )
        if self.artifact_path is not None:
            return (
                "artifact",
                str(self.artifact_path),
                self.fingerprint,
                self.image_size,
                store_dir,
                self.backend,
            )
        return (
            "model",
            pickle.dumps(self.model, protocol=pickle.HIGHEST_PROTOCOL),
            self.fingerprint,
            self.image_size,
            store_dir,
            self.backend,
        )

    def _ensure_pool(self, n_shards: int) -> Optional[multiprocessing.pool.Pool]:
        """The persistent pool, creating it on first use; ``None`` = serial."""
        if self.jobs <= 1 or n_shards <= 1 or self._pool_broken:
            return None
        if self._pool is None:
            try:
                # Sized to `jobs`, not to this call's shard count: the pool
                # persists across scans, and a later, larger corpus must not
                # be underserved because the first scan was small.
                self._pool = multiprocessing.Pool(
                    processes=self.jobs,
                    initializer=_init_scan_worker,
                    initargs=(self._worker_payload(),),
                )
            except (OSError, RuntimeError, pickle.PicklingError):
                # Restricted environment (no fork/semaphores) or an
                # unpicklable model: degrade to the serial path for good.
                self._pool_broken = True
                return None
        return self._pool

    def _parent_engine(self) -> ScanEngine:
        """Serial-path engine in the parent process (model loaded lazily)."""
        if self._parent_engine_cache is None:
            model = self.model
            if model is None:
                from .artifacts import load_detector

                model, _ = load_detector(self.artifact_path)
            store = (
                FeatureStore(self.feature_store_dir, image_size=self.image_size)
                if self.feature_store_dir is not None
                else None
            )
            quant_state = None
            if self.backend == "int8" and self.artifact_path is not None:
                from .artifacts import prepare_quantized_state

                quant_state = prepare_quantized_state(
                    model, self.artifact_path, self.fingerprint
                )
            self._parent_engine_cache = ScanEngine(
                model,
                fingerprint=self.fingerprint,
                cache=None,
                feature_store=store,
                image_size=self.image_size,
                backend=self.backend,
                quant_state=quant_state,
            )
        return self._parent_engine_cache

    def _make_shards(self, pending: Sequence[int], sources: Sequence[ScanSource]) -> List[_Shard]:
        """Chunk pending indices (in input order) into identified shards."""
        shards: List[_Shard] = []
        for seq, start in enumerate(range(0, len(pending), self.shard_size)):
            indices = list(pending[start : start + self.shard_size])
            digest = hashlib.sha256(
                "".join(sources[i].sha256 for i in indices).encode("ascii")
            ).hexdigest()[:8]
            shards.append(_Shard(shard_id=f"{seq:04d}-{digest}", indices=indices))
        return shards

    def _shard_task(
        self,
        shard: _Shard,
        sources: Sequence[ScanSource],
        level: float,
        trace_ctx: Optional[Tuple[str, str]] = None,
    ) -> Tuple[str, List[ScanSource], float, Optional[Tuple[str, str]]]:
        return (
            shard.shard_id,
            [sources[i] for i in shard.indices],
            level,
            trace_ctx,
        )

    def _absorb_shard(
        self,
        shard: _Shard,
        record_dicts: List[dict],
        records: List[Optional[ScanRecord]],
        report: ScanReport,
        journal: Optional[ScanJournal],
    ) -> None:
        """Merge one finished shard: place records, count errors, persist."""
        fresh: List[ScanRecord] = []
        for index, data in zip(shard.indices, record_dicts):
            record = ScanRecord.from_dict(data)
            records[index] = record
            if record.error is not None:
                report.n_errors += 1
            else:
                fresh.append(record)
        if self.cache is not None:
            self.cache.put_many(fresh)
            try:
                self.cache.flush()  # per-shard durability: a kill loses at most in-flight shards
            except (OSError, CacheLockTimeout) as exc:
                # Disk-full or lock contention must not fail a scan whose
                # verdicts are already in memory: keep going without the
                # per-shard durability (the records stay dirty and every
                # later flush retries them).
                note_degraded("cache")
                logger.warning(
                    "cache flush failed after shard %s (%s: %s); continuing degraded",
                    shard.shard_id,
                    type(exc).__name__,
                    exc,
                )
        if journal is not None:
            journal.record_shard(
                shard.shard_id, "done", len(record_dicts), shard.attempts + 1
            )

    def _fail_shard(
        self,
        shard: _Shard,
        error: str,
        sources: Sequence[ScanSource],
        records: List[Optional[ScanRecord]],
        report: ScanReport,
        journal: Optional[ScanJournal],
    ) -> None:
        """Give up on a shard: every member design gets an error record."""
        message = (
            f"shard {shard.shard_id} failed after {shard.attempts} attempts: {error}"
        )
        for index in shard.indices:
            src = sources[index]
            records[index] = ScanRecord(
                name=src.name, sha256=src.sha256, source_path=src.path, error=message
            )
            report.n_errors += 1
        report.n_shard_failures += 1
        _SHARD_FAILURES.inc()
        if journal is not None:
            journal.record_shard(shard.shard_id, "failed", 0, shard.attempts)

    # -- scanning ------------------------------------------------------------
    def scan_sources(
        self,
        sources: Sequence[ScanSource],
        confidence: Optional[float] = None,
        resume: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> ScanReport:
        """Scan a corpus across the worker pool and merge deterministically.

        The merged :class:`ScanReport` lists records in input order with
        the exact p-values a serial :class:`ScanEngine` scan would produce
        (same model, same code, just sharded).  ``seconds_extract`` /
        ``seconds_inference`` are summed across workers (CPU seconds, not
        wall time); ``seconds_total`` is wall time.  With a cache attached,
        completed shards are flushed as they finish — that is what makes
        an interrupted scan resumable — and previously cached designs are
        served without touching the pool.  ``resume=True`` additionally
        continues the corpus journal of an interrupted run instead of
        starting a fresh one.  Retries, worker deaths and permanent shard
        failures are counted on the report (and the process-wide
        ``repro_engine_*`` counters).  With a ``tracer``, the run records
        a ``scheduler/scan`` span with one ``scheduler/shard`` child per
        shard — trace context crosses the multiprocessing boundary inside
        the shard task, and worker-side spans are merged back in.
        """
        if resume and self.cache is None:
            raise ValueError("resume=True requires a result cache")
        t_start = time.perf_counter()
        level = confidence if confidence is not None else self.default_confidence
        report = ScanReport(n_designs=len(sources), confidence_level=level)

        records, pending = resolve_cache_hits(self.cache, sources, level)
        report.n_cache_hits = len(sources) - len(pending)

        journal: Optional[ScanJournal] = None
        if self.cache is not None:
            digest = corpus_digest(sources)
            journal = ScanJournal(
                self.cache.namespace_dir / f"scan_state_{digest[:12]}.json",
                self.fingerprint,
                digest,
            )
            journal.start(len(sources), self.shard_size, resume=resume)

        shards = self._make_shards(pending, sources)
        queue: List[_Shard] = list(shards)
        pool = self._ensure_pool(len(shards))
        with trace_span(
            tracer, "scheduler/scan", shards=len(shards), designs=len(sources)
        ) as sched_span:
            trace_ctx = (
                (tracer.trace_id, sched_span.span_id) if tracer is not None else None
            )
            while queue:
                batch, queue = queue, []
                deaths_before = report.n_worker_deaths
                if pool is not None:
                    submitted = [
                        (shard, pool.apply_async(
                            _scan_shard_worker,
                            (self._shard_task(shard, sources, level, trace_ctx),),
                        ))
                        for shard in batch
                    ]

                    def _collect(shard: _Shard, async_result: Any):
                        try:
                            # The deadline turns a worker that died hard (whose
                            # result would never arrive) into a retryable failure.
                            return async_result.get(timeout=self.shard_timeout)
                        except multiprocessing.TimeoutError:
                            report.n_worker_deaths += 1
                            _WORKER_DEATHS.inc()
                            return (shard.shard_id, None, 0.0, 0.0, 0,
                                    f"no result within {self.shard_timeout:.0f}s "
                                    "(worker lost?)")
                        except Exception as exc:  # worker raised at pool level
                            return (shard.shard_id, None, 0.0, 0.0, 0,
                                    f"{type(exc).__name__}: {exc}")

                    # Lazy: each shard is absorbed (and its records flushed to
                    # the cache) as soon as its result is collected, so a crash
                    # mid-run loses at most the in-flight shards.
                    outcomes = ((shard, _collect(shard, ar)) for shard, ar in submitted)
                else:
                    engine = self._parent_engine()
                    engine.tracer = tracer  # serial shards trace in-process

                    def _run_serial(shard: _Shard):
                        with trace_span(
                            tracer,
                            "scheduler/shard",
                            shard=shard.shard_id,
                            designs=len(shard.indices),
                        ):
                            return _scan_shard_serial(
                                engine,
                                self._shard_task(shard, sources, level),
                                workers=self.front_end_workers,
                            )

                    outcomes = ((shard, _run_serial(shard)) for shard in batch)
                for shard, outcome in outcomes:
                    _, record_dicts, sec_extract, sec_inference, feature_hits, error = (
                        outcome[:6]
                    )
                    if tracer is not None and len(outcome) > 6 and outcome[6]:
                        tracer.adopt(outcome[6])
                    report.seconds_extract += sec_extract
                    report.seconds_inference += sec_inference
                    report.n_feature_hits += feature_hits
                    if error is None and record_dicts is not None:
                        self._absorb_shard(shard, record_dicts, records, report, journal)
                    else:
                        shard.attempts += 1
                        if shard.attempts <= self.max_retries:
                            queue.append(shard)
                            report.n_shard_retries += 1
                            _SHARD_RETRIES.inc()
                        else:
                            self._fail_shard(
                                shard, error or "no result", sources, records, report, journal
                            )
                if pool is not None and report.n_worker_deaths > deaths_before:
                    # Pool workers are dying mid-corpus (OOM killer, crashing
                    # native code): stop trusting the pool and run every
                    # remaining shard serially in the parent instead of
                    # burning the retry budget on replacement workers that
                    # may die the same way.
                    note_degraded("pool")
                    logger.warning(
                        "worker death detected; falling back to serial execution "
                        "for %d remaining shard(s)",
                        len(queue),
                    )
                    self._pool_broken = True
                    self.close()
                    pool = None

        report.records = [r for r in records if r is not None]
        if journal is not None:
            journal.complete()
        # Coarse stage view for ``--profile``.  These are CPU seconds
        # summed across pool workers, not slices of wall time, so they go
        # in under the ``_cpu`` suffix that ``profile_lines`` reports
        # without a share-of-total percentage.
        report.stage_seconds["extract_cpu"] = report.seconds_extract
        report.stage_seconds["infer_cpu"] = report.seconds_inference
        report.seconds_total = time.perf_counter() - t_start
        return report

    def scan_paths(
        self,
        inputs: Iterable[Union[str, Path]],
        confidence: Optional[float] = None,
        resume: bool = False,
    ) -> ScanReport:
        """Convenience wrapper: :func:`collect_sources` then :meth:`scan_sources`."""
        return self.scan_sources(
            collect_sources(inputs), confidence=confidence, resume=resume
        )


def _scan_shard_serial(
    engine: ScanEngine,
    task: Tuple[str, List[ScanSource], float],
    workers: Optional[int] = None,
) -> Tuple[str, Optional[List[dict]], float, float, int, Optional[str]]:
    """Serial-path twin of :func:`_scan_shard_worker` using a given engine.

    Unlike pool workers (which must extract in-process), the parent may
    fan the front-end out across ``workers`` extraction processes.  The
    optional fourth task element (the trace context) is ignored here: the
    serial path traces in-process through ``engine.tracer`` instead.
    """
    shard_id, shard_sources, level = task[0], task[1], task[2]
    try:
        report = engine.scan_sources(shard_sources, workers=workers, confidence=level)
        return (
            shard_id,
            [record.to_dict() for record in report.records],
            report.seconds_extract,
            report.seconds_inference,
            report.n_feature_hits,
            None,
        )
    except Exception as exc:  # shard failures are returned and retried, never raised
        return shard_id, None, 0.0, 0.0, 0, f"{type(exc).__name__}: {exc}"
