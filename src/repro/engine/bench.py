"""End-to-end scan throughput benchmark (written to ``BENCH_engine.json``).

Measures the three ways the same multi-design workload can be served:

* ``engine_scan_sequential`` — one independent scan invocation per design:
  each loads the persisted artifact (``ScanEngine.from_artifact``) and
  scans a single design, which is exactly what ``N`` separate
  ``python -m repro scan <file>`` calls (or the request-per-design agent
  pattern the ROADMAP targets) cost, minus interpreter startup;
* ``engine_scan_batched`` — one engine, one call for the whole batch: the
  artifact is loaded once, feature extraction is fanned out across the
  worker pool (where cores exist), and all designs go through the
  vectorized forward pass / ``searchsorted`` p-values in single calls;
* ``engine_scan_parallel_jobsN`` — the sharded scheduler
  (:class:`repro.engine.scheduler.ScanScheduler`) running extraction *and*
  inference across a persistent pool of ``N`` workers (the multi-core
  serving configuration; on a single-core container the pool costs roughly
  what it saves, and the recorded ratio reflects that honestly);
* ``engine_scan_cached`` — the batched call repeated against a warm
  content-hash cache (the steady-state rescan cost);
* ``engine_rescan_after_reload`` — the batched call under a **fresh model
  fingerprint** against a **warm feature store**: the recalibrate →
  hot-reload → rescan workflow, where the result tier is cold by
  construction (new fingerprint namespace) but the model-independent
  feature tier serves every row, so the scan pays only the forward pass.
  Each timed call opens a fresh :class:`FeatureStore` handle (a CLI
  rescan is a fresh process), so the number includes reading the packed
  shards off disk;
* ``engine_scan_fused_f32`` / ``engine_scan_int8`` — the same
  warm-feature-store scan under each production compute backend: with
  extraction served from the store, these isolate what the fused float32
  and int8 dynamic-quantized forward paths change (ratios against the
  warm ``numpy`` scan land in ``engine_scan_<backend>_vs_numpy_warm``).

All speedups are recorded against ``engine_scan_sequential``, plus
``engine_rescan_after_reload_vs_cold`` against the fully-cold batched
scan (the acceptance ratio for the feature tier); both sides are timed
in-process, best-of-N, with the same trained detector, so the ratios are
machine-independent in the same way as
``benchmarks/perf/check_regression.py``.
"""

from __future__ import annotations

import multiprocessing
import tempfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..core.config import ClassifierConfig, NoodleConfig
from ..features.pipeline import extract_modalities
from ..perf import BenchmarkSuite
from ..trojan import SuiteConfig, TrojanDataset
from .cache import ScanCache
from .feature_store import FeatureStore
from .scan import ScanEngine, ScanSource
from .scheduler import DEFAULT_SHARD_SIZE, ScanScheduler, default_jobs
from .training import train_detector

#: Default number of designs in the benchmark scan batch.
DEFAULT_N_DESIGNS = 48


def _quick_training_config(seed: int = 0) -> NoodleConfig:
    """A small configuration so the benchmark's one-off training is fast."""
    return NoodleConfig(
        classifier=ClassifierConfig(epochs=10, seed=seed),
        validation_fraction=0.2,
        seed=seed,
    )


def build_scan_batch(n_designs: int, seed: int = 23) -> list:
    """Generate a deterministic multi-design scan workload."""
    suite = TrojanDataset.generate(
        SuiteConfig(
            n_trojan_free=max(1, (2 * n_designs) // 3),
            n_trojan_infected=max(1, n_designs - (2 * n_designs) // 3),
            seed=seed,
        )
    )
    return [
        ScanSource(name=benchmark.name, source=benchmark.source)
        for benchmark in suite.benchmarks
    ]


def run_engine_benchmark(
    output: Union[str, Path],
    n_designs: int = DEFAULT_N_DESIGNS,
    workers: Optional[int] = None,
    repeats: int = 3,
    seed: int = 0,
    jobs: Optional[int] = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> BenchmarkSuite:
    """Train a quick detector, time the four scan modes, write the JSON.

    ``jobs`` sizes the scheduler pool for the parallel-scan measurement
    (default ``min(4, cpu_count)``).  Returns the populated
    :class:`BenchmarkSuite` (already written to ``output``).
    """
    rng = np.random.default_rng(seed)
    corpus = TrojanDataset.generate(
        SuiteConfig(n_trojan_free=20, n_trojan_infected=10, seed=seed + 1)
    )
    features = extract_modalities(corpus)
    train, _ = features.stratified_split(0.2, rng)
    result = train_detector(train, strategy="late", config=_quick_training_config(seed))
    model = result.model

    batch = build_scan_batch(n_designs, seed=seed + 23)
    meta = {"n_designs": len(batch), "strategy": result.strategy}

    suite = BenchmarkSuite("engine")

    with tempfile.TemporaryDirectory() as workdir:
        artifact = Path(workdir) / "artifact"
        from .artifacts import save_detector

        save_detector(model, artifact)

        def scan_sequential() -> None:
            # N independent invocations: each loads the artifact and scans
            # one design (what N separate CLI calls do, sans interpreter
            # startup, which would only widen the gap).
            for source in batch:
                ScanEngine.from_artifact(artifact).scan_sources([source], workers=1)

        def scan_batched() -> None:
            ScanEngine.from_artifact(artifact).scan_sources(batch, workers=workers)

        sequential = suite.time(
            scan_sequential, "engine_scan_sequential", repeats=repeats, meta=meta
        )
        batched = suite.time(
            scan_batched, "engine_scan_batched", repeats=repeats, meta=meta
        )
        suite.record_speedup("engine_scan_batched", sequential, batched)

        n_jobs = jobs if jobs is not None else default_jobs()
        parallel_name = f"engine_scan_parallel_jobs{n_jobs}"
        parallel_meta = dict(
            meta,
            jobs=n_jobs,
            shard_size=shard_size,
            cpu_count=multiprocessing.cpu_count() or 1,
        )
        with ScanScheduler.from_artifact(
            artifact, jobs=n_jobs, shard_size=shard_size
        ) as scheduler:

            def scan_parallel() -> None:
                # Extraction + inference sharded across the persistent pool;
                # the warmup call also amortises pool start-up, mirroring a
                # long-lived scan service.
                scheduler.scan_sources(batch)

            parallel = suite.time(
                scan_parallel, parallel_name, repeats=repeats, meta=parallel_meta
            )
        suite.record_speedup(parallel_name, sequential, parallel)

        cache = ScanCache(Path(workdir) / "cache", "bench")
        warm_engine = ScanEngine(model, fingerprint="bench", cache=cache)
        warm_engine.scan_sources(batch, workers=workers)  # warm the cache

        def scan_cached() -> None:
            warm_engine.scan_sources(batch, workers=workers)

        cached = suite.time(
            scan_cached, "engine_scan_cached", repeats=repeats, meta=meta
        )
        suite.record_speedup("engine_scan_cached", sequential, cached)

        # Warm-feature, cold-model rescan: the recalibrate -> reload ->
        # rescan workflow.  Populate the model-independent feature tier
        # once, then scan under a fingerprint no result cache has seen.
        feature_dir = Path(workdir) / "feature_cache"
        seed_store = FeatureStore(feature_dir)
        ScanEngine(model, fingerprint="bench_seed", feature_store=seed_store)\
            .scan_sources(batch, workers=workers)

        def scan_rescan_after_reload() -> None:
            # A fresh store handle per call: a post-reload CLI rescan is a
            # fresh process, so the packed shards are read off disk, and a
            # fresh fingerprint means every result-tier lookup misses.
            engine = ScanEngine(
                model,
                fingerprint="bench_reloaded",
                feature_store=FeatureStore(feature_dir),
            )
            report = engine.scan_sources(batch, workers=workers)
            assert report.n_feature_hits == len(batch), "feature tier missed"

        reload_meta = dict(meta, feature_rows=len(batch))
        reloaded = suite.time(
            scan_rescan_after_reload,
            "engine_rescan_after_reload",
            repeats=repeats,
            meta=reload_meta,
        )
        suite.record_speedup("engine_rescan_after_reload", sequential, reloaded)
        # The feature-tier acceptance ratio: warm features + cold model
        # vs the fully-cold batched scan of the same corpus.
        suite.record_speedup(
            "engine_rescan_after_reload_vs_cold", batched, reloaded
        )

        # Compute-backend scans over the same warm feature tier: with
        # extraction served from the store, the timed region is dominated
        # by the forward pass — exactly what the backends change.
        def scan_with_backend(backend: str) -> None:
            engine = ScanEngine(
                model,
                fingerprint=f"bench_{backend}",
                feature_store=FeatureStore(feature_dir),
                backend=backend,
                quant_state=None,
            )
            report = engine.scan_sources(batch, workers=workers)
            assert report.n_feature_hits == len(batch), "feature tier missed"

        for backend in ("fused_f32", "int8"):
            name = f"engine_scan_{backend}"
            timed = suite.time(
                lambda b=backend: scan_with_backend(b),
                name,
                repeats=repeats,
                meta=dict(meta, backend=backend, feature_rows=len(batch)),
            )
            suite.record_speedup(name, sequential, timed)
            # The backend ratio: same warm-feature scan, numpy vs this
            # backend's forward pass.
            suite.record_speedup(f"{name}_vs_numpy_warm", reloaded, timed)

    suite.write_json(output)
    return suite
