"""Content-addressed result cache for the scan engine.

Scan results are cached per design, keyed by the SHA-256 hash of the
design's source text, inside an index that is itself namespaced by the
*model fingerprint* (see :mod:`repro.engine.artifacts`).  Two consequences:

* editing a design's HDL changes its content hash, so the stale verdict is
  simply never looked up again (invalidation by construction);
* retraining the detector changes the fingerprint, which switches to a
  fresh index file, so verdicts can never leak across model versions.

The index is one JSON file per fingerprint under the cache directory,
written atomically (temp file + ``os.replace``) so a crashed scan never
leaves a truncated index behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from ..core.results import ScanRecord

#: Bump when the on-disk record layout changes.
CACHE_SCHEMA_VERSION = 1


class ScanCache:
    """Per-model, content-addressed store of :class:`ScanRecord` entries."""

    def __init__(self, directory: Union[str, Path], fingerprint: str) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self._index_path = self.directory / f"scan_cache_{fingerprint[:16]}.json"
        self._records: Dict[str, dict] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        if not self._index_path.is_file():
            return
        try:
            data = json.loads(self._index_path.read_text())
        except (json.JSONDecodeError, OSError):
            # A corrupt index is treated as empty; the next flush rewrites it.
            return
        if data.get("schema_version") != CACHE_SCHEMA_VERSION:
            return
        if data.get("fingerprint") != self.fingerprint:
            return
        self._records = dict(data.get("records", {}))

    # -- mapping-ish protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, sha256: str) -> bool:
        return sha256 in self._records

    def get(self, sha256: str) -> Optional[ScanRecord]:
        """The cached record for a content hash, marked ``cached=True``."""
        data = self._records.get(sha256)
        if data is None:
            return None
        record = ScanRecord.from_dict(data)
        record.cached = True
        return record

    def put(self, record: ScanRecord) -> None:
        """Insert or overwrite the record for its content hash.

        Records carrying an ``error`` are not cached: a front-end failure
        may be transient (e.g. an unreadable file) and is cheap to retry.
        """
        if record.error is not None:
            return
        stored = record.to_dict()
        stored["cached"] = False  # cached-ness is a property of the lookup
        self._records[record.sha256] = stored
        self._dirty = True

    def clear(self) -> None:
        """Drop all records (and the index file on the next flush)."""
        self._records = {}
        self._dirty = True

    # -- persistence --------------------------------------------------------
    def flush(self) -> Optional[Path]:
        """Atomically write the index to disk if anything changed."""
        if not self._dirty:
            return None
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "records": self._records,
        }
        tmp_path = self._index_path.with_suffix(".tmp")
        tmp_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp_path, self._index_path)
        self._dirty = False
        return self._index_path
