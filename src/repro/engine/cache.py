"""Sharded, content-addressed result cache for the scan engine.

Scan results are cached per design, keyed by the SHA-256 hash of the
design's source text, inside a store that is itself namespaced by the
*model fingerprint* (see :mod:`repro.engine.artifacts`).  Two consequences:

* editing a design's HDL changes its content hash, so the stale verdict is
  simply never looked up again (invalidation by construction);
* retraining the detector changes the fingerprint, which switches to a
  fresh namespace directory, so verdicts can never leak across model
  versions.

On disk the store is **sharded**: records live in per-shard JSON files
under ``<dir>/<fp16>/shards/``, keyed by a prefix of their content hash
(256 shards at the default 2-hex-char prefix).  Every shard file is
written atomically (temp file + ``os.replace``), and flushes run under a
namespace-wide lockfile with a read-merge-write protocol, so

* a crashed scan never leaves a truncated shard behind,
* two concurrent scans against the same cache directory cannot clobber
  each other's results — each flush merges the records already on disk
  with its own dirty records before replacing the file, and
* an interrupted scan's completed shards survive and are reused on the
  next run (the resume path of :class:`repro.engine.scheduler.ScanScheduler`).

Corrupt files (truncated JSON, unreadable bytes) are never fatal: they are
quarantined next to the store as ``*.corrupt`` with a logged warning and
the affected records are simply rescanned.  The pre-sharding single-file
format (``scan_cache_<fp16>.json`` at the cache root) is read
transparently and migrated into shard files on the first flush.
"""

from __future__ import annotations

import errno
import json
import logging
import os
import random
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Set, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from ..core.results import ScanRecord
from ..faults import (
    LOCK_ACQUIRE_DEADLINE_S,
    LOCK_RETRY_POLICY,
    LOCK_STALE_AFTER_S,
    RetryPolicy,
    corrupting_failpoint,
    failpoint,
)
from ..obs.metrics import REGISTRY

logger = logging.getLogger(__name__)

#: Bump when the on-disk record layout changes.  Version 1 was the single
#: JSON blob per fingerprint; version 2 is the sharded store.
CACHE_SCHEMA_VERSION = 2

#: Schema version of the legacy single-file format (still readable).
LEGACY_SCHEMA_VERSION = 1

#: Subdirectory of a namespace that holds the per-prefix shard files.
SHARDS_DIRNAME = "shards"

#: Default number of leading hex characters of the content hash that pick
#: a record's shard file (2 -> up to 256 shard files per namespace).
DEFAULT_SHARD_PREFIX_LEN = 2

# Result-tier cache telemetry (process-wide; see docs/OBSERVABILITY.md).
_CACHE_HITS = REGISTRY.counter(
    "repro_cache_result_hits_total", "Result-cache lookups served from memory."
)
_CACHE_MISSES = REGISTRY.counter(
    "repro_cache_result_misses_total", "Result-cache lookups that missed."
)
_CACHE_FLUSHES = REGISTRY.counter(
    "repro_cache_result_flushes_total", "Result-cache flushes that wrote shards."
)


class CacheLockTimeout(RuntimeError):
    """Raised when the namespace lockfile cannot be acquired in time."""


class _NamespaceLock:
    """Advisory lock guarding a cache namespace during flushes.

    On POSIX the lock is a kernel ``flock`` on the lockfile: it is
    released automatically when the holder exits — even SIGKILLed mid
    flush — so there are no stale locks to detect, nothing to steal, and
    no time-of-check races between waiters.  The lockfile itself is left
    in place after release (unlinking it would race fresh acquirers).

    Where ``fcntl`` is unavailable the class falls back to the portable
    ``O_CREAT | O_EXCL`` lockfile dance with best-effort staleness
    breaking: the holder's pid is recorded, a lock whose pid is provably
    dead is broken, and a lock whose holder cannot be checked is broken
    after ``stale_after`` seconds.  The fallback has a narrow
    check-then-unlink window two waiters could race through; the primary
    ``flock`` path does not.
    """

    def __init__(
        self,
        path: Path,
        timeout: float = LOCK_ACQUIRE_DEADLINE_S,
        stale_after: float = LOCK_STALE_AFTER_S,
        retry_policy: RetryPolicy = LOCK_RETRY_POLICY,
    ) -> None:
        self.path = path
        self.timeout = timeout
        self.stale_after = stale_after
        self.retry_policy = retry_policy
        # Per-lock jitter source so blocked writers do not poll in lockstep.
        self._rng = random.Random()
        self._fd: Optional[int] = None

    def _holder_state(self) -> str:
        """``"alive"``, ``"dead"`` or ``"unknown"`` for the recorded holder pid."""
        try:
            pid = int(self.path.read_text().strip() or "0")
        except (OSError, ValueError):
            return "unknown"
        if pid <= 0 or pid == os.getpid():
            return "unknown"
        try:
            os.kill(pid, 0)  # signal 0: existence probe, delivers nothing
        except ProcessLookupError:
            return "dead"
        except OSError:
            return "alive"  # exists but not ours (EPERM)
        return "alive"

    def _try_break_stale(self) -> None:
        """Remove the lockfile if its holder is provably dead or unknowably old.

        A lock whose holder pid is verifiably alive is never stolen, no
        matter its age — a legitimately slow flush keeps its lock and the
        waiter times out instead.  The age fallback only applies when the
        holder cannot be checked (other machine, unreadable file).
        """
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return  # already released
        holder = self._holder_state()
        if holder == "alive":
            return
        if holder == "unknown" and age < self.stale_after:
            return
        logger.warning("breaking stale cache lock %s (age %.1fs)", self.path, age)
        try:
            self.path.unlink()
        except OSError:
            pass  # somebody else broke it first

    def _acquire_flock(self) -> None:
        """POSIX path: take an exclusive kernel lock on the lockfile."""
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        deadline = time.monotonic() + self.timeout
        attempt = 0
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError as exc:
                if time.monotonic() >= deadline:
                    os.close(fd)
                    raise CacheLockTimeout(
                        f"could not acquire cache lock {self.path} "
                        f"within {self.timeout:.1f}s"
                    ) from exc
                attempt += 1
                time.sleep(self.retry_policy.backoff_s(attempt, self._rng))
            else:
                os.ftruncate(fd, 0)
                os.write(fd, f"{os.getpid()}\n".encode("ascii"))
                self._fd = fd
                return

    def _acquire_lockfile(self) -> None:
        """Fallback path: the O_CREAT|O_EXCL dance with staleness breaking."""
        deadline = time.monotonic() + self.timeout
        attempt = 0
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except OSError as exc:
                if exc.errno != errno.EEXIST:
                    raise
                self._try_break_stale()
                if time.monotonic() >= deadline:
                    raise CacheLockTimeout(
                        f"could not acquire cache lock {self.path} "
                        f"within {self.timeout:.1f}s"
                    ) from exc
                attempt += 1
                time.sleep(self.retry_policy.backoff_s(attempt, self._rng))
            else:
                os.write(fd, f"{os.getpid()}\n".encode("ascii"))
                os.close(fd)
                return

    def acquire(self) -> None:
        """Block until the lock is held, or raise :class:`CacheLockTimeout`."""
        if fcntl is not None:
            self._acquire_flock()
        else:  # pragma: no cover - non-POSIX platforms
            self._acquire_lockfile()

    def release(self) -> None:
        """Release the lock (idempotent)."""
        if self._fd is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            finally:
                os.close(self._fd)
                self._fd = None
            # The lockfile stays in place: unlinking would race acquirers
            # that already opened it.
            return
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "_NamespaceLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def atomic_write_json(path: Path, payload: dict) -> None:
    """Write ``payload`` as JSON via a sibling temp file + ``os.replace``.

    The temp name embeds the writer's pid so two processes atomically
    rewriting the same file (e.g. the scheduler journal of the same
    corpus) never race on one temp path; last ``os.replace`` wins.
    """
    tmp_path = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp_path, path)


def _quarantine(path: Path, reason: Exception) -> None:
    """Move an unreadable cache file aside as ``<name>.corrupt`` and warn."""
    target = path.with_name(path.name + ".corrupt")
    logger.warning(
        "quarantining corrupt cache file %s -> %s (%s: %s)",
        path,
        target.name,
        type(reason).__name__,
        reason,
    )
    try:
        os.replace(path, target)
    except OSError:
        pass  # a concurrent scan may have quarantined it already


def _count_store_records(path: Path) -> int:
    """Number of records in one store file (0 for unreadable files)."""
    try:
        data = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError, OSError):
        return 0
    records = data.get("records") if isinstance(data, dict) else None
    return len(records) if isinstance(records, dict) else 0


def _file_size(path: Path) -> int:
    """A file's size in bytes, 0 if it vanished (concurrent quarantine)."""
    try:
        return path.stat().st_size
    except OSError:
        return 0


def describe_result_tier(directory: Union[str, Path]) -> Dict[str, Any]:
    """Describe every fingerprint namespace under a result-cache root.

    Pure directory walking plus JSON reads — no :class:`ScanCache` is
    opened and no lock is taken, so this is safe against a live cache
    (``python -m repro cache-info`` uses it).  Legacy single-file stores
    at the root are reported under their fingerprint prefix with
    ``legacy: True``; quarantined ``*.corrupt`` files are counted so an
    operator notices corruption that the engine quietly survived.
    """
    root = Path(directory)
    namespaces: List[Dict[str, Any]] = []
    if root.is_dir():
        for namespace in sorted(p for p in root.iterdir() if p.is_dir()):
            # Skip the feature tier's conventional home under the same root.
            if namespace.name == "features":
                continue
            shards = sorted((namespace / SHARDS_DIRNAME).glob("*.json"))
            corrupt = list(namespace.rglob("*.corrupt"))
            if not shards and not corrupt:
                continue
            namespaces.append(
                {
                    "fingerprint": namespace.name,
                    "n_shards": len(shards),
                    "n_records": sum(_count_store_records(p) for p in shards),
                    "bytes": sum(_file_size(p) for p in shards),
                    "n_corrupt": len(corrupt),
                    "legacy": False,
                }
            )
        for legacy in sorted(root.glob("scan_cache_*.json")):
            namespaces.append(
                {
                    "fingerprint": legacy.stem.replace("scan_cache_", ""),
                    "n_shards": 1,
                    "n_records": _count_store_records(legacy),
                    "bytes": _file_size(legacy),
                    "n_corrupt": 0,
                    "legacy": True,
                }
            )
    return {
        "directory": str(root),
        "namespaces": namespaces,
        "n_records": sum(ns["n_records"] for ns in namespaces),
        "bytes": sum(ns["bytes"] for ns in namespaces),
    }


class ScanCache:
    """Per-model, content-addressed store of :class:`ScanRecord` entries.

    Parameters
    ----------
    directory:
        Cache root shared by all fingerprints (e.g. ``.repro_cache``).
    fingerprint:
        Model fingerprint namespacing this store (records never cross it).
    shard_prefix_len:
        How many leading hex characters of a record's content hash select
        its shard file.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        fingerprint: str,
        shard_prefix_len: int = DEFAULT_SHARD_PREFIX_LEN,
    ) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.shard_prefix_len = shard_prefix_len
        self.namespace_dir = self.directory / fingerprint[:16]
        self._shards_dir = self.namespace_dir / SHARDS_DIRNAME
        self._legacy_path = self.directory / f"scan_cache_{fingerprint[:16]}.json"
        self._lock = _NamespaceLock(self.namespace_dir / ".lock")
        self._records: Dict[str, dict] = {}
        self._dirty_keys: Set[str] = set()
        self._cleared = False
        self._load()

    # -- loading -------------------------------------------------------------
    def _shard_path(self, sha256: str) -> Path:
        """The shard file a content hash belongs to."""
        return self._shards_dir / f"{sha256[: self.shard_prefix_len]}.json"

    def _read_store_file(self, path: Path, expected_version: int) -> Dict[str, dict]:
        """Read one store file; corrupt files are quarantined, not fatal."""
        try:
            raw = corrupting_failpoint("cache.shard.read", path.read_bytes())
            data = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
            _quarantine(path, exc)
            return {}
        if not isinstance(data, dict):
            _quarantine(path, ValueError("top-level JSON value is not an object"))
            return {}
        if data.get("schema_version") != expected_version:
            return {}
        if data.get("fingerprint") != self.fingerprint:
            return {}
        records = data.get("records", {})
        return dict(records) if isinstance(records, dict) else {}

    def _load(self) -> None:
        """Populate the in-memory view from legacy + shard files on disk."""
        self._records = {}
        if self._legacy_path.is_file():
            legacy = self._read_store_file(self._legacy_path, LEGACY_SCHEMA_VERSION)
            self._records.update(legacy)
            # Mark legacy records dirty so the next flush migrates them into
            # shard files (and retires the legacy blob).
            self._dirty_keys.update(legacy)
        if self._shards_dir.is_dir():
            for path in sorted(self._shards_dir.glob("*.json")):
                self._records.update(
                    self._read_store_file(path, CACHE_SCHEMA_VERSION)
                )

    def reload(self) -> None:
        """Re-read the on-disk store, keeping local unflushed records.

        Lets a long-lived cache handle pick up records flushed by a
        concurrent scan; local dirty records win over the disk copy.
        """
        dirty = {key: self._records[key] for key in self._dirty_keys if key in self._records}
        self._load()
        self._records.update(dirty)
        self._dirty_keys.update(dirty)

    # -- mapping-ish protocol ------------------------------------------------
    def __len__(self) -> int:
        """Number of records currently visible (flushed or not)."""
        return len(self._records)

    def __contains__(self, sha256: str) -> bool:
        """Whether a record for this content hash is present."""
        return sha256 in self._records

    def get(self, sha256: str) -> Optional[ScanRecord]:
        """The cached record for a content hash, marked ``cached=True``."""
        data = self._records.get(sha256)
        if data is None:
            _CACHE_MISSES.inc()
            return None
        record = ScanRecord.from_dict(data)
        record.cached = True
        _CACHE_HITS.inc()
        return record

    def put(self, record: ScanRecord) -> None:
        """Insert or overwrite the record for its content hash.

        Records carrying an ``error`` are not cached: a front-end failure
        may be transient (e.g. an unreadable file) and is cheap to retry.
        """
        if record.error is not None:
            return
        stored = record.to_dict()
        stored["cached"] = False  # cached-ness is a property of the lookup
        self._records[record.sha256] = stored
        self._dirty_keys.add(record.sha256)

    def put_many(self, records: Iterable[ScanRecord]) -> None:
        """Insert several records (see :meth:`put`)."""
        for record in records:
            self.put(record)

    def clear(self) -> None:
        """Drop all records (and every shard file on the next flush)."""
        self._records = {}
        self._dirty_keys = set()
        self._cleared = True

    # -- persistence --------------------------------------------------------
    def _delete_store_files(self) -> None:
        """Remove the legacy blob and every shard file (lock held)."""
        if self._legacy_path.is_file():
            self._legacy_path.unlink()
        if self._shards_dir.is_dir():
            for path in self._shards_dir.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass

    def flush(self) -> Optional[Path]:
        """Atomically persist dirty records to their shard files.

        Runs under the namespace lockfile with a read-merge-write cycle per
        affected shard: records another process flushed meanwhile are kept
        (and absorbed into this cache's in-memory view), our dirty records
        win for their own keys.  Returns the namespace directory when
        anything was written, ``None`` otherwise.
        """
        if not self._dirty_keys and not self._cleared:
            return None
        self._shards_dir.mkdir(parents=True, exist_ok=True)
        by_shard: Dict[Path, List[str]] = {}
        for key in self._dirty_keys:
            by_shard.setdefault(self._shard_path(key), []).append(key)
        with self._lock:
            failpoint("cache.flush.io")
            if self._cleared:
                self._delete_store_files()
                self._cleared = False
            migrating = self._legacy_path.is_file()
            for path, keys in sorted(by_shard.items()):
                on_disk = (
                    self._read_store_file(path, CACHE_SCHEMA_VERSION)
                    if path.is_file()
                    else {}
                )
                merged = dict(on_disk)
                merged.update((key, self._records[key]) for key in keys)
                atomic_write_json(
                    path,
                    {
                        "schema_version": CACHE_SCHEMA_VERSION,
                        "fingerprint": self.fingerprint,
                        "records": merged,
                    },
                )
                for key, value in on_disk.items():
                    self._records.setdefault(key, value)
            if migrating:
                # Every legacy record was marked dirty at load time, so by
                # now they all live in shard files; retire the old blob.
                self._legacy_path.unlink()
        self._dirty_keys.clear()
        _CACHE_FLUSHES.inc()
        return self.namespace_dir
