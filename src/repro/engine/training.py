"""Training and recalibration entry points for the scan engine.

This module owns the "fit side" of the train-once / scan-many split:

* :func:`build_strategies` — instantiate the paper's four Table I fusion
  strategies from one shared configuration (moved here from
  ``repro.experiments.common`` so experiments and the engine share one
  definition);
* :func:`train_detector` — fit a detector by strategy name, including the
  full NOODLE winner-selection flow (Algorithm 2);
* :func:`recalibrate_detector` — refresh a fitted detector's conformal
  calibration on new labelled data *without* retraining the CNNs, which is
  what ``python -m repro calibrate`` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..conformal import InductiveConformalClassifier
from ..core.config import NoodleConfig
from ..core.fusion import (
    ConformalFusionModel,
    EarlyFusionModel,
    LateFusionModel,
    SingleModalityModel,
)
from ..core.noodle import NOODLE
from ..core.results import NoodleReport
from ..features.pipeline import MultimodalFeatures

#: Strategy names accepted by :func:`train_detector`.
TRAINABLE_STRATEGIES = ("noodle", "late", "early", "single")


def build_strategies(config: NoodleConfig) -> Dict[str, ConformalFusionModel]:
    """Instantiate the four Table I strategies with a shared configuration."""
    return {
        "graph": SingleModalityModel("graph", config),
        "tabular": SingleModalityModel("tabular", config),
        "early_fusion": EarlyFusionModel(config),
        "late_fusion": LateFusionModel(config),
    }


@dataclass
class TrainingResult:
    """A fitted detector plus how it was obtained."""

    model: ConformalFusionModel
    strategy: str
    #: Winner-selection report, present only for ``strategy="noodle"``.
    report: Optional[NoodleReport] = None
    #: The fitted NOODLE wrapper (``strategy="noodle"`` only) — pass it to
    #: :func:`repro.engine.artifacts.save_detector` so the winner-selection
    #: report is persisted in the manifest.
    noodle: Optional[NOODLE] = None

    @property
    def persistable(self):
        """What to hand to ``save_detector``: the NOODLE wrapper when present."""
        return self.noodle if self.noodle is not None else self.model


def train_detector(
    features: MultimodalFeatures,
    strategy: str = "noodle",
    config: Optional[NoodleConfig] = None,
    modality: Optional[str] = None,
) -> TrainingResult:
    """Fit a detector on labelled multimodal features.

    ``strategy`` selects what gets trained:

    * ``"noodle"`` — the full Algorithm 2 flow (fit early and late fusion,
      keep the validation-Brier winner);
    * ``"late"`` / ``"early"`` — one fusion strategy directly;
    * ``"single"`` — a single-modality reference model (``modality``
      required).

    Returns a :class:`TrainingResult`; its ``model`` is ready for
    :func:`repro.engine.artifacts.save_detector`.
    """
    config = config or NoodleConfig()
    if strategy == "noodle":
        noodle = NOODLE(config)
        report = noodle.fit(features)
        return TrainingResult(
            model=noodle.model, strategy="noodle", report=report, noodle=noodle
        )
    if strategy == "late":
        model: ConformalFusionModel = LateFusionModel(config)
    elif strategy == "early":
        model = EarlyFusionModel(config)
    elif strategy == "single":
        if modality is None:
            raise ValueError("strategy 'single' requires a modality name")
        model = SingleModalityModel(modality, config)
    else:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {TRAINABLE_STRATEGIES}"
        )
    model.fit(features)
    return TrainingResult(model=model, strategy=strategy)


def _fresh_icp(config: NoodleConfig, offset: int = 0) -> InductiveConformalClassifier:
    """A new conformal predictor seeded the same way ``fit()`` seeds them."""
    return InductiveConformalClassifier(
        nonconformity=config.nonconformity,
        mondrian=config.mondrian,
        rng=np.random.default_rng(config.seed + 17 + offset),
    )


def recalibrate_detector(
    model: ConformalFusionModel, features: MultimodalFeatures
) -> ConformalFusionModel:
    """Re-calibrate a fitted detector's ICP(s) on fresh labelled data.

    The CNN classifiers are left untouched; only the conformal calibration
    scores (and their sorted caches) are rebuilt from the new data.  This is
    the cheap way to adapt a deployed detector to a new design population —
    conformal validity only needs the *calibration* set to be exchangeable
    with future test designs.

    Returns the same model instance, recalibrated in place.
    """
    if not getattr(model, "_fitted", False):
        raise RuntimeError("cannot recalibrate an unfitted detector; call fit() first")
    labels = features.labels
    config = model.config
    if isinstance(model, SingleModalityModel):
        x = features.modality(model.modality)
        model._icp = _fresh_icp(config).calibrate(
            model._classifier.predict_proba(x), labels
        )
    elif isinstance(model, EarlyFusionModel):
        x = model._joint_features(features)
        model._icp = _fresh_icp(config).calibrate(
            model._classifier.predict_proba(x), labels
        )
    elif isinstance(model, LateFusionModel):
        for offset, modality in enumerate(config.modalities):
            x = features.modality(modality)
            model._icps[modality] = _fresh_icp(config, offset).calibrate(
                model._classifiers[modality].predict_proba(x), labels
            )
    else:
        raise TypeError(f"cannot recalibrate model of type {type(model).__name__}")
    return model
