"""``python -m repro`` — the scan-engine command line.

Subcommands (see ``docs/ENGINE.md`` for a walkthrough):

* ``train``     — generate/derive a labelled corpus, fit a detector, save
  an artifact directory;
* ``calibrate`` — re-calibrate a saved detector's conformal state on fresh
  labelled data (no CNN retraining);
* ``scan``      — run the batched scan pipeline over HDL files/directories
  (or a generated demo batch) using a saved artifact; ``--backend``
  selects the inference compute backend (``numpy`` golden float64,
  ``fused_f32``, ``int8``);
* ``report``    — pretty-print the triage queues of a saved scan-results
  JSON;
* ``cache-info`` — report both cache tiers under a cache directory (the
  fingerprint-namespaced result tier and the model-independent feature
  tier);
* ``cache-gc``  — garbage-collect the feature tier: fold append-only
  segment files into their base shards and remove retired schema
  namespaces;
* ``serve``     — run the long-lived scan service (micro-batching HTTP
  server, see ``docs/SERVING.md``) until SIGTERM/SIGINT;
* ``bench``     — run the end-to-end throughput benchmark and write
  ``BENCH_engine.json``;
* ``bench-serve`` — run the serving load benchmark and write
  ``BENCH_serve.json``.

Every subcommand is pure argparse + engine API; the module is import-safe
and the tests drive :func:`main` in-process.

Exit codes are consistent across subcommands: ``0`` on success, ``1`` on a
runtime failure (missing/corrupt artifact or input, no scannable sources,
every design failing the front-end), ``2`` on a usage error (argparse
errors, contradictory flags).  Failures print an ``error: ...`` line to
stderr instead of a traceback.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from .. import __version__
from ..core.config import NoodleConfig, default_config
from ..faults import DEFAULT_MAX_QUEUE_DEPTH, FAILPOINTS_ENV, FailpointSpecError
from ..faults import configure as configure_failpoints
from ..features.image import DEFAULT_IMAGE_SIZE
from ..features.pipeline import extract_modalities
from ..gan import AmplificationConfig, GANConfig
from ..nn.backend import DEFAULT_BACKEND, available_backends
from ..obs.drift import (
    DEFAULT_CLEAR_MARGIN,
    DEFAULT_MIN_OBSERVATIONS,
    DEFAULT_TRIP_MARGIN,
    DEFAULT_WINDOW,
)
from ..obs.tracing import Tracer, trace_span
from ..trojan import SuiteConfig, TrojanDataset
from .artifacts import ArtifactError, load_detector, save_detector
from .bench import DEFAULT_N_DESIGNS, build_scan_batch, run_engine_benchmark
from .cache import CacheLockTimeout, describe_result_tier
from .feature_store import (
    default_feature_store_dir,
    describe_feature_tier,
    gc_feature_tier,
)
from .scan import HDL_SUFFIXES, ScanEngine, ScanReport, collect_sources
from .scheduler import DEFAULT_SHARD_SIZE, ScanScheduler
from .training import TRAINABLE_STRATEGIES, recalibrate_detector, train_detector

#: Exit codes shared by every subcommand.
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2


def _fail(message: str) -> int:
    """Print a consistent ``error:`` line to stderr and return exit code 1."""
    print(f"error: {message}", file=sys.stderr)
    return EXIT_FAILURE


def _check_backend(name: str) -> bool:
    """Validate a ``--backend`` value, printing the usage error if unknown.

    Returns ``True`` when the name is known.  Validated here (not via
    argparse ``choices``) so plugin backends registered through
    :func:`repro.nn.register_backend` are accepted, and unknown names exit
    with the usage code (2) rather than the runtime-failure code.
    """
    if name in available_backends():
        return True
    print(
        f"error: unknown compute backend {name!r}; "
        f"known backends: {', '.join(available_backends())}",
        file=sys.stderr,
    )
    return False


def _add_backend_option(parser: argparse.ArgumentParser) -> None:
    """The ``--backend`` flag shared by ``scan`` and ``serve``."""
    parser.add_argument(
        "--backend",
        default=DEFAULT_BACKEND,
        metavar="NAME",
        help="inference compute backend: 'numpy' (float64 golden path), "
        "'fused_f32' (fused float32 forward), or 'int8' (dynamic-quantized "
        "scanning; quantized weights are cached in the artifact directory)",
    )


def _add_failpoints_option(parser: argparse.ArgumentParser) -> None:
    """The ``--failpoints`` flag shared by ``scan`` and ``serve``."""
    parser.add_argument(
        "--failpoints",
        default=None,
        metavar="SPEC",
        help="activate fault-injection failpoints in this process, e.g. "
        "'cache.flush.io=error:OSError;scheduler.worker.body=kill,p=0.5' "
        "(equivalent to setting REPRO_FAILPOINTS; scheduler worker "
        "processes inherit the spec through the environment — see "
        "docs/ROBUSTNESS.md for the grammar)",
    )


def _apply_failpoints(args: argparse.Namespace) -> bool:
    """Activate a ``--failpoints`` spec; False (usage error) on a bad one."""
    spec = getattr(args, "failpoints", None)
    if spec is None:
        return True
    try:
        configure_failpoints(spec)
    except FailpointSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return False
    # Spawned/forked scheduler workers re-read the environment, so the
    # spec must live there too, not just in this process's registry.
    os.environ[FAILPOINTS_ENV] = spec
    return True


def _add_suite_options(parser: argparse.ArgumentParser) -> None:
    """Options controlling the synthetic labelled corpus a command generates."""
    group = parser.add_argument_group("corpus generation")
    group.add_argument(
        "--trojan-free", type=int, default=36, help="clean designs in the corpus"
    )
    group.add_argument(
        "--trojan-infected", type=int, default=18, help="infected designs in the corpus"
    )
    group.add_argument("--suite-seed", type=int, default=7, help="corpus generation seed")


def _generate_corpus(args: argparse.Namespace):
    """Generate the labelled corpus described by the suite options."""
    config = SuiteConfig(
        n_trojan_free=args.trojan_free,
        n_trojan_infected=args.trojan_infected,
        seed=args.suite_seed,
    )
    dataset = TrojanDataset.generate(config)
    return extract_modalities(dataset)


def _training_config(args: argparse.Namespace) -> NoodleConfig:
    """Build the NoodleConfig a ``train`` invocation asked for."""
    config = default_config(seed=args.seed)
    if args.quick:
        config.classifier.epochs = 15
    if args.epochs is not None:
        config.classifier.epochs = args.epochs
    if args.amplify:
        config.amplify = True
        config.amplification = AmplificationConfig(
            target_total=args.target_total,
            gan=GANConfig(epochs=80 if args.quick else 300, seed=args.seed + 2),
        )
    config.validate()
    return config


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------


def _cmd_train(args: argparse.Namespace) -> int:
    print(
        f"generating corpus: {args.trojan_free} clean + "
        f"{args.trojan_infected} infected designs (seed {args.suite_seed})"
    )
    features = _generate_corpus(args)
    config = _training_config(args)
    print(f"training strategy {args.strategy!r} ({config.classifier.epochs} epochs)")
    result = train_detector(
        features, strategy=args.strategy, config=config, modality=args.modality
    )
    extra = {"trained_on": f"synthetic suite seed={args.suite_seed}"}
    if result.report is not None:
        for line in result.report.summary_lines():
            print(line)
    # save_detector persists the NOODLE winner-selection report when handed
    # the fitted NOODLE wrapper (result.persistable).
    path = save_detector(result.persistable, args.artifact, extra=extra)
    print(f"saved artifact: {path}")
    return EXIT_OK


def _cmd_calibrate(args: argparse.Namespace) -> int:
    model, manifest = load_detector(args.artifact)
    print(f"loaded {manifest['kind']} detector (fingerprint {manifest['fingerprint'][:12]})")
    features = _generate_corpus(args)
    recalibrate_detector(model, features)
    path = save_detector(
        model,
        args.artifact,
        extra=manifest.get("extra"),
        noodle_report=manifest.get("noodle_report"),
    )
    new_manifest = json.loads((Path(path) / "manifest.json").read_text())
    print(
        f"recalibrated on {len(features)} designs; "
        f"new fingerprint {new_manifest['fingerprint'][:12]}"
    )
    return EXIT_OK


def _feature_store_dir(args: argparse.Namespace) -> Optional[Path]:
    """Resolve the feature-tier root a scan/serve invocation asked for.

    The tier defaults to on whenever the result cache is on (it lives
    under the same root); ``--no-feature-cache`` disables just it, and an
    explicit ``--feature-cache`` keeps it even under ``--no-cache`` (the
    recalibration workflow: model verdicts must be fresh, extracted
    features cannot go stale).
    """
    enabled = args.feature_cache if args.feature_cache is not None else not args.no_cache
    return default_feature_store_dir(args.cache_dir) if enabled else None


def _cmd_scan(args: argparse.Namespace) -> int:
    if not _check_backend(args.backend):
        return EXIT_USAGE
    if not _apply_failpoints(args):
        return EXIT_USAGE
    if args.resume and args.no_cache:
        print("error: --resume needs the result cache; drop --no-cache", file=sys.stderr)
        return EXIT_USAGE
    cache_dir = None if args.no_cache else args.cache_dir
    feature_dir = _feature_store_dir(args)
    # With --trace, every pipeline stage records a span under one "scan"
    # root; the resulting JSONL reconstructs the full pipeline tree.
    tracer = Tracer(trace_id="scan") if args.trace else None
    with trace_span(tracer, "scan") as span_root:
        t_collect = time.perf_counter()
        with trace_span(tracer, "scan/collect"):
            if args.generate:
                sources = build_scan_batch(args.generate, seed=args.generate_seed)
                print(f"generated a demo batch of {len(sources)} designs")
            else:
                if not args.inputs:
                    print(
                        "error: provide HDL files/directories or --generate N",
                        file=sys.stderr,
                    )
                    return EXIT_USAGE
                sources = collect_sources(args.inputs)
                if not sources:
                    return _fail(
                        "no scannable sources under "
                        + ", ".join(str(i) for i in args.inputs)
                        + f" (looked for {', '.join(HDL_SUFFIXES)} files)"
                    )
        seconds_collect = time.perf_counter() - t_collect
        span_root.attrs["designs"] = len(sources)
        if args.jobs > 1 or args.resume:
            with ScanScheduler.from_artifact(
                args.artifact,
                cache_dir=cache_dir,
                feature_store_dir=feature_dir,
                jobs=args.jobs,
                shard_size=args.shard_size,
                front_end_workers=args.workers,
                backend=args.backend,
            ) as scheduler:
                report = scheduler.scan_sources(
                    sources,
                    confidence=args.confidence,
                    resume=args.resume,
                    tracer=tracer,
                )
        else:
            engine = ScanEngine.from_artifact(
                args.artifact,
                cache_dir=cache_dir,
                feature_store_dir=feature_dir,
                backend=args.backend,
            )
            report = engine.scan_sources(
                sources, workers=args.workers, confidence=args.confidence, tracer=tracer
            )
    report.stage_seconds["collect"] = seconds_collect
    if tracer is not None:
        trace_path = Path(args.trace)
        if trace_path.parent != Path("."):
            trace_path.parent.mkdir(parents=True, exist_ok=True)
        n_spans = tracer.write_jsonl(trace_path)
        print(f"wrote trace: {trace_path} ({n_spans} spans)")
    for line in report.summary_lines():
        print(line)
    if args.profile:
        for line in report.profile_lines():
            print(line)
    if args.output:
        output = Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
        print(f"wrote results: {output}")
    else:
        _print_triage(report, verbose=args.verbose)
    if report.n_designs and report.n_errors == report.n_designs:
        return _fail(
            f"all {report.n_designs} designs failed the front-end; "
            "nothing was scanned"
        )
    return EXIT_OK


def _print_triage(report: ScanReport, verbose: bool = False) -> None:
    """Print the accept / reject / review / error queues of a scan report."""
    queues = report.triage()
    titles = {
        "accept": "ACCEPT — confidently Trojan-free",
        "reject": "REJECT — confidently Trojan-infected",
        "review": "MANUAL REVIEW — conformal region is uncertain/empty",
        "error": "ERROR — front-end failure",
    }
    for key in ("accept", "reject", "review", "error"):
        entries = queues[key]
        if not entries and not verbose:
            continue
        print(f"\n{titles[key]} ({len(entries)})")
        for record in entries:
            if record.decision is None:
                print(f"  {record.name:<28} {record.error}")
            else:
                decision = record.decision
                cached = " [cached]" if record.cached else ""
                print(
                    f"  {record.name:<28} P(infected)={decision.probability_infected:.3f} "
                    f"confidence={decision.confidence:.2f} "
                    f"credibility={decision.credibility:.2f}{cached}"
                )


def _cmd_report(args: argparse.Namespace) -> int:
    data = json.loads(Path(args.input).read_text())
    report = ScanReport.from_dict(data)
    for line in report.summary_lines():
        print(line)
    if report.stage_seconds:
        for line in report.profile_lines():
            print(line)
    _print_triage(report, verbose=True)
    return EXIT_OK


def _format_bytes(n: int) -> str:
    """Human-readable byte count (``cache-info`` output)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{int(n)} B"  # pragma: no cover - unreachable


def _cmd_cache_info(args: argparse.Namespace) -> int:
    result = describe_result_tier(args.cache_dir)
    features = describe_feature_tier(default_feature_store_dir(args.cache_dir))
    if args.json:
        print(
            json.dumps(
                {"result_tier": result, "feature_tier": features},
                indent=2,
                sort_keys=True,
            )
        )
        return EXIT_OK
    print(f"cache directory: {args.cache_dir}")
    print(
        f"result tier   : {result['n_records']} records in "
        f"{len(result['namespaces'])} model namespaces "
        f"({_format_bytes(result['bytes'])})"
    )
    for ns in result["namespaces"]:
        legacy = " [legacy v1 layout]" if ns["legacy"] else ""
        corrupt = (
            f", {ns['n_corrupt']} quarantined" if ns["n_corrupt"] else ""
        )
        print(
            f"  model {ns['fingerprint']}: {ns['n_records']} records, "
            f"{ns['n_shards']} shards ({_format_bytes(ns['bytes'])}){corrupt}{legacy}"
        )
    print(
        f"feature tier  : {features['n_rows']} rows in "
        f"{len(features['namespaces'])} schema namespaces "
        f"({_format_bytes(features['bytes'])})"
    )
    for ns in features["namespaces"]:
        print(
            f"  schema {ns['schema']}: {ns['n_rows']} rows, "
            f"{ns['n_shards']} shards ({_format_bytes(ns['bytes'])})"
        )
    return EXIT_OK


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    summary = gc_feature_tier(
        default_feature_store_dir(args.cache_dir), image_size=args.image_size
    )
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return EXIT_OK
    print(f"feature tier: {summary['directory']}")
    print(
        f"compacted schema {summary['current_schema']}: "
        f"{summary['n_segments_folded']} segment files folded into base shards"
    )
    removed = summary["retired_namespaces_removed"]
    if removed:
        print(
            f"removed {len(removed)} retired schema namespaces "
            f"({_format_bytes(summary['bytes_reclaimed'])} reclaimed): "
            + ", ".join(removed)
        )
    else:
        print("no retired schema namespaces to remove")
    return EXIT_OK


def _parse_serve_artifacts(
    args: argparse.Namespace,
) -> Tuple[Dict[str, str], Optional[str]]:
    """Resolve ``serve``'s model set from ``--fleet`` and ``--artifact``.

    A fleet manifest (if given) seeds the mapping; each ``--artifact``
    then adds or overrides one model — ``NAME=DIR`` registers it under
    ``NAME``, a bare ``DIR`` under ``"default"``.  Returns the ordered
    ``name -> directory`` mapping plus the default-model name (from
    ``--default-model``, else the fleet manifest, else the first entry).
    """
    from .artifacts import load_fleet_manifest

    artifacts: Dict[str, str] = {}
    default: Optional[str] = None
    if args.fleet:
        fleet, fleet_default = load_fleet_manifest(args.fleet)
        artifacts.update({name: str(path) for name, path in fleet.items()})
        default = fleet_default
    for spec in args.artifact or []:
        name, sep, directory = spec.partition("=")
        if sep and name:
            artifacts[name] = directory
        else:
            artifacts["default"] = spec
    if args.default_model:
        default = args.default_model
    return artifacts, default


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..serve.server import ScanService

    if not _check_backend(args.backend):
        return EXIT_USAGE
    if not _apply_failpoints(args):
        return EXIT_USAGE
    if args.batch_window_ms < 0:
        print("error: --batch-window-ms must be non-negative", file=sys.stderr)
        return EXIT_USAGE
    if args.max_batch < 1:
        print("error: --max-batch must be at least 1", file=sys.stderr)
        return EXIT_USAGE
    try:
        artifacts, default_model = _parse_serve_artifacts(args)
    except Exception as exc:  # any fleet/artifact resolution failure is a usage error
        return _fail(f"cannot resolve serving fleet: {exc}")
    if not artifacts:
        print("error: provide --artifact [NAME=]DIR or --fleet FILE", file=sys.stderr)
        return EXIT_USAGE
    if default_model is not None and default_model not in artifacts:
        print(
            f"error: --default-model {default_model!r} is not among "
            f"{sorted(artifacts)}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.shadow is not None and args.shadow not in artifacts:
        print(
            f"error: --shadow {args.shadow!r} is not among {sorted(artifacts)}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.shadow is not None and args.shadow == (
        default_model or next(iter(artifacts))
    ):
        print(
            f"error: --shadow {args.shadow!r} is already the default model; "
            "a challenger must shadow a different champion",
            file=sys.stderr,
        )
        return EXIT_USAGE
    cache_dir = None if args.no_cache else args.cache_dir
    try:
        service = ScanService(
            artifacts=artifacts,
            default_model=default_model,
            shadow=args.shadow,
            promote_threshold=args.promote_threshold,
            min_shadow_designs=args.min_shadow,
            shadow_sample=args.shadow_sample,
            frontend=args.frontend,
            host=args.host,
            port=args.port,
            batch_window_s=args.batch_window_ms / 1000.0,
            max_batch=args.max_batch,
            cache_dir=cache_dir,
            feature_store_dir=_feature_store_dir(args),
            feature_cache=False,  # the resolved dir above is the whole decision
            workers=args.workers,
            max_queue_depth=args.max_queue_depth or None,
            allow_paths=not args.no_paths,
            flush_every=args.flush_every,
            backend=args.backend,
            trace_dir=args.trace_dir,
            drift_window=args.drift_window,
            drift_min_observations=args.drift_min_observations,
            drift_trip_margin=args.drift_trip_margin,
            drift_clear_margin=args.drift_clear_margin,
        )
    except ValueError as exc:
        return _fail(f"cannot start the scan service: {exc}")
    stop = threading.Event()

    def _request_stop(signum: int, frame: object) -> None:
        stop.set()

    try:
        previous = {
            sig: signal.signal(sig, _request_stop)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
    except ValueError:
        # Signal handlers can only be installed from the main thread; an
        # embedder driving main() from elsewhere stops the service by
        # calling ScanService.shutdown() / setting its own lifecycle.
        previous = {}
    try:
        # Everything after start() sits inside the try: a failure here
        # (even a broken stdout pipe) must still shut the non-daemon
        # serving threads down, or the process would hang on exit.
        service.start()
        print(
            f"serving {len(artifacts)} model(s) on "
            f"http://{service.host}:{service.port} "
            f"({args.frontend} frontend, repro {__version__})"
        )
        for name in service.models:
            entry = service.registry.get(artifacts[name])
            marks = []
            if name == service.champion:
                marks.append("champion")
            if args.shadow == name:
                marks.append("challenger")
            suffix = f" [{', '.join(marks)}]" if marks else ""
            print(
                f"  {name}: {entry.kind} detector {entry.fingerprint[:12]}{suffix}"
            )
        if args.shadow is not None:
            print(
                f"rollout: shadowing {args.shadow} at sample rate "
                f"{args.shadow_sample:g}; auto-promote at agreement >= "
                f"{args.promote_threshold:g} over >= {args.min_shadow} designs"
            )
        feature_dir = _feature_store_dir(args)
        print(
            f"micro-batching: window {args.batch_window_ms:g}ms, "
            f"max {args.max_batch} designs/batch; "
            + ("cache " + str(cache_dir) if cache_dir else "result cache disabled")
            + (
                f"; feature cache {feature_dir}"
                if feature_dir is not None
                else "; feature cache disabled"
            )
        )
        print(
            "endpoints: POST /scan  GET /healthz  GET /metrics  "
            "POST /reload  POST /promote"
        )
        while not stop.wait(0.2):
            pass
        print("shutdown requested; draining in-flight batches ...")
    finally:
        service.shutdown()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    snapshot = service.metrics.snapshot()
    print(
        f"served {snapshot['scan_requests']} scan requests "
        f"({snapshot['designs_total']} designs, "
        f"{snapshot['cache_hits']} cache hits) "
        f"in {snapshot['batches_total']} micro-batches; shutdown clean"
    )
    return EXIT_OK


def _cmd_bench(args: argparse.Namespace) -> int:
    suite = run_engine_benchmark(
        args.output,
        n_designs=args.designs,
        workers=args.workers,
        repeats=args.repeats,
        jobs=args.jobs,
        shard_size=args.shard_size,
    )
    print(f"wrote {args.output}")
    for name, factor in sorted(suite.speedups.items()):
        if name.endswith("_vs_cold"):
            baseline = "vs cold batched scan"
        elif name.endswith("_vs_numpy_warm"):
            baseline = "vs warm-feature numpy scan"
        else:
            baseline = "vs sequential per-design scans"
        print(f"  {name}: {factor:.1f}x {baseline}")
    return EXIT_OK


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from ..serve.bench import run_serve_benchmark

    try:
        suite = run_serve_benchmark(
            args.output,
            n_requests=args.requests,
            clients=args.clients,
            repeats=args.repeats,
            batch_window_ms=args.batch_window_ms,
            max_batch=args.max_batch,
            workers=args.workers,
            smoke=args.smoke,
        )
    except RuntimeError as exc:
        # A failed load-generation request (the bench raises the first
        # client failure) is a runtime failure, not a traceback.
        return _fail(str(exc))
    print(f"wrote {args.output}")
    for name, result in sorted(suite.results.items()):
        rps = result.meta.get("requests_per_sec", 0.0)
        p99 = result.meta.get("latency", {}).get("p99_ms", 0.0)
        print(f"  {name}: {rps:.0f} req/s (p99 {p99:.1f}ms)")
    for name, factor in sorted(suite.speedups.items()):
        print(f"  speedup {name}: {factor:.2f}x")
    return EXIT_OK


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The full ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="NOODLE scan engine: train once, scan hardware designs many times.",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__}",
        help="print the repro version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="fit a detector and save an artifact")
    train.add_argument("--artifact", required=True, help="artifact directory to write")
    train.add_argument(
        "--strategy",
        choices=TRAINABLE_STRATEGIES,
        default="noodle",
        help="what to train (default: full NOODLE winner selection)",
    )
    train.add_argument(
        "--modality", default=None, help="modality name for --strategy single"
    )
    train.add_argument("--seed", type=int, default=0, help="training seed")
    train.add_argument(
        "--epochs", type=int, default=None, help="override classifier epochs"
    )
    train.add_argument(
        "--quick", action="store_true", help="small epochs for smoke runs"
    )
    train.add_argument(
        "--amplify", action="store_true", help="GAN-amplify the training corpus"
    )
    train.add_argument(
        "--target-total", type=int, default=300, help="amplification target size"
    )
    _add_suite_options(train)
    train.set_defaults(func=_cmd_train)

    calibrate = sub.add_parser(
        "calibrate", help="re-calibrate a saved detector on fresh labelled data"
    )
    calibrate.add_argument("--artifact", required=True, help="artifact directory")
    _add_suite_options(calibrate)
    calibrate.set_defaults(func=_cmd_calibrate)

    scan = sub.add_parser("scan", help="scan HDL sources with a saved detector")
    scan.add_argument("inputs", nargs="*", help="HDL files and/or directories")
    scan.add_argument("--artifact", required=True, help="artifact directory")
    scan.add_argument(
        "--generate", type=int, default=0, metavar="N", help="scan a generated demo batch"
    )
    scan.add_argument(
        "--generate-seed", type=int, default=23, help="seed for --generate"
    )
    scan.add_argument(
        "--workers", type=int, default=None, help="feature-extraction processes"
    )
    scan.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run the full pipeline (extraction + inference) across N "
        "scheduler workers (default: 1 = single-process engine)",
    )
    scan.add_argument(
        "--shard-size",
        type=int,
        default=DEFAULT_SHARD_SIZE,
        metavar="K",
        help="designs per scheduler shard (parallelism/retry/flush granularity)",
    )
    scan.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted scan: reuse cached shard results and "
        "continue the corpus journal (requires the result cache)",
    )
    scan.add_argument(
        "--confidence", type=float, default=None, help="conformal confidence level"
    )
    _add_backend_option(scan)
    scan.add_argument(
        "--cache-dir", default=".repro_cache", help="scan result cache directory"
    )
    scan.add_argument("--no-cache", action="store_true", help="disable the result cache")
    scan.add_argument(
        "--feature-cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="model-independent feature cache under <cache-dir>/features "
        "(default: enabled iff the result cache is; --feature-cache keeps "
        "it even with --no-cache, --no-feature-cache disables just it)",
    )
    scan.add_argument("--output", default=None, help="write results JSON here")
    scan.add_argument(
        "--profile",
        action="store_true",
        help="print the per-stage timing breakdown "
        "(collect/extract/infer/p-value/cache-flush) after the scan",
    )
    scan.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a JSONL span trace of the scan pipeline to FILE "
        "(one span per line; parent/child ids reconstruct the pipeline "
        "tree — see docs/OBSERVABILITY.md)",
    )
    scan.add_argument(
        "--verbose", action="store_true", help="print empty triage queues too"
    )
    _add_failpoints_option(scan)
    scan.set_defaults(func=_cmd_scan)

    report = sub.add_parser("report", help="pretty-print a saved scan-results JSON")
    report.add_argument("--input", required=True, help="results JSON from `scan --output`")
    report.set_defaults(func=_cmd_report)

    cache_info = sub.add_parser(
        "cache-info", help="report both cache tiers under a cache directory"
    )
    cache_info.add_argument(
        "--cache-dir", default=".repro_cache", help="cache directory to inspect"
    )
    cache_info.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    cache_info.set_defaults(func=_cmd_cache_info)

    cache_gc = sub.add_parser(
        "cache-gc",
        help="compact feature-store segments and drop retired schema namespaces",
    )
    cache_gc.add_argument(
        "--cache-dir", default=".repro_cache", help="cache directory to collect"
    )
    cache_gc.add_argument(
        "--image-size",
        type=int,
        default=DEFAULT_IMAGE_SIZE,
        metavar="K",
        help="adjacency-image side length identifying the live schema "
        "namespace (must match what scans use)",
    )
    cache_gc.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    cache_gc.set_defaults(func=_cmd_cache_gc)

    serve = sub.add_parser(
        "serve", help="run the long-lived micro-batching scan service"
    )
    serve.add_argument(
        "--artifact",
        action="append",
        metavar="[NAME=]DIR",
        help="artifact directory to serve; repeat with NAME=DIR to serve "
        "several models from one process (a bare DIR is named 'default')",
    )
    serve.add_argument(
        "--fleet",
        metavar="FILE",
        help="fleet manifest (fleet.json) naming several artifacts; "
        "--artifact entries add to or override it",
    )
    serve.add_argument(
        "--default-model",
        metavar="NAME",
        help="model serving requests that name none (the initial champion; "
        "default: the fleet manifest's default, else the first --artifact)",
    )
    serve.add_argument(
        "--shadow",
        metavar="NAME",
        help="run this registered model as rollout challenger: it "
        "shadow-scans sampled champion traffic and is auto-promoted once "
        "its triage-agreement rate clears --promote-threshold",
    )
    serve.add_argument(
        "--promote-threshold",
        type=float,
        default=0.98,
        metavar="RATE",
        help="triage-agreement rate the challenger must clear for "
        "auto-promotion (fraction in [0, 1])",
    )
    serve.add_argument(
        "--min-shadow",
        type=int,
        default=32,
        metavar="N",
        help="shadow-scanned designs required before the promote/reject "
        "decision is made",
    )
    serve.add_argument(
        "--shadow-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="fraction of champion traffic the challenger shadow-scans",
    )
    serve.add_argument(
        "--frontend",
        choices=("eventloop", "threaded"),
        default="eventloop",
        help="HTTP front-end: the selectors event loop (default) or the "
        "stdlib thread-per-connection server",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind host (default: loopback only)"
    )
    serve.add_argument(
        "--port", type=int, default=8731, help="bind port (0 picks a free port)"
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=25.0,
        metavar="MS",
        help="micro-batch window: how long to hold a batch open for "
        "stragglers after the first request arrives",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        metavar="N",
        help="designs per micro-batch (the forward-pass batch-size cap)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="feature-extraction processes per batch scan",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=DEFAULT_MAX_QUEUE_DEPTH,
        metavar="N",
        help="admission gate: requests a batch lane may hold queued before "
        "new scans are shed with 429 + Retry-After (0 disables the gate)",
    )
    serve.add_argument(
        "--flush-every",
        type=int,
        default=128,
        metavar="N",
        help="flush the result cache once N fresh designs accumulated "
        "(always off the response path; always flushed on shutdown)",
    )
    serve.add_argument(
        "--cache-dir", default=".repro_cache", help="scan result cache directory"
    )
    serve.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    serve.add_argument(
        "--feature-cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="model-independent feature cache under <cache-dir>/features; "
        "keeps rescans cheap across hot reloads "
        "(default: enabled iff the result cache is)",
    )
    serve.add_argument(
        "--no-paths",
        action="store_true",
        help="reject server-side 'paths' in scan requests (inline sources only)",
    )
    serve.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="append JSONL span traces of every micro-batch to "
        "DIR/serve-<pid>.jsonl (see docs/OBSERVABILITY.md)",
    )
    serve.add_argument(
        "--drift-window",
        type=int,
        default=DEFAULT_WINDOW,
        metavar="N",
        help="coverage-drift sliding window per model "
        f"(default {DEFAULT_WINDOW} outcomes)",
    )
    serve.add_argument(
        "--drift-min-observations",
        type=int,
        default=DEFAULT_MIN_OBSERVATIONS,
        metavar="N",
        help="outcomes required before the drift alarm may judge "
        f"(default {DEFAULT_MIN_OBSERVATIONS})",
    )
    serve.add_argument(
        "--drift-trip-margin",
        type=float,
        default=DEFAULT_TRIP_MARGIN,
        metavar="M",
        help="alarm trips when observed coverage falls below nominal - M "
        f"(default {DEFAULT_TRIP_MARGIN})",
    )
    serve.add_argument(
        "--drift-clear-margin",
        type=float,
        default=DEFAULT_CLEAR_MARGIN,
        metavar="M",
        help="alarm clears once observed coverage recovers above nominal - M "
        f"(default {DEFAULT_CLEAR_MARGIN}; must be < the trip margin)",
    )
    _add_backend_option(serve)
    _add_failpoints_option(serve)
    serve.set_defaults(func=_cmd_serve)

    bench = sub.add_parser("bench", help="end-to-end scan throughput benchmark")
    bench.add_argument("--output", default="BENCH_engine.json", help="benchmark JSON path")
    bench.add_argument(
        "--designs", type=int, default=DEFAULT_N_DESIGNS, help="scan batch size"
    )
    bench.add_argument("--workers", type=int, default=None, help="extraction processes")
    bench.add_argument("--repeats", type=int, default=3, help="timing repeats")
    bench.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="scheduler workers for the parallel-scan measurement "
        "(default: min(4, cpu_count))",
    )
    bench.add_argument(
        "--shard-size",
        type=int,
        default=DEFAULT_SHARD_SIZE,
        metavar="K",
        help="designs per scheduler shard for the parallel-scan measurement",
    )
    bench.set_defaults(func=_cmd_bench)

    bench_serve = sub.add_parser(
        "bench-serve", help="scan-service load benchmark (BENCH_serve.json)"
    )
    bench_serve.add_argument(
        "--output", default="BENCH_serve.json", help="benchmark JSON path"
    )
    bench_serve.add_argument(
        "--requests", type=int, default=240, help="scan requests per timed run"
    )
    bench_serve.add_argument(
        "--clients", type=int, default=32, help="concurrent client threads"
    )
    bench_serve.add_argument("--repeats", type=int, default=3, help="timing repeats")
    bench_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="feature-extraction processes per batch scan (record the "
        "multi-core serving variant on machines that have the cores; "
        "meta.cpu_count in the output says which machine produced it)",
    )
    bench_serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        metavar="MS",
        help="micro-batch window for the batched measurement",
    )
    bench_serve.add_argument(
        "--max-batch",
        type=int,
        default=32,
        metavar="N",
        help="micro-batch design cap for the batched measurement",
    )
    bench_serve.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fast run for CI (few requests, one repeat)",
    )
    bench_serve.set_defaults(func=_cmd_bench_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Runtime failures (missing/corrupt artifacts, unreadable inputs, bad
    values) are reported as one ``error:`` line on stderr with exit code 1
    rather than a traceback, so scripted campaigns can branch on the exit
    status of every subcommand.
    """
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.func(args)
    except (ArtifactError, CacheLockTimeout, OSError, ValueError) as exc:
        # Covers FileNotFoundError (missing inputs), json.JSONDecodeError
        # (corrupt results/manifest files), cache-lock contention and
        # config validation errors.
        return _fail(str(exc))
