"""AST traversal utilities.

Two complementary mechanisms are provided:

* :func:`walk` — a simple pre-order generator over every node, used by the
  feature extractors that only need counts and structural statistics.
* :class:`NodeVisitor` — a dispatching visitor (``visit_<ClassName>``
  methods), used where node-type-specific behaviour is needed (e.g. the
  data-flow graph builder).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Type

from . import ast_nodes as ast


def walk(node: ast.Node) -> Iterator[ast.Node]:
    """Yield ``node`` and every descendant in pre-order."""
    stack: List[ast.Node] = [node]
    while stack:
        current = stack.pop()
        yield current
        children = current.children()
        # Reversed keeps pre-order left-to-right despite the LIFO stack.
        stack.extend(reversed(children))


def count_nodes(node: ast.Node, node_type: Optional[Type[ast.Node]] = None) -> int:
    """Count descendants (inclusive), optionally restricted to one type."""
    if node_type is None:
        return sum(1 for _ in walk(node))
    return sum(1 for n in walk(node) if isinstance(n, node_type))


def collect(node: ast.Node, node_type: Type[ast.Node]) -> List[ast.Node]:
    """All descendants of ``node`` of the given type, in pre-order."""
    return [n for n in walk(node) if isinstance(n, node_type)]


def identifiers_in(node: ast.Node) -> List[str]:
    """Names of all identifiers referenced below ``node`` (with repeats)."""
    return [n.name for n in walk(node) if isinstance(n, ast.Identifier)]


def max_depth(node: ast.Node) -> int:
    """Height of the AST rooted at ``node`` (a leaf has depth 1)."""
    children = node.children()
    if not children:
        return 1
    return 1 + max(max_depth(child) for child in children)


class NodeVisitor:
    """Dispatch ``visit_<ClassName>`` methods, defaulting to generic_visit.

    Subclasses override the ``visit_*`` methods they care about; unhandled
    node types fall through to :meth:`generic_visit`, which recurses into
    children.
    """

    def visit(self, node: ast.Node):
        method: Callable = getattr(self, f"visit_{type(node).__name__}", self.generic_visit)
        return method(node)

    def generic_visit(self, node: ast.Node) -> None:
        for child in node.children():
            self.visit(child)


def node_kind_histogram(node: ast.Node) -> Dict[str, int]:
    """Histogram of node-kind names below ``node`` — a cheap AST fingerprint."""
    histogram: Dict[str, int] = {}
    for item in walk(node):
        histogram[item.kind] = histogram.get(item.kind, 0) + 1
    return histogram
