"""Recursive-descent parser for the Verilog subset.

The grammar intentionally covers the constructs the synthetic Trust-Hub-style
benchmarks (``repro.trojan``) emit and that real RTL Trojan benchmarks rely
on: module headers, port/net/parameter declarations, continuous assigns,
always blocks with if/case/for statements, blocking and non-blocking
assignments, rich expressions, and module instantiations.

Anything else raises :class:`repro.hdl.errors.ParseError` with the offending
source position.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast_nodes as ast
from .errors import ParseError
from .lexer import tokenize
from .tokens import Token, TokenType

# Binary operator precedence, higher binds tighter.  The ternary operator is
# handled separately above this table.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "~^": 4,
    "^~": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "===": 6,
    "!==": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "<<<": 8,
    ">>>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
    "**": 11,
}

_UNARY_OPERATORS = {"!", "~", "-", "+", "&", "|", "^", "~&", "~|", "~^"}


class Parser:
    """Parse a token stream into a :class:`repro.hdl.ast_nodes.SourceFile`."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token stream helpers ---------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        # The token list is EOF-terminated, so overshooting clamps to EOF;
        # EAFP keeps the (extremely hot) common case branch-free.
        try:
            return self.tokens[self.pos + offset]
        except IndexError:
            return self.tokens[-1]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _check(self, value: str, offset: int = 0) -> bool:
        try:
            token = self.tokens[self.pos + offset]
        except IndexError:
            token = self.tokens[-1]
        return token.value == value and token.type is not TokenType.EOF

    def _check_type(self, token_type: TokenType, offset: int = 0) -> bool:
        return self._peek(offset).type is token_type

    def _accept(self, value: str) -> Optional[Token]:
        try:
            token = self.tokens[self.pos]
        except IndexError:
            token = self.tokens[-1]
        if token.value == value and token.type is not TokenType.EOF:
            self.pos += 1
            return token
        return None

    def _expect(self, value: str) -> Token:
        token = self.tokens[self.pos]
        if token.value != value:
            raise ParseError(
                f"Expected {value!r} but found {token.value!r}", token.line, token.column
            )
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _expect_identifier(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.IDENTIFIER:
            raise ParseError(
                f"Expected identifier but found {token.value!r}", token.line, token.column
            )
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    # -- top level ----------------------------------------------------------
    def parse(self) -> ast.SourceFile:
        modules: List[ast.Module] = []
        while not self._check_type(TokenType.EOF):
            if self._check("module"):
                modules.append(self._parse_module())
            else:
                raise self._error(
                    f"Expected 'module' at top level, found {self._peek().value!r}"
                )
        return ast.SourceFile(modules=modules)

    def _parse_module(self) -> ast.Module:
        self._expect("module")
        name = self._expect_identifier().value
        ports: List[str] = []
        items: List[ast.Node] = []
        if self._accept("#"):
            # parameter port list: #(parameter A = 1, ...)
            self._expect("(")
            while not self._check(")"):
                self._accept("parameter")
                param_name = self._expect_identifier().value
                self._expect("=")
                value = self._parse_expression()
                items.append(ast.ParameterDeclaration(name=param_name, value=value))
                if not self._accept(","):
                    break
            self._expect(")")
        if self._accept("("):
            while not self._check(")"):
                header_items, header_ports = self._parse_port_list_entry()
                items.extend(header_items)
                ports.extend(header_ports)
                if not self._accept(","):
                    break
            self._expect(")")
        self._expect(";")
        while not self._check("endmodule"):
            if self._check_type(TokenType.EOF):
                raise self._error(f"Unterminated module {name!r}")
            items.extend(self._parse_module_item())
        self._expect("endmodule")
        return ast.Module(name=name, ports=ports, items=items)

    def _parse_port_list_entry(self) -> Tuple[List[ast.Node], List[str]]:
        """Parse one entry of the module header port list.

        Supports both the Verilog-1995 style (bare identifiers, directions
        declared in the body) and the ANSI-2001 style (direction inline).
        """
        if self._peek().value in ("input", "output", "inout"):
            direction = self._advance().value
            is_reg = bool(self._accept("reg"))
            if not is_reg:
                self._accept("wire")
            is_signed = bool(self._accept("signed"))
            port_range = self._parse_optional_range()
            name = self._expect_identifier().value
            decl = ast.PortDeclaration(
                direction=direction,
                names=[name],
                range=port_range,
                is_reg=is_reg,
                is_signed=is_signed,
            )
            return [decl], [name]
        name = self._expect_identifier().value
        return [], [name]

    # -- module items ---------------------------------------------------------
    def _parse_module_item(self) -> List[ast.Node]:
        token = self._peek()
        if token.value in ("input", "output", "inout"):
            return [self._parse_port_declaration()]
        if token.value in ("wire", "reg", "integer"):
            return [self._parse_net_declaration()]
        if token.value in ("parameter", "localparam"):
            return self._parse_parameter_declaration()
        if token.value == "assign":
            return [self._parse_continuous_assign()]
        if token.value == "always":
            return [self._parse_always()]
        if token.value == "initial":
            self._advance()
            return [ast.Initial(body=self._parse_statement())]
        if token.type is TokenType.IDENTIFIER:
            return [self._parse_instantiation()]
        raise self._error(f"Unexpected token {token.value!r} in module body")

    def _parse_optional_range(self) -> Optional[ast.Range]:
        if not self._check("["):
            return None
        self._expect("[")
        msb = self._parse_expression()
        self._expect(":")
        lsb = self._parse_expression()
        self._expect("]")
        return ast.Range(msb=msb, lsb=lsb)

    def _parse_name_list(self) -> List[str]:
        names = [self._expect_identifier().value]
        while self._accept(","):
            names.append(self._expect_identifier().value)
        return names

    def _parse_port_declaration(self) -> ast.PortDeclaration:
        direction = self._advance().value
        is_reg = bool(self._accept("reg"))
        if not is_reg:
            self._accept("wire")
        is_signed = bool(self._accept("signed"))
        port_range = self._parse_optional_range()
        names = self._parse_name_list()
        self._expect(";")
        return ast.PortDeclaration(
            direction=direction,
            names=names,
            range=port_range,
            is_reg=is_reg,
            is_signed=is_signed,
        )

    def _parse_net_declaration(self) -> ast.NetDeclaration:
        net_type = self._advance().value
        is_signed = bool(self._accept("signed"))
        net_range = self._parse_optional_range()
        names = [self._expect_identifier().value]
        # Optional initialisation (``reg [3:0] x = 0``) is parsed and dropped;
        # it does not affect detection features.
        if self._accept("="):
            self._parse_expression()
        while self._accept(","):
            names.append(self._expect_identifier().value)
            if self._accept("="):
                self._parse_expression()
        self._expect(";")
        return ast.NetDeclaration(
            net_type=net_type, names=names, range=net_range, is_signed=is_signed
        )

    def _parse_parameter_declaration(self) -> List[ast.Node]:
        keyword = self._advance().value
        local = keyword == "localparam"
        self._parse_optional_range()
        declarations: List[ast.Node] = []
        while True:
            name = self._expect_identifier().value
            self._expect("=")
            value = self._parse_expression()
            declarations.append(ast.ParameterDeclaration(name=name, value=value, local=local))
            if not self._accept(","):
                break
        self._expect(";")
        return declarations

    def _parse_continuous_assign(self) -> ast.ContinuousAssign:
        self._expect("assign")
        target = self._parse_primary()
        self._expect("=")
        value = self._parse_expression()
        self._expect(";")
        return ast.ContinuousAssign(target=target, value=value)

    def _parse_always(self) -> ast.Always:
        self._expect("always")
        self._expect("@")
        sensitivity: List[ast.SensitivityItem] = []
        is_star = False
        if self._accept("*"):
            is_star = True
        else:
            self._expect("(")
            if self._accept("*"):
                is_star = True
            else:
                sensitivity.append(self._parse_sensitivity_item())
                while self._accept("or") or self._accept(","):
                    sensitivity.append(self._parse_sensitivity_item())
            self._expect(")")
        body = self._parse_statement()
        return ast.Always(sensitivity=sensitivity, body=body, is_star=is_star)

    def _parse_sensitivity_item(self) -> ast.SensitivityItem:
        edge = None
        if self._check("posedge") or self._check("negedge"):
            edge = self._advance().value
        signal = self._parse_expression()
        return ast.SensitivityItem(signal=signal, edge=edge)

    def _parse_instantiation(self) -> ast.Instantiation:
        module_name = self._expect_identifier().value
        parameter_overrides: List[Tuple[str, ast.Node]] = []
        if self._accept("#"):
            self._expect("(")
            while not self._check(")"):
                if self._accept("."):
                    pname = self._expect_identifier().value
                    self._expect("(")
                    parameter_overrides.append((pname, self._parse_expression()))
                    self._expect(")")
                else:
                    parameter_overrides.append(("", self._parse_expression()))
                if not self._accept(","):
                    break
            self._expect(")")
        instance_name = self._expect_identifier().value
        self._expect("(")
        connections: List[ast.PortConnection] = []
        position = 0
        while not self._check(")"):
            if self._accept("."):
                port = self._expect_identifier().value
                self._expect("(")
                expr = None if self._check(")") else self._parse_expression()
                self._expect(")")
                connections.append(ast.PortConnection(port=port, expr=expr))
            else:
                expr = self._parse_expression()
                connections.append(ast.PortConnection(port=f"__pos{position}", expr=expr))
                position += 1
            if not self._accept(","):
                break
        self._expect(")")
        self._expect(";")
        return ast.Instantiation(
            module_name=module_name,
            instance_name=instance_name,
            connections=connections,
            parameter_overrides=parameter_overrides,
        )

    # -- statements -----------------------------------------------------------
    def _parse_statement(self) -> ast.Node:
        token = self._peek()
        if token.value == "begin":
            return self._parse_block()
        if token.value == "if":
            return self._parse_if()
        if token.value in ("case", "casez", "casex"):
            return self._parse_case()
        if token.value == "for":
            return self._parse_for()
        if token.value.startswith("$"):
            return self._parse_system_task()
        return self._parse_procedural_assignment()

    def _parse_block(self) -> ast.Block:
        self._expect("begin")
        # Optional block label ``begin : name``.
        if self._accept(":"):
            self._expect_identifier()
        statements: List[ast.Node] = []
        while not self._check("end"):
            if self._check_type(TokenType.EOF):
                raise self._error("Unterminated begin/end block")
            statements.append(self._parse_statement())
        self._expect("end")
        return ast.Block(statements=statements)

    def _parse_if(self) -> ast.If:
        self._expect("if")
        self._expect("(")
        condition = self._parse_expression()
        self._expect(")")
        then_branch = self._parse_statement()
        else_branch = None
        if self._accept("else"):
            else_branch = self._parse_statement()
        return ast.If(condition=condition, then_branch=then_branch, else_branch=else_branch)

    def _parse_case(self) -> ast.Case:
        variant = self._advance().value
        self._expect("(")
        subject = self._parse_expression()
        self._expect(")")
        items: List[ast.CaseItem] = []
        while not self._check("endcase"):
            if self._check_type(TokenType.EOF):
                raise self._error("Unterminated case statement")
            if self._accept("default"):
                self._accept(":")
                items.append(ast.CaseItem(labels=[], body=self._parse_statement()))
                continue
            labels = [self._parse_expression()]
            while self._accept(","):
                labels.append(self._parse_expression())
            self._expect(":")
            items.append(ast.CaseItem(labels=labels, body=self._parse_statement()))
        self._expect("endcase")
        return ast.Case(subject=subject, items=items, variant=variant)

    def _parse_for(self) -> ast.ForLoop:
        self._expect("for")
        self._expect("(")
        init = self._parse_assignment_expression()
        self._expect(";")
        condition = self._parse_expression()
        self._expect(";")
        step = self._parse_assignment_expression()
        self._expect(")")
        body = self._parse_statement()
        return ast.ForLoop(init=init, condition=condition, step=step, body=body)

    def _parse_system_task(self) -> ast.SystemTaskCall:
        name = self._advance().value
        args: List[ast.Node] = []
        if self._accept("("):
            while not self._check(")"):
                if self._check_type(TokenType.STRING):
                    args.append(ast.StringLiteral(value=self._advance().value))
                else:
                    args.append(self._parse_expression())
                if not self._accept(","):
                    break
            self._expect(")")
        self._expect(";")
        return ast.SystemTaskCall(name=name, args=args)

    def _parse_assignment_expression(self) -> ast.Node:
        """An assignment without the trailing semicolon (for-loop init/step)."""
        target = self._parse_primary()
        self._expect("=")
        value = self._parse_expression()
        return ast.BlockingAssign(target=target, value=value)

    def _parse_procedural_assignment(self) -> ast.Node:
        target = self._parse_primary()
        if self._accept("<="):
            value = self._parse_expression()
            self._expect(";")
            return ast.NonBlockingAssign(target=target, value=value)
        if self._accept("="):
            value = self._parse_expression()
            self._expect(";")
            return ast.BlockingAssign(target=target, value=value)
        raise self._error("Expected '=' or '<=' in procedural assignment")

    # -- expressions ------------------------------------------------------------
    def _parse_expression(self) -> ast.Node:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Node:
        condition = self._parse_binary(1)
        if self._accept("?"):
            if_true = self._parse_expression()
            self._expect(":")
            if_false = self._parse_expression()
            return ast.Ternary(condition=condition, if_true=if_true, if_false=if_false)
        return condition

    def _parse_binary(self, min_precedence: int) -> ast.Node:
        # The token list is EOF-terminated and EOF is never consumed, so
        # ``tokens[pos]`` is always in range; direct indexing keeps this
        # (hottest) loop free of helper-call overhead.
        left = self._parse_unary()
        tokens = self.tokens
        while True:
            token = tokens[self.pos]
            precedence = _BINARY_PRECEDENCE.get(token.value)
            if (
                precedence is None
                or precedence < min_precedence
                or token.type is TokenType.EOF
            ):
                return left
            self.pos += 1
            right = self._parse_binary(precedence + 1)
            left = ast.BinaryOp(op=token.value, left=left, right=right)

    def _parse_unary(self) -> ast.Node:
        token = self.tokens[self.pos]
        if token.type is TokenType.OPERATOR and token.value in _UNARY_OPERATORS:
            self.pos += 1
            operand = self._parse_unary()
            return ast.UnaryOp(op=token.value, operand=operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Node:
        token = self.tokens[self.pos]
        if token.type is TokenType.NUMBER:
            self.pos += 1
            return ast.Number.parse(token.value)
        if token.type is TokenType.STRING:
            self.pos += 1
            return ast.StringLiteral(value=token.value)
        if token.value == "(":
            self._advance()
            expr = self._parse_expression()
            self._expect(")")
            return self._parse_select_suffix(expr)
        if token.value == "{":
            return self._parse_concat_or_replicate()
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            name = token.value
            if name.startswith("$") or self._check("("):
                if self._accept("("):
                    args: List[ast.Node] = []
                    while not self._check(")"):
                        args.append(self._parse_expression())
                        if not self._accept(","):
                            break
                    self._expect(")")
                    return ast.FunctionCall(name=name, args=args)
                return ast.FunctionCall(name=name, args=[])
            return self._parse_select_suffix(ast.Identifier(name=name))
        raise self._error(f"Unexpected token {token.value!r} in expression")

    def _parse_select_suffix(self, base: ast.Node) -> ast.Node:
        while self._check("["):
            self._expect("[")
            first = self._parse_expression()
            if self._accept(":"):
                second = self._parse_expression()
                self._expect("]")
                base = ast.PartSelect(base=base, msb=first, lsb=second)
            else:
                self._expect("]")
                base = ast.BitSelect(base=base, index=first)
        return base

    def _parse_concat_or_replicate(self) -> ast.Node:
        self._expect("{")
        first = self._parse_expression()
        if self._check("{"):
            # Replication: {count{value}}
            self._expect("{")
            value = self._parse_expression()
            while self._accept(","):
                value = ast.Concat(parts=[value, self._parse_expression()])
            self._expect("}")
            self._expect("}")
            return ast.Replicate(count=first, value=value)
        parts = [first]
        while self._accept(","):
            parts.append(self._parse_expression())
        self._expect("}")
        if len(parts) == 1:
            return parts[0]
        return ast.Concat(parts=parts)


def parse_source(source: str) -> ast.SourceFile:
    """Parse Verilog source text into a :class:`SourceFile`."""
    return Parser(tokenize(source)).parse()


def parse_module(source: str, name: Optional[str] = None) -> ast.Module:
    """Parse source text and return one module (the first, or by name)."""
    return parse_source(source).module(name)
